// Reproduces Fig. 4: "Transformation for tables" — semi-structured data
// (XML / JSON) and non-relational spreadsheets become relational tables.
// Reported: cell-level accuracy of the direct path (schema extraction) and
// the operator-synthesis path (program search), per corpus.
#include <cstdio>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/transform/table_transform.h"
#include "data/json.h"
#include "data/xml.h"

namespace {

using namespace llmdm;

// Generates an XML order corpus with known gold cells.
struct GoldRecord {
  std::string customer;
  int64_t quantity;
  std::string item;
};

std::string MakeOrdersXml(const std::vector<GoldRecord>& gold) {
  std::string xml = "<orders>\n";
  for (size_t i = 0; i < gold.size(); ++i) {
    xml += common::StrFormat(
        "  <order id=\"%zu\"><customer>%s</customer><item>%s</item>"
        "<quantity>%lld</quantity></order>\n",
        i + 1, gold[i].customer.c_str(), gold[i].item.c_str(),
        (long long)gold[i].quantity);
  }
  return xml + "</orders>";
}

std::string MakeOrdersJson(const std::vector<GoldRecord>& gold) {
  std::string json = "[";
  for (size_t i = 0; i < gold.size(); ++i) {
    if (i > 0) json += ",";
    json += common::StrFormat(
        R"({"customer":"%s","detail":{"item":"%s","quantity":%lld}})",
        gold[i].customer.c_str(), gold[i].item.c_str(),
        (long long)gold[i].quantity);
  }
  return json + "]";
}

std::vector<GoldRecord> MakeGold(size_t n, common::Rng& rng) {
  const char* const kCustomers[] = {"alice", "bob", "carol", "dave", "erin"};
  const char* const kItems[] = {"laptop", "phone", "desk", "chair"};
  std::vector<GoldRecord> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(GoldRecord{kCustomers[rng.NextBelow(5)],
                             rng.UniformInt(1, 9),
                             kItems[rng.NextBelow(4)]});
  }
  return out;
}

double CellAccuracy(const data::Table& table,
                    const std::vector<GoldRecord>& gold) {
  if (table.NumRows() != gold.size()) return 0.0;
  auto ccol = table.schema().Find("customer");
  auto icol = table.schema().Find("item");
  auto qcol = table.schema().Find("detail.quantity");
  if (!qcol.has_value()) qcol = table.schema().Find("quantity");
  if (!icol.has_value()) icol = table.schema().Find("detail.item");
  if (!ccol || !icol || !qcol) return 0.0;
  size_t good = 0, total = 0;
  for (size_t r = 0; r < gold.size(); ++r) {
    total += 3;
    if (table.at(r, *ccol) == data::Value::Text(gold[r].customer)) ++good;
    if (table.at(r, *icol) == data::Value::Text(gold[r].item)) ++good;
    if (table.at(r, *qcol) == data::Value::Int(gold[r].quantity)) ++good;
  }
  return double(good) / double(total);
}

}  // namespace

int main() {
  common::Rng rng(11111);
  auto gold = MakeGold(40, rng);

  std::printf("Fig 4: semi-structured and non-relational data -> tables\n");
  std::printf("%-28s %10s %10s\n", "corpus", "rows", "cell_acc");

  // XML direct transformation.
  auto xml = data::ParseXml(MakeOrdersXml(gold));
  auto xml_table = transform::XmlToTable(**xml);
  std::printf("%-28s %10zu %9.1f%%\n", "XML orders (direct)",
              xml_table->NumRows(), 100.0 * CellAccuracy(*xml_table, gold));

  // JSON direct transformation (nested objects flatten).
  auto json = data::ParseJson(MakeOrdersJson(gold));
  auto json_table = transform::JsonToTable(*json);
  std::printf("%-28s %10zu %9.1f%%\n", "JSON orders (direct)",
              json_table->NumRows(), 100.0 * CellAccuracy(*json_table, gold));

  // Non-relational spreadsheets: operator synthesis.
  transform::Grid sideways{{"customer", "item", "quantity"}};
  for (const auto& g : gold) {
    sideways.push_back({g.customer, g.item, std::to_string(g.quantity)});
  }
  // Transpose it to simulate a sideways sheet, add junk empty rows.
  transform::Grid messy =
      transform::ApplyOp(sideways, transform::TableOp::kTranspose);
  messy.push_back(std::vector<std::string>(messy[0].size(), ""));

  auto synth = transform::SynthesizeRelationalization(messy);
  std::string program;
  for (auto op : synth.program) {
    if (!program.empty()) program += " -> ";
    program += transform::TableOpName(op);
  }
  auto grid_table = transform::GridToTable(synth.transformed, "orders");
  double acc = grid_table.ok() ? CellAccuracy(*grid_table, gold) : 0.0;
  std::printf("%-28s %10zu %9.1f%%   program: %s (score %.2f)\n",
              "sideways sheet (synthesis)",
              grid_table.ok() ? grid_table->NumRows() : 0, 100.0 * acc,
              program.c_str(), synth.score);

  // Merged-cell sheet.
  transform::Grid merged{{"region", "store", "sales"},
                         {"east", "s1", "10"},
                         {"", "s2", "20"},
                         {"", "s3", "15"},
                         {"west", "s4", "30"},
                         {"", "s5", "25"}};
  auto merged_synth = transform::SynthesizeRelationalization(merged);
  auto merged_table = transform::GridToTable(merged_synth.transformed, "sales");
  size_t filled = 0;
  if (merged_table.ok()) {
    auto region = merged_table->ColumnValues("region");
    for (const auto& v : *region) {
      if (!v.is_null()) ++filled;
    }
  }
  std::printf("%-28s %10zu    region cells filled: %zu/5\n",
              "merged-cell sheet", merged_table.ok() ? merged_table->NumRows() : 0,
              filled);
  return 0;
}
