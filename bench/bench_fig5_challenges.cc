// Reproduces Fig. 5: "An overview of the challenges and opportunities" —
// one mini-experiment per challenge pillar, each demonstrating that the
// implemented opportunity moves its metric:
//   prompt optimization  : utility-aware example selection beats none;
//   query optimization   : cascade cost saving at parity accuracy;
//   cache optimization   : hit-rate and savings on a skewed stream;
//   security & privacy   : DP shrinks membership-inference advantage;
//   output validation    : validators catch bad SQL before execution.
#include <cstdio>

#include "common/string_util.h"
#include "core/optimize/cascade.h"
#include "core/optimize/prompt_store.h"
#include "core/optimize/semantic_cache.h"
#include "core/privacy/dp.h"
#include "core/validate/validators.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "data/tabular_gen.h"
#include "llm/simulated.h"
#include "ml/logistic.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;
  common::Rng rng(55555);
  std::printf("Fig 5: one mini-experiment per challenge pillar\n\n");

  // ---- III-A prompt optimization -----------------------------------------
  {
    sql::Database db;
    db.ExecuteScript(data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
        .ok();
    auto models = llm::CreatePaperModelLadder(nullptr, 61);
    optimize::PromptStore store(optimize::PromptStore::Options{});
    for (const auto& q : data::PaperQ1ToQ5()) {
      store.Add(q.ToNaturalLanguage(), q.ToGoldSql());
    }
    data::Nl2SqlWorkloadOptions wopts;
    wopts.num_queries = 40;
    wopts.compound_rate = 1.0;
    auto workload = data::GenerateNl2SqlWorkload(wopts, rng);
    auto accuracy = [&](bool with_store) {
      int correct = 0;
      for (const auto& q : workload) {
        llm::Prompt p = llm::MakePrompt("nl2sql", q.ToNaturalLanguage());
        if (with_store) {
          p.examples = store.Select(
              p.input, 3, optimize::PromptStore::Selection::kUtilityWeighted);
        }
        auto c = models[1]->Complete(p);
        auto gold = db.Query(q.ToGoldSql());
        auto pred = c.ok() ? db.Query(c->text)
                           : common::Result<data::Table>(
                                 common::Status::Internal(""));
        if (gold.ok() && pred.ok() && pred->BagEquals(*gold)) ++correct;
      }
      return 100.0 * correct / double(workload.size());
    };
    std::printf("[prompt optimization]   NL2SQL accuracy: no examples %.0f%% "
                "-> store-selected examples %.0f%%\n",
                accuracy(false), accuracy(true));
  }

  // ---- III-B query optimization -------------------------------------------
  {
    data::KnowledgeBase kb = data::KnowledgeBase::Generate(60, rng);
    auto ladder = llm::CreatePaperModelLadder(&kb, 62);
    auto workload = data::GenerateQaWorkload(kb, 30, {0.3, 0.4, 0.3}, rng);
    optimize::LlmCascade::Options copts;
    copts.accept_threshold = 0.65;
    optimize::LlmCascade cascade(ladder, copts);
    llm::UsageMeter cascade_meter, big_meter;
    int cascade_correct = 0, big_correct = 0;
    for (const auto& item : workload) {
      llm::Prompt p = llm::MakePrompt("qa", item.question);
      auto cr = cascade.Run(p, &cascade_meter);
      if (cr.ok() && cr->answer == item.answer) ++cascade_correct;
      auto br = ladder[2]->CompleteMetered(p, &big_meter);
      if (br.ok() && br->text == item.answer) ++big_correct;
    }
    std::printf("[query optimization]    cascade %.0f%% at %s vs gpt-4-only "
                "%.0f%% at %s\n",
                100.0 * cascade_correct / 30.0,
                cascade_meter.cost().ToString(4).c_str(),
                100.0 * big_correct / 30.0,
                big_meter.cost().ToString(4).c_str());
  }

  // ---- III-C cache optimization -------------------------------------------
  {
    optimize::SemanticCache::Options copts;
    copts.similarity_threshold = 0.99;
    optimize::SemanticCache cache(copts);
    // Zipf-skewed stream over 30 distinct queries.
    std::vector<std::string> queries;
    for (int i = 0; i < 30; ++i) {
      queries.push_back(common::StrFormat(
          "normalize column %d of the sales table and impute missing values",
          i));
    }
    size_t hits = 0, lookups = 0;
    for (int i = 0; i < 300; ++i) {
      const std::string& q = queries[rng.Zipf(queries.size(), 1.1)];
      ++lookups;
      if (cache.Lookup(q, common::Money::FromDollars(0.002)).has_value()) {
        ++hits;
      } else {
        cache.Insert(q, "generated code for: " + q);
      }
    }
    std::printf("[cache optimization]    hit rate %.0f%% on a Zipf stream, "
                "%s saved\n",
                100.0 * double(hits) / double(lookups),
                cache.stats().saved.ToString(3).c_str());
  }

  // ---- III-D security & privacy -------------------------------------------
  {
    // Small training set + long unregularized training = the overfit
    // (memorization) regime that membership inference exploits.
    data::PatientDataOptions popts;
    popts.num_rows = 40;
    common::Rng prng(63);
    auto train_table = data::GeneratePatientTable(popts, prng);
    popts.num_rows = 300;
    auto holdout_table = data::GeneratePatientTable(popts, prng);
    auto train = ml::DatasetFromTable(train_table, "has_heart_disease");
    auto holdout = ml::DatasetFromTable(holdout_table, "has_heart_disease");
    ml::Standardize(&*train);
    ml::Standardize(&*holdout);
    // Append pure-noise features: capacity the unregularized model will
    // memorize with (the leakage DP-SGD is supposed to prevent).
    common::Rng noise_rng(630);
    auto add_noise = [&](ml::Dataset* ds) {
      for (auto& x : ds->features) {
        for (int j = 0; j < 24; ++j) x.push_back(noise_rng.Normal());
      }
    };
    add_noise(&*train);
    add_noise(&*holdout);
    ml::LogisticRegression::TrainOptions overfit;
    overfit.epochs = 400;
    overfit.l2 = 0.0;
    // Average the (noisy, small-sample) attack measurement over seeds.
    double clear_adv = 0, dp_adv = 0, clear_acc = 0, dp_acc = 0;
    constexpr int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto clear = privacy::TrainWithDpAndAudit(*train, *holdout, 0.0, 0.0,
                                                64 + seed, overfit);
      auto dp = privacy::TrainWithDpAndAudit(*train, *holdout, 8.0, 0.5,
                                             64 + seed, overfit);
      clear_adv += clear.attack.advantage();
      dp_adv += dp.attack.advantage();
      clear_acc += clear.holdout_accuracy;
      dp_acc += dp.holdout_accuracy;
    }
    std::printf("[security & privacy]    MI attack advantage %.3f -> %.3f "
                "under DP-SGD (accuracy %.2f -> %.2f, %d-seed mean)\n",
                clear_adv / kSeeds, dp_adv / kSeeds, clear_acc / kSeeds,
                dp_acc / kSeeds, kSeeds);
  }

  // ---- III-E output validation --------------------------------------------
  {
    sql::Database db;
    common::Rng vrng(65);
    db.ExecuteScript(data::BuildStadiumDatabaseScript(10, {2014, 2015}, vrng))
        .ok();
    auto models = llm::CreatePaperModelLadder(nullptr, 66);
    data::Nl2SqlWorkloadOptions wopts;
    wopts.num_queries = 60;
    auto workload = data::GenerateNl2SqlWorkload(wopts, vrng);
    size_t invalid = 0, caught = 0;
    for (const auto& q : workload) {
      auto c = models[0]->Complete(
          llm::MakePrompt("nl2sql", q.ToNaturalLanguage()));
      // A failed call produced no SQL at all: broken by definition, and
      // trivially caught (the error status is the flag).
      if (!c.ok()) {
        ++invalid;
        ++caught;
        continue;
      }
      bool broken = !validate::SqlValidator::ValidateSyntax(c->text).accepted;
      bool flagged =
          !validate::SqlValidator::ValidateExecutes(c->text, db).accepted;
      if (broken) ++invalid;
      if (broken && flagged) ++caught;
    }
    std::printf("[output validation]     %zu/%zu broken outputs from the "
                "small model, validators caught %zu/%zu\n",
                invalid, workload.size(), caught, invalid);
  }
  return 0;
}
