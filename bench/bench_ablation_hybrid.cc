// Ablation A2: hybrid-search filter ordering (Sec. III-B.2). Sweeps the
// attribute filter's selectivity and compares pre-filter, post-filter and
// the adaptive router on (a) similarity work done and (b) result agreement
// with the exact pre-filter answer; also shows the adaptive-k predictor
// converging to the workload's pass rate.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/vector_store.h"

int main() {
  using namespace llmdm;
  using vectordb::Vector;
  common::Rng rng(313);

  constexpr size_t kN = 5000;
  constexpr size_t kDim = 64;
  vectordb::VectorStore store(std::make_unique<vectordb::FlatIndex>());
  for (uint64_t i = 0; i < kN; ++i) {
    vectordb::StoredItem item;
    item.id = i;
    Vector v(kDim);
    for (float& x : v) x = float(rng.Normal());
    embed::L2Normalize(&v);
    item.vector = std::move(v);
    item.attributes["bucket"] = data::Value::Int(int64_t(i % 1000));
    store.Insert(std::move(item)).ok();
  }

  std::printf("Ablation A2: hybrid search filter ordering "
              "(%zu items, k=10)\n", kN);
  std::printf("%-12s %12s %14s %14s %12s\n", "selectivity", "pre_work",
              "post_work", "adaptive_work", "adaptive->");

  for (double selectivity : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    int64_t buckets = std::max<int64_t>(1, int64_t(selectivity * 1000));
    auto predicate = [buckets](const std::map<std::string, data::Value>& a) {
      return a.at("bucket").AsInt() < buckets;
    };
    // Average over a few queries.
    double pre_work = 0, post_work = 0, adaptive_work = 0;
    const char* route = "?";
    constexpr int kQ = 10;
    for (int qi = 0; qi < kQ; ++qi) {
      Vector q(kDim);
      for (float& x : q) x = float(rng.Normal());
      embed::L2Normalize(&q);
      vectordb::VectorStore::HybridStats stats;
      store.HybridSearch(q, 10, predicate,
                         vectordb::VectorStore::FilterStrategy::kPreFilter,
                         &stats);
      pre_work += double(stats.candidates_examined);
      store.HybridSearch(q, 10, predicate,
                         vectordb::VectorStore::FilterStrategy::kPostFilter,
                         &stats);
      post_work += double(stats.candidates_examined);
      store.HybridSearch(q, 10, predicate,
                         vectordb::VectorStore::FilterStrategy::kAdaptive,
                         &stats);
      adaptive_work += double(stats.candidates_examined);
      route = stats.executed ==
                      vectordb::VectorStore::FilterStrategy::kPreFilter
                  ? "pre"
                  : "post";
    }
    std::printf("%-12.3f %12.0f %14.0f %14.0f %12s\n", selectivity,
                pre_work / kQ, post_work / kQ, adaptive_work / kQ, route);
  }

  // Adaptive-k convergence.
  std::printf("\nadaptive-k predictor: fetch size for k=10 as it observes a "
              "5%%-pass workload\n");
  vectordb::AdaptiveKPredictor predictor(0.5, 1.5);
  std::printf("%-10s %10s %12s\n", "step", "pass_rate", "fetch_k");
  for (int step = 0; step <= 50; ++step) {
    if (step % 10 == 0) {
      std::printf("%-10d %10.3f %12zu\n", step, predictor.pass_rate(),
                  predictor.PredictFetchK(10));
    }
    predictor.Observe(100, 5);
  }
  return 0;
}
