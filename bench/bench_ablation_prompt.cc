// Ablation A5: historical prompt selection (Sec. III-A). The paper argues
// raw vector similarity is not the right target for choosing few-shot
// examples and envisions performance-aware indexes plus RL-style budgeted
// retention. This bench seeds a prompt store with a mix of correct and
// *poisoned* (wrong-output) worked examples, streams NL2SQL queries through
// each selection strategy with outcome feedback, and reports accuracy.
#include <cstdio>

#include "core/optimize/prompt_store.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;
  common::Rng rng(424242);
  sql::Database db;
  if (!db.ExecuteScript(
             data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
           .ok()) {
    return 1;
  }
  auto models = llm::CreatePaperModelLadder(nullptr, 24);
  llm::LlmModel& model = *models[1];

  data::Nl2SqlWorkloadOptions wopts;
  wopts.num_queries = 120;
  wopts.compound_rate = 1.0;
  wopts.condition_pool = 8;
  auto workload = data::GenerateNl2SqlWorkload(wopts, rng);

  // Seeding corpus: the paper's Q1-Q5 as good examples plus poisoned
  // variants whose "output" is broken SQL (a store accumulated from past
  // sessions is never uniformly good).
  auto seed_store = [&](optimize::PromptStore& store) {
    for (const auto& q : data::PaperQ1ToQ5()) {
      store.Add(q.ToNaturalLanguage(), q.ToGoldSql());
    }
    for (const auto& q : data::PaperQ1ToQ5()) {
      store.Add("Show the names of " + q.first.ToSubQuestion() + "?",
                "SELEC nmae FROM stadum WHRE broken");
    }
  };

  auto grade = [&](const std::string& sql, const data::Nl2SqlQuery& q) {
    auto gold = db.Query(q.ToGoldSql());
    auto pred = db.Query(sql);
    return gold.ok() && pred.ok() && pred->BagEquals(*gold);
  };

  std::printf("Ablation A5: prompt-selection strategies "
              "(%zu queries; store holds 5 good + 5 poisoned examples)\n",
              workload.size());
  std::printf("%-22s %10s %14s\n", "strategy", "accuracy", "poisoned_uses");

  struct Setting {
    const char* name;
    bool use_store;
    optimize::PromptStore::Selection selection;
  };
  const Setting settings[] = {
      {"no examples", false, optimize::PromptStore::Selection::kSimilarity},
      {"similarity", true, optimize::PromptStore::Selection::kSimilarity},
      {"utility-weighted", true,
       optimize::PromptStore::Selection::kUtilityWeighted},
      {"epsilon-greedy", true,
       optimize::PromptStore::Selection::kEpsilonGreedy},
  };
  for (const Setting& setting : settings) {
    optimize::PromptStore store(optimize::PromptStore::Options{});
    seed_store(store);
    int correct = 0;
    size_t poisoned_uses = 0;
    for (const auto& q : workload) {
      llm::Prompt p = llm::MakePrompt("nl2sql", q.ToNaturalLanguage());
      if (setting.use_store) {
        p.examples = store.Select(p.input, 3, setting.selection);
      }
      auto c = model.Complete(p);
      bool ok = c.ok() && grade(c->text, q);
      if (ok) ++correct;
      if (setting.use_store) {
        // Outcome feedback drives the utility weights (and exposes how many
        // poisoned examples each strategy kept selecting).
        for (uint64_t id : store.last_selected_ids()) {
          store.RecordOutcome(id, ok);
          const auto sp = store.Get(id);
          if (sp.has_value() && sp->output.rfind("SELEC ", 0) == 0) {
            ++poisoned_uses;
          }
        }
      }
    }
    std::printf("%-22s %9.1f%% %14zu\n", setting.name,
                100.0 * correct / double(workload.size()), poisoned_uses);
  }
  std::printf(
      "\nutility weighting learns to avoid the poisoned examples that pure "
      "similarity keeps selecting (the Sec. III-A 'highest similarity is not "
      "the optimal prompt' argument)\n");
  return 0;
}
