// Reproduces Table II: "Preliminary results on query decomposition and
// combination".
//
// Paper setup: NL2SQL data inspired by Spider, graded with DAIL-SQL-style
// execution match. Paper numbers:
//               Origin   Decomposition   Decomposition+Combination
//   Accuracy      79%        91%                 91%
//   API Cost    $0.435     $0.289               $0.129
//
// This reproduction: a 20-query stadium workload with shared sub-conditions
// (condition pool of 4 — the sharing structure of the paper's Q1-Q5 example),
// translated by the sim-gpt-3.5 tier with the paper's Q1-Q5 as few-shot
// examples, graded by execution match on our SQL engine.
#include <cstdio>

#include "core/optimize/decomposition.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

namespace {

using namespace llmdm;

int main_impl() {
  common::Rng rng(20240705);
  sql::Database db;
  auto script = data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng);
  if (!db.ExecuteScript(script).ok()) return 1;
  auto models = llm::CreatePaperModelLadder(nullptr, 2);

  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 20;
  options.condition_pool = 4;
  options.compound_rate = 0.8;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  std::vector<std::string> questions, gold;
  for (const auto& q : workload) {
    questions.push_back(q.ToNaturalLanguage());
    gold.push_back(q.ToGoldSql());
  }
  std::vector<llm::FewShotExample> examples;
  for (const auto& ex : data::PaperQ1ToQ5()) {
    examples.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
  }

  auto run = [&](bool decompose, bool combine) {
    optimize::QueryBatchOptimizer::Options opts;
    opts.enable_decomposition = decompose;
    opts.enable_combination = combine;
    opts.examples = examples;
    optimize::QueryBatchOptimizer optimizer(opts);
    optimize::BatchPlan plan = optimizer.Plan(questions);
    llm::UsageMeter meter;
    auto exec = optimizer.Execute(plan, *models[1], &meter);
    int correct = 0;
    for (size_t i = 0; i < questions.size(); ++i) {
      auto g = db.Query(gold[i]);
      auto p = db.Query(exec->sql[i]);
      if (g.ok() && p.ok() && p->BagEquals(*g)) ++correct;
    }
    struct Row {
      double accuracy;
      common::Money cost;
      size_t calls;
      size_t units;
    };
    return Row{100.0 * correct / double(questions.size()), meter.cost(),
               exec->llm_calls, plan.unique_units.size()};
  };

  auto origin = run(false, false);
  auto decomp = run(true, false);
  auto comb = run(true, true);

  std::printf("Table II: query decomposition and combination "
              "(%zu NL2SQL queries, %zu shared few-shot examples)\n",
              questions.size(), examples.size());
  std::printf("%-12s %10s %15s %28s\n", "", "Origin", "Decomposition",
              "Decomposition+Combination");
  std::printf("%-12s %9.0f%% %14.0f%% %27.0f%%\n", "Accuracy", origin.accuracy,
              decomp.accuracy, comb.accuracy);
  std::printf("%-12s %10s %15s %28s\n", "API Cost",
              origin.cost.ToString(3).c_str(), decomp.cost.ToString(3).c_str(),
              comb.cost.ToString(3).c_str());
  std::printf("%-12s %10zu %15zu %28zu\n", "LLM units", origin.units,
              decomp.units, comb.units);
  std::printf(
      "\npaper reference: Accuracy 79%% / 91%% / 91%%; API Cost $0.435 / "
      "$0.289 / $0.129\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
