// Reproduces Table II: "Preliminary results on query decomposition and
// combination".
//
// Paper setup: NL2SQL data inspired by Spider, graded with DAIL-SQL-style
// execution match. Paper numbers:
//               Origin   Decomposition   Decomposition+Combination
//   Accuracy      79%        91%                 91%
//   API Cost    $0.435     $0.289               $0.129
//
// This reproduction: a 20-query stadium workload with shared sub-conditions
// (condition pool of 4 — the sharing structure of the paper's Q1-Q5 example),
// translated by the sim-gpt-3.5 tier with the paper's Q1-Q5 as few-shot
// examples, graded by execution match on our SQL engine.
#include <cstdio>

#include "core/optimize/decomposition.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "llm/skills.h"
#include "sql/database.h"

namespace {

using namespace llmdm;

int main_impl() {
  common::Rng rng(20240705);
  sql::Database db;
  auto script = data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng);
  if (!db.ExecuteScript(script).ok()) return 1;
  auto models = llm::CreatePaperModelLadder(nullptr, 2);

  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 20;
  options.condition_pool = 4;
  options.compound_rate = 0.8;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  std::vector<std::string> questions, gold;
  for (const auto& q : workload) {
    questions.push_back(q.ToNaturalLanguage());
    gold.push_back(q.ToGoldSql());
  }
  std::vector<llm::FewShotExample> examples;
  for (const auto& ex : data::PaperQ1ToQ5()) {
    examples.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
  }

  auto run = [&](bool decompose, bool combine) {
    optimize::QueryBatchOptimizer::Options opts;
    opts.enable_decomposition = decompose;
    opts.enable_combination = combine;
    opts.examples = examples;
    optimize::QueryBatchOptimizer optimizer(opts);
    optimize::BatchPlan plan = optimizer.Plan(questions);
    llm::UsageMeter meter;
    auto exec = optimizer.Execute(plan, *models[1], &meter);
    int correct = 0;
    for (size_t i = 0; i < questions.size(); ++i) {
      auto g = db.Query(gold[i]);
      auto p = db.Query(exec->sql[i]);
      if (g.ok() && p.ok() && p->BagEquals(*g)) ++correct;
    }
    struct Row {
      double accuracy;
      common::Money cost;
      size_t calls;
      size_t units;
    };
    return Row{100.0 * correct / double(questions.size()), meter.cost(),
               exec->llm_calls, plan.unique_units.size()};
  };

  auto origin = run(false, false);
  auto decomp = run(true, false);
  auto comb = run(true, true);

  // Batched execution of the decomposition plan: the same unique units go
  // through one CompleteBatch call against a cached-input-tier twin of the
  // translation model (same spec + seed, so the answers are identical);
  // the prefix cache bills the shared instructions+examples head once.
  llm::ModelSpec batched_spec = models[1]->spec();
  batched_spec.cached_input_price_per_1k =
      common::Money::FromMicros(batched_spec.input_price_per_1k.micros() / 10);
  auto batched_model = std::make_shared<llm::SimulatedLlm>(batched_spec, 2);
  batched_model->RegisterSkill(std::make_unique<llm::Nl2SqlSkill>());
  optimize::QueryBatchOptimizer::Options batched_opts;
  batched_opts.enable_decomposition = true;
  batched_opts.examples = examples;
  optimize::QueryBatchOptimizer batched_optimizer(batched_opts);
  optimize::BatchPlan batched_plan = batched_optimizer.Plan(questions);
  llm::UsageMeter batched_meter;
  auto batched_exec = batched_optimizer.ExecuteBatched(
      batched_plan, *batched_model, &batched_meter);
  int batched_correct = 0;
  for (size_t i = 0; i < questions.size(); ++i) {
    auto g = db.Query(gold[i]);
    auto p = db.Query(batched_exec->sql[i]);
    if (g.ok() && p.ok() && p->BagEquals(*g)) ++batched_correct;
  }
  double batched_accuracy = 100.0 * batched_correct / double(questions.size());

  std::printf("Table II: query decomposition and combination "
              "(%zu NL2SQL queries, %zu shared few-shot examples)\n",
              questions.size(), examples.size());
  std::printf("%-12s %10s %15s %28s\n", "", "Origin", "Decomposition",
              "Decomposition+Combination");
  std::printf("%-12s %9.0f%% %14.0f%% %27.0f%%\n", "Accuracy", origin.accuracy,
              decomp.accuracy, comb.accuracy);
  std::printf("%-12s %10s %15s %28s\n", "API Cost",
              origin.cost.ToString(3).c_str(), decomp.cost.ToString(3).c_str(),
              comb.cost.ToString(3).c_str());
  std::printf("%-12s %10zu %15zu %28zu\n", "LLM units", origin.units,
              decomp.units, comb.units);
  std::printf(
      "\npaper reference: Accuracy 79%% / 91%% / 91%%; API Cost $0.435 / "
      "$0.289 / $0.129\n");

  double per_query_decomp =
      decomp.cost.micros() / 1e6 / double(questions.size());
  double per_query_batched =
      batched_meter.cost().micros() / 1e6 / double(questions.size());
  std::printf(
      "\nDecomposition + prefix-cached batching (one CompleteBatch over %zu "
      "units):\n", batched_plan.unique_units.size());
  std::printf("  Accuracy %.0f%%  API Cost %s  cached tokens %zu  "
              "saved %s\n", batched_accuracy,
              batched_meter.cost().ToString(3).c_str(),
              batched_exec->prefix_cached_tokens,
              batched_exec->prefix_saved.ToString(3).c_str());
  std::printf("  $/query: %.5f unbatched -> %.5f batched (%.0f%% lower)\n",
              per_query_decomp, per_query_batched,
              per_query_decomp > 0.0
                  ? 100.0 * (1.0 - per_query_batched / per_query_decomp)
                  : 0.0);
  // Batching must amortize (cached tokens flow, spend drops) and must not
  // change a single answer.
  if (batched_exec->prefix_cached_tokens == 0 ||
      batched_meter.cost().micros() >= decomp.cost.micros() ||
      batched_accuracy != decomp.accuracy) {
    std::printf("BATCHED DECOMPOSITION REGRESSED\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
