// Reproduces Fig. 3: "Training data generation with LLMs" — labelled
// <query, execution_time> pairs + database information go in; the LLM
// predicts execution time for new queries (few-shot ICL), and LLM-generated
// synthetic pairs augment the training set of a learned cost model.
//
// Series reported:
//   (a) ICL prediction error (MAPE) vs number of in-context examples k;
//   (b) learned-cost-model holdout MAPE trained on scarce real data vs
//       real + LLM-augmented data.
#include <cmath>
#include <cstdio>

#include "core/generation/training_data.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"

int main() {
  using namespace llmdm;
  common::Rng rng(31337);
  sql::Database db;
  if (!db.ExecuteScript(
             data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
           .ok()) {
    return 1;
  }
  auto models = llm::CreatePaperModelLadder(nullptr, 8);

  auto corpus = generation::GenerateQueryCostDataset(db, 80, rng);
  if (!corpus.ok()) return 1;

  std::printf("Fig 3: training data generation for a learned cost model "
              "(%zu <query, exec_time> pairs)\n\n", corpus->size());

  // (a) ICL k-shot sweep.
  std::printf("(a) ICL execution-time prediction, sim-gpt-4\n");
  std::printf("%-10s %10s %12s\n", "k_shots", "MAPE", "api_cost");
  for (size_t k : {1, 2, 4, 8, 16}) {
    generation::IclCostPredictor predictor(models[2], k);
    llm::UsageMeter meter;
    double mape = 0;
    size_t n = 0;
    for (size_t i = 0; i < 15 && i < corpus->size(); ++i) {
      std::vector<generation::QueryCostExample> pool;
      for (size_t j = 0; j < corpus->size(); ++j) {
        if (j != i) pool.push_back((*corpus)[j]);
      }
      auto predicted = predictor.Predict((*corpus)[i], pool, &meter);
      if (!predicted.ok()) continue;
      mape += std::abs(*predicted - (*corpus)[i].execution_time_ms) /
              (*corpus)[i].execution_time_ms;
      ++n;
    }
    std::printf("%-10zu %9.1f%% %12s\n", k, 100.0 * mape / double(n),
                meter.cost().ToString(4).c_str());
  }

  // (b) augmentation: scarce real data vs real + synthetic.
  std::printf("\n(b) learned cost model: holdout MAPE vs training set\n");
  std::printf("%-26s %10s\n", "training_set", "MAPE");
  std::vector<generation::QueryCostExample> scarce(corpus->begin(),
                                                   corpus->begin() + 12);
  std::vector<generation::QueryCostExample> holdout(corpus->begin() + 30,
                                                    corpus->end());
  double scarce_mape = generation::EvaluateCostModel(scarce, holdout);
  std::printf("%-26s %9.1f%%\n", "real (12 pairs)", 100.0 * scarce_mape);
  llm::UsageMeter aug_meter;
  auto augmented =
      generation::AugmentCostDataset(scarce, 3.0, *models[2], &aug_meter);
  if (!augmented.ok()) return 1;
  double augmented_mape = generation::EvaluateCostModel(*augmented, holdout);
  std::printf("%-26s %9.1f%%   (%zu pairs, aug cost %s)\n",
              "real + LLM-synthetic", 100.0 * augmented_mape,
              augmented->size(), aug_meter.cost().ToString(4).c_str());
  std::printf("%-26s %9.1f%%\n", "real (all 30 pairs)",
              100.0 * generation::EvaluateCostModel(
                          {corpus->begin(), corpus->begin() + 30}, holdout));
  return 0;
}
