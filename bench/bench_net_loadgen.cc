// Load generator for the network front door: drives the llmdm wire protocol
// over a real loopback socket and reports transport throughput and tail
// latency — the numbers the in-process benches cannot see (framing, epoll
// wakeups, kernel buffers, syscalls).
//
// Two cells:
//   net_closed_loop  C connections, each a thread issuing Call() back to
//                    back — throughput under self-clocking load.
//   net_open_loop    one connection, a sender thread pacing requests at a
//                    fixed offered rate while a receiver thread drains —
//                    latency under load the client does not slow down for.
//
// By default the bench stands up its own NetServer + serve::Server in
// process (shed_policy kNone: every request must be answered) and, after the
// load, enforces the subsystem's two acceptance criteria via exit status:
//   - byte-identity: every text/model/cost received over the wire equals a
//     direct Submit() of the same requests on an identically configured twin;
//   - clean drain: Shutdown() flushes every response with zero forced closes.
// With --port=N it drives an externally started llmdm_server instead (the
// verify.sh net-smoke stage does this) and only checks that every request
// is answered OK.
//
// Results merge into BENCH_perf.json (--out=PATH): existing net_* rows are
// replaced, everything else is preserved. A missing or foreign file gets a
// standalone {"meta", "results"} document.
//
//   bench_net_loadgen [--benchmark-smoke] [--out=PATH] [--metrics-out=PATH]
//                     [--port=N] [--connections=N] [--requests=N] [--rate=N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "llm/simulated.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

using namespace llmdm;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileUs(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  size_t idx = static_cast<size_t>(p * (latencies->size() - 1));
  return (*latencies)[idx];
}

struct Echo {
  uint64_t id;
  std::string text;
  std::string model;
  int64_t cost_micros;
};

struct CellResult {
  std::string name;
  size_t connections = 0;
  size_t ops = 0;
  double wall_s = 0.0;
  double rate_rps = 0.0;  // offered (open loop only)
  std::vector<double> latencies_us;
  std::vector<Echo> echoes;
  bool all_ok = true;
};

net::WireRequest MakeLoadRequest(uint64_t id, double arrival_vms) {
  net::WireRequest r;
  r.id = id;
  r.input = "loadgen question #" + std::to_string(id);
  r.arrival_vms = arrival_vms;
  return r;
}

// C threads, each its own connection, Call()ing back to back.
CellResult ClosedLoop(uint16_t port, size_t connections, size_t per_conn) {
  CellResult cell;
  cell.name = "net_closed_loop";
  cell.connections = connections;
  cell.ops = connections * per_conn;

  std::mutex mu;  // guards the merged latency/echo vectors below
  std::atomic<uint64_t> arrival{0};
  std::atomic<bool> ok{true};
  int64_t start_us = NowUs();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      net::Client client;
      net::Client::Options copts;
      copts.port = port;
      if (!client.Connect(copts).ok()) {
        ok.store(false);
        return;
      }
      std::vector<double> lats;
      std::vector<Echo> echoes;
      lats.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        uint64_t id = (t + 1) * 1000000 + i;
        double vms = static_cast<double>(arrival.fetch_add(1));
        int64_t t0 = NowUs();
        auto result = client.Call(MakeLoadRequest(id, vms));
        int64_t t1 = NowUs();
        if (!result.ok() || !result->status.ok()) {
          ok.store(false);
          continue;
        }
        lats.push_back(static_cast<double>(t1 - t0));
        echoes.push_back({result->id, result->text, result->model,
                          result->cost.micros()});
      }
      std::lock_guard<std::mutex> lock(mu);
      cell.latencies_us.insert(cell.latencies_us.end(), lats.begin(),
                               lats.end());
      cell.echoes.insert(cell.echoes.end(), echoes.begin(), echoes.end());
    });
  }
  for (std::thread& t : threads) t.join();
  cell.wall_s = static_cast<double>(NowUs() - start_us) / 1e6;
  cell.all_ok = ok.load();
  return cell;
}

// One connection, sender pacing at `rate` requests/s, receiver draining —
// the full-duplex split net::Client documents.
CellResult OpenLoop(uint16_t port, size_t requests, double rate) {
  CellResult cell;
  cell.name = "net_open_loop";
  cell.connections = 1;
  cell.ops = requests;
  cell.rate_rps = rate;

  net::Client client;
  net::Client::Options copts;
  copts.port = port;
  if (!client.Connect(copts).ok()) {
    cell.all_ok = false;
    return cell;
  }

  constexpr uint64_t kBase = 9000000;
  std::vector<std::atomic<int64_t>> sent_us(requests);
  std::atomic<bool> ok{true};
  int64_t start_us = NowUs();
  std::thread sender([&] {
    const double interval_us = 1e6 / rate;
    for (size_t i = 0; i < requests; ++i) {
      int64_t due = start_us + static_cast<int64_t>(interval_us * i);
      while (NowUs() < due) {
        std::this_thread::yield();
      }
      sent_us[i].store(NowUs(), std::memory_order_relaxed);
      if (!client.Send(MakeLoadRequest(kBase + i, static_cast<double>(i)))
               .ok()) {
        ok.store(false);
        return;
      }
    }
  });
  for (size_t i = 0; i < requests; ++i) {
    auto result = client.Receive();
    if (!result.ok() || !result->status.ok()) {
      ok.store(false);
      break;
    }
    int64_t t0 = sent_us[result->id - kBase].load(std::memory_order_relaxed);
    cell.latencies_us.push_back(static_cast<double>(NowUs() - t0));
    cell.echoes.push_back(
        {result->id, result->text, result->model, result->cost.micros()});
  }
  sender.join();
  cell.wall_s = static_cast<double>(NowUs() - start_us) / 1e6;
  cell.all_ok = ok.load();
  return cell;
}

// The byte-identity gate: every echo received over the wire must match a
// direct Submit() of the same request on an identically configured backend.
bool EchoesMatchDirectSubmit(const std::vector<CellResult>& cells) {
  auto models = llm::CreatePaperModelLadder(nullptr, 2024);
  serve::Server::Options so;
  so.worker_threads = 8;
  so.virtual_concurrency = 8;
  so.shed_policy = serve::ShedPolicy::kNone;
  serve::Server twin(models[2], so);

  std::map<uint64_t, Echo> by_id;
  for (const CellResult& cell : cells) {
    for (const Echo& e : cell.echoes) by_id[e.id] = e;
  }
  for (const auto& [id, echo] : by_id) {
    serve::Request req;
    req.id = id;
    req.skill = "freeform";
    req.input = "loadgen question #" + std::to_string(id);
    req.arrival_vms = 0.0;  // text/model/cost do not depend on arrival
    twin.Submit(req);
  }
  std::vector<serve::Response> direct = twin.Drain();
  if (direct.size() != by_id.size()) {
    std::fprintf(stderr, "byte-identity: %zu direct responses for %zu ids\n",
                 direct.size(), by_id.size());
    return false;
  }
  for (const serve::Response& r : direct) {
    const Echo& echo = by_id[r.id];
    if (echo.text != r.text || echo.model != r.model ||
        echo.cost_micros != r.cost.micros()) {
      std::fprintf(stderr,
                   "byte-identity: id %llu differs over the wire "
                   "(text %zu vs %zu bytes, model %s vs %s)\n",
                   static_cast<unsigned long long>(r.id), echo.text.size(),
                   r.text.size(), echo.model.c_str(), r.model.c_str());
      return false;
    }
  }
  return true;
}

std::string RowJson(CellResult* cell) {
  double p50 = PercentileUs(&cell->latencies_us, 0.50);
  double p99 = PercentileUs(&cell->latencies_us, 0.99);
  double rps = cell->wall_s > 0.0
                   ? static_cast<double>(cell->latencies_us.size()) /
                         cell->wall_s
                   : 0.0;
  std::ostringstream row;
  row << "    {\"name\": \"" << cell->name << "\", \"connections\": "
      << cell->connections << ", \"ops\": " << cell->ops;
  if (cell->rate_rps > 0.0) {
    row << ", \"offered_rps\": " << static_cast<int64_t>(cell->rate_rps);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ", \"net_rps\": %.1f, \"net_p50_us\": %.2f, "
                "\"net_p99_us\": %.2f}",
                rps, p50, p99);
  row << buf;
  return row.str();
}

// Replace net_* rows in an existing BENCH_perf.json (ours always sit at the
// head of "results", so removal never leaves a dangling comma), or write a
// standalone document when the target is missing or foreign.
bool WriteRows(const std::string& path, const std::vector<std::string>& rows,
               bool smoke) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string out;
  const std::string anchor = "\"results\": [";
  size_t anchor_pos = existing.find(anchor);
  if (anchor_pos != std::string::npos) {
    std::istringstream lines(existing);
    std::string line;
    bool inserted = false;
    while (std::getline(lines, line)) {
      if (line.find("\"name\": \"net_") != std::string::npos) continue;
      out += line;
      out += '\n';
      if (!inserted && line.find(anchor) != std::string::npos) {
        for (const std::string& row : rows) {
          out += row;
          out += ",\n";
        }
        inserted = true;
      }
    }
  } else {
    out = "{\n  \"meta\": {\"bench\": \"net_loadgen\", \"smoke\": ";
    out += smoke ? "true" : "false";
    out += "},\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      out += rows[i];
      out += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  f << out;
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  bench::BenchArgSpec spec;
  spec.accepts_out = true;
  spec.default_out = "BENCH_net.json";
  spec.passthrough_unknown = true;
  if (!bench::ParseBenchArgs(argc, argv, spec, &args)) return 2;

  uint16_t external_port = 0;
  size_t connections = 4;
  size_t per_conn = 5000;
  size_t open_requests = 20000;
  double open_rate = 20000.0;
  for (size_t i = 1; i < args.passthrough.size(); ++i) {
    const char* arg = args.passthrough[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      external_port = static_cast<uint16_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--connections=", 14) == 0) {
      connections = static_cast<size_t>(std::atoi(arg + 14));
    } else if (std::strncmp(arg, "--requests=", 11) == 0) {
      per_conn = static_cast<size_t>(std::atoi(arg + 11));
      open_requests = per_conn * 4;
    } else if (std::strncmp(arg, "--rate=", 7) == 0) {
      open_rate = std::atof(arg + 7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--benchmark-smoke] [--out=PATH] "
                   "[--metrics-out=PATH] [--port=N] [--connections=N] "
                   "[--requests=N] [--rate=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (args.smoke) {
    connections = 2;
    per_conn = 200;
    open_requests = 400;
    open_rate = 5000.0;
  }

  // In-process front door unless --port points at an external llmdm_server.
  obs::Registry registry;
  std::vector<std::shared_ptr<llm::LlmModel>> models;
  std::unique_ptr<serve::Server> backend;
  std::unique_ptr<net::NetServer> server;
  uint16_t port = external_port;
  if (external_port == 0) {
    models = llm::CreatePaperModelLadder(nullptr, 2024);
    serve::Server::Options so;
    so.worker_threads = 8;
    so.virtual_concurrency = 8;
    so.shed_policy = serve::ShedPolicy::kNone;
    so.retain_responses = false;
    so.registry = &registry;
    backend = std::make_unique<serve::Server>(models[2], so);
    net::NetServer::Options no;
    no.port = 0;
    no.registry = &registry;
    server = std::make_unique<net::NetServer>(backend.get(), no);
    common::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
      return 1;
    }
    port = server->port();
  }

  std::vector<CellResult> cells;
  cells.push_back(ClosedLoop(port, connections, per_conn));
  cells.push_back(OpenLoop(port, open_requests, open_rate));

  bool failed = false;
  for (CellResult& cell : cells) {
    if (!cell.all_ok || cell.latencies_us.size() != cell.ops) {
      std::fprintf(stderr, "%s: %zu/%zu requests answered OK\n",
                   cell.name.c_str(), cell.latencies_us.size(), cell.ops);
      failed = true;
    }
  }

  if (server != nullptr) {
    server->Shutdown();
    net::NetStats stats = server->stats();
    const uint64_t expected = connections * per_conn + open_requests;
    if (stats.drain_forced_closes != 0 || stats.responses_tx != expected) {
      std::fprintf(stderr,
                   "drain: %llu responses for %llu requests, %llu forced "
                   "closes\n",
                   static_cast<unsigned long long>(stats.responses_tx),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(stats.drain_forced_closes));
      failed = true;
    }
    (void)backend->Drain();
    if (!EchoesMatchDirectSubmit(cells)) failed = true;
  }

  std::vector<std::string> rows;
  for (CellResult& cell : cells) {
    rows.push_back(RowJson(&cell));
    std::printf("%s\n", rows.back().c_str());
  }
  if (!WriteRows(args.out_path, rows, args.smoke)) failed = true;
  std::printf("wrote %s\n", args.out_path.c_str());

  if (!args.metrics_out.empty()) {
    std::ofstream mf(args.metrics_out, std::ios::trunc);
    if (mf) {
      mf << registry.PrometheusText();
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
