// Reproduces Fig. 2: "SQL generation with LLMs" — table information + SQL
// constraints in, diverse executable SQL out (simple / multi-join /
// sub-query), plus semantically-equivalent pairs for logic-bug detection
// (the PQS-style application the paper cites as [20]).
#include <cstdio>

#include "core/generation/sql_generator.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"

int main() {
  using namespace llmdm;
  common::Rng rng(2024);
  sql::Database db;
  auto script = data::BuildStadiumDatabaseScript(12, {2013, 2014, 2015}, rng);
  if (!db.ExecuteScript(script).ok()) return 1;

  auto models = llm::CreatePaperModelLadder(nullptr, 7);
  generation::SqlGenerator generator(models[2], 99);
  llm::UsageMeter meter;

  generation::SqlGenConstraints constraints;
  constraints.count = 40;
  constraints.multi_join_fraction = 0.3;
  constraints.subquery_fraction = 0.2;
  constraints.aggregate_fraction = 0.3;
  auto queries = generator.Generate(db, constraints, &meter);
  if (!queries.ok()) return 1;

  size_t by_kind[4] = {0, 0, 0, 0};
  size_t executable = 0, nonempty = 0;
  for (const auto& q : *queries) {
    ++by_kind[static_cast<int>(q.kind)];
    if (q.executable) ++executable;
    if (q.result_rows > 0) ++nonempty;
  }
  std::printf("Fig 2: constraint-aware SQL generation (%zu requested)\n",
              constraints.count);
  std::printf("%-14s %8s\n", "kind", "count");
  std::printf("%-14s %8zu\n", "simple", by_kind[0]);
  std::printf("%-14s %8zu\n", "multi_join", by_kind[1]);
  std::printf("%-14s %8zu\n", "subquery", by_kind[2]);
  std::printf("%-14s %8zu\n", "aggregate", by_kind[3]);
  std::printf("executable: %zu/%zu, non-empty results: %zu\n", executable,
              queries->size(), nonempty);
  std::printf("sample multi-join: ");
  for (const auto& q : *queries) {
    if (q.kind == generation::GeneratedSql::Kind::kMultiJoin) {
      std::printf("%s\n", q.sql.c_str());
      break;
    }
  }

  auto pairs = generator.GenerateEquivalentPairs(db, 12, &meter);
  if (!pairs.ok()) return 1;
  size_t verified = 0;
  for (const auto& [a, b] : *pairs) {
    auto ra = db.Query(a);
    auto rb = db.Query(b);
    if (ra.ok() && rb.ok() && ra->BagEquals(*rb)) ++verified;
  }
  std::printf(
      "\nsemantic-equivalence pairs for logic-bug detection: %zu generated, "
      "%zu verified equal under execution\n",
      pairs->size(), verified);
  std::printf("sample pair:\n  A: %s\n  B: %s\n", (*pairs)[0].first.c_str(),
              (*pairs)[0].second.c_str());
  std::printf("LLM advisory usage: %s\n", meter.ToString().c_str());
  return 0;
}
