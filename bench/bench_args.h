// Shared argv parsing for the bench binaries. Every bench takes the same
// core pair — `--benchmark-smoke` (ctest-friendly sizes, exit status
// enforces the bench's invariants) and `--metrics-out=PATH` (Prometheus
// text export of the determinism cell) — and individual benches opt into
// extras via BenchArgSpec. Centralising the loop keeps flag spelling and
// usage errors identical across binaries.
#ifndef LLMDM_BENCH_BENCH_ARGS_H_
#define LLMDM_BENCH_BENCH_ARGS_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace llmdm::bench {

struct BenchArgs {
  bool smoke = false;       // --benchmark-smoke
  bool qos_smoke = false;   // --qos-smoke (when the spec accepts it)
  bool batch_smoke = false; // --batch-smoke (when the spec accepts it)
  std::string out_path;     // --out=PATH (when the spec accepts it)
  std::string metrics_out;  // --metrics-out=PATH
  /// Flags this parser did not recognise, in order (only populated when the
  /// spec opts into passthrough_unknown). argv[0] is prepended so the vector
  /// can be handed straight to a secondary parser like
  /// benchmark::Initialize(&argc, argv).
  std::vector<char*> passthrough;
};

struct BenchArgSpec {
  /// Accept `--out=PATH` (JSON results file); `default_out` seeds
  /// BenchArgs::out_path.
  bool accepts_out = false;
  const char* default_out = "";
  /// Accept `--qos-smoke` (run only the multi-tenant QoS cell).
  bool accepts_qos_smoke = false;
  /// Accept `--batch-smoke` (run only the continuous-batching cell).
  bool accepts_batch_smoke = false;
  /// Collect unrecognised flags into BenchArgs::passthrough instead of
  /// failing — for benches that wrap another flag-taking framework
  /// (google-benchmark's --benchmark_* family).
  bool passthrough_unknown = false;
};

/// Parses argv into `out`. On an unknown flag, prints a usage line listing
/// exactly the flags this bench accepts and returns false (callers exit 2) —
/// unless the spec opts into passthrough_unknown, in which case unknown
/// flags land in BenchArgs::passthrough for a downstream parser.
inline bool ParseBenchArgs(int argc, char** argv, const BenchArgSpec& spec,
                           BenchArgs* out) {
  out->out_path = spec.default_out;
  if (spec.passthrough_unknown && argc > 0) {
    out->passthrough.push_back(argv[0]);
  }
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strcmp(arg, "--benchmark-smoke") == 0) {
      out->smoke = true;
    } else if (spec.accepts_qos_smoke && std::strcmp(arg, "--qos-smoke") == 0) {
      out->qos_smoke = true;
    } else if (spec.accepts_batch_smoke &&
               std::strcmp(arg, "--batch-smoke") == 0) {
      out->batch_smoke = true;
    } else if (spec.accepts_out && std::strncmp(arg, "--out=", 6) == 0) {
      out->out_path = arg + 6;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      out->metrics_out = arg + 14;
    } else if (spec.passthrough_unknown) {
      out->passthrough.push_back(arg);
    } else {
      std::string usage = "usage: %s [--benchmark-smoke]";
      if (spec.accepts_qos_smoke) usage += " [--qos-smoke]";
      if (spec.accepts_batch_smoke) usage += " [--batch-smoke]";
      if (spec.accepts_out) usage += " [--out=PATH]";
      usage += " [--metrics-out=PATH]\n";
      std::fprintf(stderr, usage.c_str(), argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace llmdm::bench

#endif  // LLMDM_BENCH_BENCH_ARGS_H_
