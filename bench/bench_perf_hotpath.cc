// Wall-clock hot-path harness (not a paper table): measures the serving
// fast path this repo actually executes per request — semantic-cache lookup
// and insert across thread/shard counts, embedder throughput with and
// without the allocation-free path, ANN vs flat lookup at cache sizes where
// the scan is the bottleneck, and end-to-end serve QPS with and without
// single-flight coalescing.
//
// Emits machine-readable JSON (default ./BENCH_perf.json, override with
// --out=PATH): {"meta": {...}, "results": [{name, threads, shards, ops,
// ops_per_sec, p50_us, p99_us, ...}]}. `--benchmark-smoke` shrinks every
// workload so the whole binary finishes in a couple of seconds — that mode
// is what the `perf`-labelled ctest entry runs; absolute numbers are only
// meaningful from a full run of a -DCMAKE_BUILD_TYPE=Release build.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "common/money.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/optimize/semantic_cache.h"
#include "embed/embedder.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "vectordb/kernels.h"

namespace {

using namespace llmdm;
using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  size_t threads = 1;
  size_t shards = 1;
  size_t ops = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Scenario-specific extras rendered verbatim into the JSON object
  // (e.g. ", \"coalesced\": 30"). May be empty.
  std::string extra_json;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted_us.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac;
}

/// Runs `op(thread_id, i)` ops_per_thread times on each of `threads`
/// threads (all released together), timing every call.
template <typename Op>
BenchResult RunThreaded(const std::string& name, size_t threads,
                        size_t shards, size_t ops_per_thread, const Op& op) {
  std::vector<std::vector<double>> durations_us(threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    durations_us[t].reserve(ops_per_thread);
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t i = 0; i < ops_per_thread; ++i) {
        auto start = Clock::now();
        op(t, i);
        durations_us[t].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
    });
  }
  auto wall_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  double wall_sec =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  std::vector<double> all_us;
  for (auto& v : durations_us) {
    all_us.insert(all_us.end(), v.begin(), v.end());
  }
  std::sort(all_us.begin(), all_us.end());
  BenchResult r;
  r.name = name;
  r.threads = threads;
  r.shards = shards;
  r.ops = all_us.size();
  r.ops_per_sec = wall_sec > 0.0 ? static_cast<double>(r.ops) / wall_sec : 0.0;
  r.p50_us = Percentile(all_us, 0.50);
  r.p99_us = Percentile(all_us, 0.99);
  return r;
}

std::string Query(size_t i) {
  return common::StrFormat(
      "perf query %zu select stadiums where capacity > %zu and year = %zu", i,
      1000 + i % 17, 2000 + i % 31);
}

optimize::SemanticCache::Options CacheOptions(size_t shards,
                                              size_t capacity) {
  optimize::SemanticCache::Options options;
  options.similarity_threshold = 0.9;
  options.capacity = capacity;
  options.num_shards = shards;
  return options;
}

// ---- Scenarios --------------------------------------------------------------

// The hand-written reference the kernels replaced: one accumulator, strict
// source order — exactly what the compiler emits for the old
// embed::CosineSimilarity inner loop without -ffast-math. This is the
// baseline the ≥4x dispatch-speedup claim is measured against.
float NaiveDot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Kernel microbench: each timed op scores one query against a contiguous
/// arena of `rows` vectors (the FlatIndex/IVF-cell scan shape). Variants:
/// "naive" = sequential scalar reference, "dispatch" = DotBatch on the
/// runtime-selected kernel, "int8" = quantized DotBatchI8.
BenchResult KernelDot(const std::string& variant, size_t rows, size_t dim,
                      size_t ops) {
  common::Rng rng(42);
  std::vector<float> base(rows * dim), query(dim), out(rows);
  for (float& x : base) x = float(rng.Normal());
  for (float& x : query) x = float(rng.Normal());

  std::vector<int8_t> codes(rows * dim), qcodes(dim);
  std::vector<float> scales(rows);
  std::vector<int32_t> iout(rows);
  float qscale = 0.0f;
  if (variant == "int8") {
    for (size_t r = 0; r < rows; ++r) {
      vectordb::kernels::QuantizeSymmetric(base.data() + r * dim, dim,
                                           codes.data() + r * dim, &scales[r]);
    }
    vectordb::kernels::QuantizeSymmetric(query.data(), dim, qcodes.data(),
                                         &qscale);
  }

  BenchResult r = RunThreaded(
      "kernel_dot_" + variant, 1, 1, ops, [&](size_t, size_t) {
        if (variant == "naive") {
          for (size_t row = 0; row < rows; ++row) {
            out[row] = NaiveDot(query.data(), base.data() + row * dim, dim);
          }
        } else if (variant == "int8") {
          vectordb::kernels::DotBatchI8(qcodes.data(), codes.data(), rows, dim,
                                        iout.data());
        } else {
          vectordb::kernels::DotBatch(query.data(), base.data(), rows, dim,
                                      out.data());
        }
      });
  // ops are whole-arena passes; report the per-distance rate too so rows
  // across machines/dims compare directly.
  double mdist_per_sec = r.ops_per_sec * static_cast<double>(rows) / 1e6;
  r.extra_json = common::StrFormat(
      ", \"dim\": %zu, \"rows_per_op\": %zu, \"mdist_per_sec\": %.1f", dim,
      rows, mdist_per_sec);
  return r;
}

BenchResult CacheLookup(size_t threads, size_t shards, size_t entries,
                        size_t ops_per_thread) {
  optimize::SemanticCache cache(CacheOptions(shards, entries));
  for (size_t i = 0; i < entries; ++i) {
    cache.Insert(Query(i), "answer", common::Money::FromDollars(0.001));
  }
  return RunThreaded("cache_lookup", threads, shards, ops_per_thread,
                     [&](size_t t, size_t i) {
                       // Hit path: every query is cached; each thread walks
                       // its own stride so the shards all stay busy.
                       cache.Lookup(Query((t * ops_per_thread + i * 7) %
                                          entries));
                     });
}

BenchResult CacheInsert(size_t threads, size_t shards, size_t capacity,
                        size_t ops_per_thread) {
  optimize::SemanticCache cache(CacheOptions(shards, capacity));
  // Pre-fill to capacity so every measured insert runs the eviction scan —
  // the worst case a serving thread can hit.
  for (size_t i = 0; i < capacity; ++i) {
    cache.Insert(Query(1000000 + i), "warm", common::Money::FromDollars(0.001));
  }
  return RunThreaded(
      "cache_insert", threads, shards, ops_per_thread,
      [&](size_t t, size_t i) {
        cache.Insert(Query(2000000 + t * ops_per_thread + i), "fresh",
                     common::Money::FromDollars(0.001));
      });
}

BenchResult EmbedThroughput(bool into, size_t ops) {
  embed::HashingEmbedder embedder;
  embed::Vector reuse;
  std::vector<std::string> corpus;
  for (size_t i = 0; i < 64; ++i) corpus.push_back(Query(i));
  return RunThreaded(into ? "embed_into" : "embed_alloc", 1, 1, ops,
                     [&](size_t, size_t i) {
                       const std::string& text = corpus[i % corpus.size()];
                       if (into) {
                         embedder.EmbedInto(text, &reuse);
                       } else {
                         embed::Vector v = embedder.Embed(text);
                         (void)v;
                       }
                     });
}

BenchResult AnnLookup(optimize::CacheIndexKind kind, size_t entries,
                      size_t ops, bool quantize = false, size_t shards = 1) {
  auto options = CacheOptions(shards, entries);
  options.index = kind;
  options.ann_min_size = 64;
  options.quantize = quantize;
  optimize::SemanticCache cache(options);
  for (size_t i = 0; i < entries; ++i) {
    cache.Insert(Query(i), "answer", common::Money::FromDollars(0.001));
  }
  const char* name =
      quantize ? "ann_lookup_int8"
               : (kind == optimize::CacheIndexKind::kHnsw ? "ann_lookup_hnsw"
                                                          : "ann_lookup_flat");
  return RunThreaded(name, 1, shards, ops, [&](size_t, size_t i) {
    cache.Lookup(Query((i * 13) % entries));
  });
}

// When `metrics_text` is non-null the cell runs against an injected
// obs::Registry and appends its Prometheus export (one commented section per
// cell) for the --metrics-out file.
BenchResult ServeQps(bool single_flight, size_t requests,
                     std::string* metrics_text, bool batching = false) {
  llm::ModelSpec spec;
  spec.name = "sim-serve";
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  if (batching) {
    // The cached input tier the batch scheduler's prefix trie prices the
    // shared prompt head at; absent (the default) batching is billing-inert.
    spec.cached_input_price_per_1k = common::Money::FromDollars(0.0001);
  }
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = 100.0;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, 17);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());

  obs::Registry registry;
  serve::Server::Options options;
  options.worker_threads = 4;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.single_flight = single_flight;
  options.batching = batching;
  if (metrics_text != nullptr) options.registry = &registry;
  serve::Server server(model, options);

  auto wall_start = Clock::now();
  constexpr size_t kBurst = 4;  // every query arrives 4x back to back
  for (size_t i = 0; i < requests; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * 1.0;
    req.input = Query(i / kBurst);
    server.Submit(req);
  }
  auto responses = server.Drain();
  double wall_sec =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  auto stats = server.stats();
  BenchResult r;
  r.name = batching ? "serve_qps_batched"
           : single_flight ? "serve_qps_single_flight"
                           : "serve_qps_baseline";
  r.threads = options.worker_threads;
  r.ops = responses.size();
  r.ops_per_sec = wall_sec > 0.0 ? static_cast<double>(r.ops) / wall_sec : 0.0;
  r.extra_json = common::StrFormat(
      ", \"coalesced\": %zu, \"meter_calls\": %zu, \"meter_cost_micros\": %lld",
      stats.coalesced, server.meter().calls(),
      (long long)server.meter().cost().micros());
  if (batching) {
    r.extra_json += common::StrFormat(
        ", \"batch_closes\": %zu, \"batch_requests\": %zu, "
        "\"batch_prefix_cached_tokens\": %zu, "
        "\"batch_prefix_saved_micros\": %lld",
        stats.batches_closed, stats.batched_requests,
        stats.prefix_cached_tokens, (long long)stats.prefix_saved.micros());
  }
  if (metrics_text != nullptr) {
    *metrics_text += common::StrFormat("# cell: %s\n", r.name.c_str());
    *metrics_text += registry.PrometheusText();
  }
  return r;
}

// ---- Driver -----------------------------------------------------------------

void AppendJson(std::string* out, const BenchResult& r) {
  *out += common::StrFormat(
      "    {\"name\": \"%s\", \"threads\": %zu, \"shards\": %zu, "
      "\"ops\": %zu, \"ops_per_sec\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f%s}",
      r.name.c_str(), r.threads, r.shards, r.ops, r.ops_per_sec, r.p50_us,
      r.p99_us, r.extra_json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  llmdm::bench::BenchArgSpec spec;
  spec.accepts_out = true;
  spec.default_out = "BENCH_perf.json";
  llmdm::bench::BenchArgs args;
  if (!llmdm::bench::ParseBenchArgs(argc, argv, spec, &args)) return 2;
  const bool smoke = args.smoke;
  const std::string out_path = args.out_path;
  const std::string metrics_out = args.metrics_out;

  // Smoke mode trades statistical weight for a ctest-friendly runtime; the
  // scenario set and the JSON shape are identical to the full run.
  const size_t kEntries = smoke ? 256 : 2048;
  const size_t kLookupOps = smoke ? 40 : 400;
  const size_t kInsertCap = smoke ? 256 : 1024;
  const size_t kInsertOps = smoke ? 40 : 300;
  const size_t kEmbedOps = smoke ? 2000 : 20000;
  const size_t kAnnEntries = smoke ? 512 : 4096;
  const size_t kAnnOps = smoke ? 50 : 400;
  const size_t kServeReqs = smoke ? 80 : 400;
  // The kernel arena stays L2-resident (1024 x 256 floats = 1 MB) in both
  // modes: the row measures distance-kernel throughput, not DRAM bandwidth —
  // at larger arenas every variant converges on the memory wall and the
  // dispatch-vs-naive ratio stops describing the kernels.
  const size_t kKernelRows = 1024;
  const size_t kKernelDim = 256;
  const size_t kKernelOps = smoke ? 20 : 400;
  // The int8 row runs at the ISSUE's headline scale (64k entries, 8 shards:
  // each probe scans an ~8k-row quantized arena) in full mode only.
  const size_t kInt8Entries = smoke ? 1024 : 65536;
  const size_t kInt8Shards = 8;
  const size_t kInt8Ops = smoke ? 50 : 2000;

  std::vector<BenchResult> results;
  results.push_back(KernelDot("naive", kKernelRows, kKernelDim, kKernelOps));
  results.push_back(KernelDot("dispatch", kKernelRows, kKernelDim, kKernelOps));
  results.push_back(KernelDot("int8", kKernelRows, kKernelDim, kKernelOps));
  struct { size_t threads, shards; } sweep[] = {{1, 1}, {8, 1}, {8, 8}};
  for (const auto& cfg : sweep) {
    results.push_back(
        CacheLookup(cfg.threads, cfg.shards, kEntries, kLookupOps));
  }
  for (const auto& cfg : sweep) {
    results.push_back(
        CacheInsert(cfg.threads, cfg.shards, kInsertCap, kInsertOps));
  }
  results.push_back(EmbedThroughput(/*into=*/false, kEmbedOps));
  results.push_back(EmbedThroughput(/*into=*/true, kEmbedOps));
  results.push_back(
      AnnLookup(optimize::CacheIndexKind::kFlat, kAnnEntries, kAnnOps));
  results.push_back(
      AnnLookup(optimize::CacheIndexKind::kHnsw, kAnnEntries, kAnnOps));
  results.push_back(AnnLookup(optimize::CacheIndexKind::kFlat, kInt8Entries,
                              kInt8Ops, /*quantize=*/true, kInt8Shards));
  std::string metrics_text;
  std::string* metrics_collector =
      metrics_out.empty() ? nullptr : &metrics_text;
  if (metrics_collector != nullptr) {
    // Which kernel this machine actually ran: the dispatch gauge makes perf
    // trajectories across machines interpretable next to the numbers.
    obs::Registry dispatch_registry;
    vectordb::kernels::ExportDispatchMetrics(&dispatch_registry);
    metrics_text += "# cell: kernel_dispatch\n";
    metrics_text += dispatch_registry.PrometheusText();
  }
  results.push_back(
      ServeQps(/*single_flight=*/false, kServeReqs, metrics_collector));
  results.push_back(
      ServeQps(/*single_flight=*/true, kServeReqs, metrics_collector));
  results.push_back(ServeQps(/*single_flight=*/false, kServeReqs,
                             metrics_collector, /*batching=*/true));

  std::printf("%-26s %7s %6s %10s %12s %10s %10s\n", "scenario", "threads",
              "shards", "ops", "ops/sec", "p50_us", "p99_us");
  for (const auto& r : results) {
    std::printf("%-26s %7zu %6zu %10zu %12.1f %10.2f %10.2f\n",
                r.name.c_str(), r.threads, r.shards, r.ops, r.ops_per_sec,
                r.p50_us, r.p99_us);
  }

  // The headline claim: sharding must pay off on the contended lookup path.
  double lookup_8t_1s = 0.0, lookup_8t_8s = 0.0;
  for (const auto& r : results) {
    if (r.name == "cache_lookup" && r.threads == 8) {
      (r.shards == 8 ? lookup_8t_8s : lookup_8t_1s) = r.ops_per_sec;
    }
  }
  double speedup = lookup_8t_1s > 0.0 ? lookup_8t_8s / lookup_8t_1s : 0.0;
  std::printf("cache_lookup speedup 8t/8s vs 8t/1s: %.2fx\n", speedup);

  // The tentpole claim: the dispatched kernel vs. the naive sequential
  // reference, single thread, same arena.
  double dot_naive = 0.0, dot_dispatch = 0.0;
  for (const auto& r : results) {
    if (r.name == "kernel_dot_naive") dot_naive = r.ops_per_sec;
    if (r.name == "kernel_dot_dispatch") dot_dispatch = r.ops_per_sec;
  }
  double kernel_speedup = dot_naive > 0.0 ? dot_dispatch / dot_naive : 0.0;
  const char* dispatch_name = llmdm::vectordb::kernels::DispatchName(
      llmdm::vectordb::kernels::ActiveDispatch());
  std::printf("kernel_dot speedup dispatch(%s) vs naive: %.2fx\n",
              dispatch_name, kernel_speedup);

  std::string json = "{\n  \"meta\": {";
  json += common::StrFormat(
      "\"bench\": \"perf_hotpath\", \"smoke\": %s, "
      "\"hardware_threads\": %u, "
      "\"kernel_dispatch\": \"%s\", \"quantization\": \"int8_rescore\", "
      "\"kernel_dot_speedup_vs_naive\": %.2f, "
      "\"lookup_speedup_8t_8s_vs_8t_1s\": %.2f},\n  \"results\": [\n",
      smoke ? "true" : "false", std::thread::hardware_concurrency(),
      dispatch_name, kernel_speedup, speedup);
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(&json, results[i]);
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!metrics_out.empty()) {
    std::FILE* mf = std::fopen(metrics_out.c_str(), "w");
    if (mf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fwrite(metrics_text.data(), 1, metrics_text.size(), mf);
    std::fclose(mf);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
