// Reproduces Fig. 1: the data-management application pipeline LLMs can be
// adapted to — data generation -> transformation -> integration ->
// exploration — run end-to-end on a healthcare-flavoured synthetic corpus
// with per-stage LLM usage metering.
#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"

namespace {

using namespace llmdm;

// Prints one pipeline report, with per-stage retry accounting when the
// resilience layer was in play.
void PrintReport(const core::DataManagementPipeline::Report& report) {
  std::printf("%-16s %8s %10s %26s  %s\n", "stage", "calls", "cost",
              "attempts/retries/fallbacks", "summary");
  for (const auto& stage : report.stages) {
    std::printf("%-16s %8zu %10s %15zu/%3zu/%3zu       %s%s\n",
                stage.stage.c_str(), stage.llm_calls,
                stage.llm_cost.ToString(4).c_str(), stage.retry.attempts,
                stage.retry.retries,
                stage.retry.fallbacks + stage.retry.stale_serves,
                stage.degraded ? "[DEGRADED] " : "", stage.summary.c_str());
  }
  std::printf("%-16s %8zu %10s  (%zu degraded stage%s)\n", "TOTAL",
              report.total_llm_calls, report.total_cost.ToString(4).c_str(),
              report.degraded_stages,
              report.degraded_stages == 1 ? "" : "s");
}

}  // namespace

int main() {
  auto models = llm::CreatePaperModelLadder(nullptr, 42);
  core::DataManagementPipeline::Options options;
  options.model = models[2];
  options.num_patients = 60;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("Fig 1: end-to-end data management pipeline\n");
  PrintReport(*report);

  // Prove the artifacts are live: SQL over the integrated store and a
  // semantic query over the lake.
  auto risky = pipeline.database().Query(
      "SELECT COUNT(*) FROM patients WHERE systolic_bp > 150 AND smoker = "
      "TRUE");
  if (risky.ok()) {
    std::printf("\npost-pipeline SQL: %s high-risk patients\n",
                risky->at(0, 0).ToString().c_str());
  }
  auto hits = pipeline.lake().Query("cardiology chest imaging", 2);
  std::printf("post-pipeline lake query 'cardiology chest imaging' -> ");
  for (const auto& hit : hits) std::printf("[%s] ", hit.title.c_str());
  std::printf("\n");

  // ---- the same pipeline on a flaky endpoint ------------------------------
  // 20% of calls are rejected/damaged (deterministically); the resilience
  // layer retries and falls back to the mid-tier model, so every stage still
  // lands. The unprotected run shows what those stages look like without it.
  auto run_faulted = [&](bool resilient) {
    auto faulty = std::make_shared<llm::FaultInjectingLlm>(
        models[2], llm::FaultProfile::Uniform(0.20), 4242);
    core::DataManagementPipeline::Options faulted_options;
    faulted_options.num_patients = 60;
    if (resilient) {
      llm::ResilientLlm::Options resilience;
      resilience.retry.max_attempts = 5;
      resilience.seed = 11;
      auto wrapped = std::make_shared<llm::ResilientLlm>(faulty, resilience);
      wrapped->AddFallbackModel(models[1]);
      faulted_options.model = wrapped;
    } else {
      faulted_options.model = faulty;
    }
    core::DataManagementPipeline faulted(faulted_options);
    auto faulted_report = faulted.Run();
    if (!faulted_report.ok()) {
      std::fprintf(stderr, "faulted pipeline failed: %s\n",
                   faulted_report.status().ToString().c_str());
      return;
    }
    std::printf("\nwith 20%% endpoint faults, %s:\n",
                resilient ? "resilience layer ON" : "unprotected");
    PrintReport(*faulted_report);
  };
  run_faulted(/*resilient=*/false);
  run_faulted(/*resilient=*/true);
  return 0;
}
