// Reproduces Fig. 1: the data-management application pipeline LLMs can be
// adapted to — data generation -> transformation -> integration ->
// exploration — run end-to-end on a healthcare-flavoured synthetic corpus
// with per-stage LLM usage metering.
#include <cstdio>

#include "core/pipeline.h"
#include "llm/simulated.h"

int main() {
  using namespace llmdm;
  auto models = llm::CreatePaperModelLadder(nullptr, 42);
  core::DataManagementPipeline::Options options;
  options.model = models[2];
  options.num_patients = 60;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("Fig 1: end-to-end data management pipeline\n");
  std::printf("%-16s %8s %10s  %s\n", "stage", "calls", "cost", "summary");
  for (const auto& stage : report->stages) {
    std::printf("%-16s %8zu %10s  %s\n", stage.stage.c_str(), stage.llm_calls,
                stage.llm_cost.ToString(4).c_str(), stage.summary.c_str());
  }
  std::printf("%-16s %8zu %10s\n", "TOTAL", report->total_llm_calls,
              report->total_cost.ToString(4).c_str());

  // Prove the artifacts are live: SQL over the integrated store and a
  // semantic query over the lake.
  auto risky = pipeline.database().Query(
      "SELECT COUNT(*) FROM patients WHERE systolic_bp > 150 AND smoker = "
      "TRUE");
  if (risky.ok()) {
    std::printf("\npost-pipeline SQL: %s high-risk patients\n",
                risky->at(0, 0).ToString().c_str());
  }
  auto hits = pipeline.lake().Query("cardiology chest imaging", 2);
  std::printf("post-pipeline lake query 'cardiology chest imaging' -> ");
  for (const auto& hit : hits) std::printf("[%s] ", hit.title.c_str());
  std::printf("\n");
  return 0;
}
