// Reproduces Table I: "Preliminary results on LLM cascade".
//
// Paper setup: 40 queries from HotpotQA, three OpenAI models, and an LLM
// cascade with a trained decision model. Paper numbers: babbage-002 27.5%,
// gpt-4 92.5%; "LLM cascade achieves performance similar to gpt-4 but with
// significantly lower costs".
//
// This reproduction: 40 synthetic multi-hop QA queries (the DESIGN.md
// substitution for HotpotQA), the simulated model ladder priced at the
// paper's quoted rates, self-consistency decision model with threshold 0.8.
#include <cstdio>

#include "core/optimize/cascade.h"
#include "data/qa_workload.h"
#include "llm/simulated.h"

namespace {

using namespace llmdm;

int main_impl() {
  common::Rng rng(20240704);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(80, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 1);
  // Hop mix tuned to HotpotQA's difficulty spread (mostly 2-hop).
  auto workload = data::GenerateQaWorkload(kb, 40, {0.25, 0.45, 0.30}, rng);

  std::printf("Table I: LLM cascade on %zu multi-hop QA queries\n",
              workload.size());
  std::printf("%-22s %10s %12s %8s\n", "model", "accuracy", "api_cost",
              "calls");

  auto grade = [&](const std::string& answer, const data::QaItem& item) {
    return answer == item.answer;
  };

  for (const auto& model : ladder) {
    int correct = 0;
    llm::UsageMeter meter;
    for (const auto& item : workload) {
      auto c = model->CompleteMetered(llm::MakePrompt("qa", item.question),
                                      &meter);
      if (c.ok() && grade(c->text, item)) ++correct;
    }
    std::printf("%-22s %9.1f%% %12s %8zu\n", model->name().c_str(),
                100.0 * correct / double(workload.size()),
                meter.cost().ToString(4).c_str(), meter.calls());
  }

  optimize::LlmCascade::Options options;
  options.accept_threshold = 0.65;
  optimize::LlmCascade cascade(ladder, options);
  int correct = 0;
  llm::UsageMeter meter;
  size_t escalations_to_top = 0;
  for (const auto& item : workload) {
    auto r = cascade.Run(llm::MakePrompt("qa", item.question), &meter);
    if (!r.ok()) continue;
    if (grade(r->answer, item)) ++correct;
    if (r->model == ladder.back()->name()) ++escalations_to_top;
  }
  std::printf("%-22s %9.1f%% %12s %8zu\n", "llm-cascade",
              100.0 * correct / double(workload.size()),
              meter.cost().ToString(4).c_str(), meter.calls());
  std::printf("\ncascade escalated to %s on %zu/%zu queries\n",
              ladder.back()->name().c_str(), escalations_to_top,
              workload.size());
  std::printf(
      "paper reference: babbage-002 27.5%%, gpt-4 92.5%%; cascade ~ gpt-4 "
      "accuracy at significantly lower cost\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
