// Reproduces Table I: "Preliminary results on LLM cascade".
//
// Paper setup: 40 queries from HotpotQA, three OpenAI models, and an LLM
// cascade with a trained decision model. Paper numbers: babbage-002 27.5%,
// gpt-4 92.5%; "LLM cascade achieves performance similar to gpt-4 but with
// significantly lower costs".
//
// This reproduction: 40 synthetic multi-hop QA queries (the DESIGN.md
// substitution for HotpotQA), the simulated model ladder priced at the
// paper's quoted rates, self-consistency decision model with threshold 0.8.
//
// A second section re-runs the cascade with every endpoint behind a
// deterministic 20% fault injector, with and without the resilience layer
// (retry/backoff + circuit breaker + fallback chain + stale-cache serve),
// itemizing the retry/fallback spend — the robustness counterpart of the
// cost column.
#include <cstdio>
#include <memory>

#include "core/optimize/cascade.h"
#include "core/optimize/semantic_cache.h"
#include "data/qa_workload.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"

namespace {

using namespace llmdm;

int main_impl() {
  common::Rng rng(20240704);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(80, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 1);
  // Hop mix tuned to HotpotQA's difficulty spread (mostly 2-hop).
  auto workload = data::GenerateQaWorkload(kb, 40, {0.25, 0.45, 0.30}, rng);

  std::printf("Table I: LLM cascade on %zu multi-hop QA queries\n",
              workload.size());
  std::printf("%-22s %10s %12s %8s\n", "model", "accuracy", "api_cost",
              "calls");

  auto grade = [&](const std::string& answer, const data::QaItem& item) {
    return answer == item.answer;
  };

  for (const auto& model : ladder) {
    int correct = 0;
    llm::UsageMeter meter;
    for (const auto& item : workload) {
      auto c = model->CompleteMetered(llm::MakePrompt("qa", item.question),
                                      &meter);
      if (c.ok() && grade(c->text, item)) ++correct;
    }
    std::printf("%-22s %9.1f%% %12s %8zu\n", model->name().c_str(),
                100.0 * correct / double(workload.size()),
                meter.cost().ToString(4).c_str(), meter.calls());
  }

  optimize::LlmCascade::Options options;
  options.accept_threshold = 0.65;
  optimize::LlmCascade cascade(ladder, options);
  int correct = 0;
  llm::UsageMeter meter;
  size_t escalations_to_top = 0;
  for (const auto& item : workload) {
    auto r = cascade.Run(llm::MakePrompt("qa", item.question), &meter);
    if (!r.ok()) continue;
    if (grade(r->answer, item)) ++correct;
    if (r->model == ladder.back()->name()) ++escalations_to_top;
  }
  std::printf("%-22s %9.1f%% %12s %8zu\n", "llm-cascade",
              100.0 * correct / double(workload.size()),
              meter.cost().ToString(4).c_str(), meter.calls());
  std::printf("\ncascade escalated to %s on %zu/%zu queries\n",
              ladder.back()->name().c_str(), escalations_to_top,
              workload.size());
  std::printf(
      "paper reference: babbage-002 27.5%%, gpt-4 92.5%%; cascade ~ gpt-4 "
      "accuracy at significantly lower cost\n");

  // ---- resilience under injected faults -----------------------------------
  const double kFaultRate = 0.20;
  std::printf(
      "\nTable I under a flaky endpoint (deterministic %0.f%% per-call fault "
      "injection)\n%-28s %7s %10s %12s %8s\n",
      100.0 * kFaultRate, "configuration", "avail", "accuracy", "api_cost",
      "calls");

  // A single unprotected endpoint first: this is what 20% faults do to a
  // plain model call, before any cascade redundancy or resilience.
  {
    llm::FaultInjectingLlm bare(ladder.back(),
                                llm::FaultProfile::Uniform(kFaultRate), 9002);
    llm::UsageMeter bare_meter;
    size_t answered = 0, right = 0;
    for (const auto& item : workload) {
      auto c = bare.CompleteMetered(llm::MakePrompt("qa", item.question),
                                    &bare_meter);
      if (!c.ok()) continue;
      ++answered;
      if (grade(c->text, item)) ++right;
    }
    std::printf("%-28s %6.1f%% %9.1f%% %12s %8zu\n", "sim-gpt-4 (unprotected)",
                100.0 * double(answered) / double(workload.size()),
                100.0 * double(right) / double(workload.size()),
                bare_meter.cost().ToString(4).c_str(), bare_meter.calls());
  }

  auto run_faulted = [&](bool resilient) {
    std::vector<std::shared_ptr<llm::LlmModel>> faulty;
    for (size_t i = 0; i < ladder.size(); ++i) {
      faulty.push_back(std::make_shared<llm::FaultInjectingLlm>(
          ladder[i], llm::FaultProfile::Uniform(kFaultRate), 9000 + i));
    }
    // The semantic cache doubles as the degradation floor: answers the
    // cascade committed to earlier can be served stale when everything
    // else is down.
    optimize::SemanticCache::Options cache_options;
    cache_options.similarity_threshold = 0.95;
    optimize::SemanticCache stale_cache(cache_options);
    std::vector<std::shared_ptr<llm::LlmModel>> run_ladder = faulty;
    if (resilient) {
      run_ladder.clear();
      for (size_t i = 0; i < faulty.size(); ++i) {
        llm::ResilientLlm::Options resilience;
        resilience.retry.max_attempts = 5;
        resilience.retry.initial_backoff_ms = 50.0;
        resilience.seed = 77 + i;
        auto wrapped =
            std::make_shared<llm::ResilientLlm>(faulty[i], resilience);
        for (size_t j = i; j-- > 0;) wrapped->AddFallbackModel(faulty[j]);
        wrapped->set_cache_fallback(optimize::MakeStaleCacheFallback(
            &stale_cache, faulty[i]->name(), 0.75));
        run_ladder.push_back(std::move(wrapped));
      }
    }
    optimize::LlmCascade faulted_cascade(run_ladder, options);
    llm::UsageMeter faulted_meter;
    size_t answered = 0, right = 0;
    for (const auto& item : workload) {
      auto r = faulted_cascade.Run(llm::MakePrompt("qa", item.question),
                                   &faulted_meter);
      if (!r.ok()) continue;
      ++answered;
      if (grade(r->answer, item)) ++right;
      stale_cache.Insert(item.question, r->answer);
    }
    std::printf("%-28s %6.1f%% %9.1f%% %12s %8zu\n",
                resilient ? "cascade+resilience" : "cascade (unprotected)",
                100.0 * double(answered) / double(workload.size()),
                100.0 * double(right) / double(workload.size()),
                faulted_meter.cost().ToString(4).c_str(),
                faulted_meter.calls());
    if (resilient) {
      std::printf("  retry spend: %s\n",
                  faulted_meter.retry_stats().ToString().c_str());
      for (const auto& [model, stats] : faulted_meter.retry_by_model()) {
        std::printf("    %-24s %s\n", model.c_str(),
                    stats.ToString().c_str());
      }
    }
  };
  run_faulted(/*resilient=*/false);
  run_faulted(/*resilient=*/true);
  std::printf(
      "reading: a bare endpoint loses ~1 in 5 calls outright; the cascade's "
      "sample redundancy hides the\navailability hit but leaks accuracy, and "
      "the resilience layer buys the accuracy back for a small,\nitemized "
      "retry premium at >=99%% availability.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
