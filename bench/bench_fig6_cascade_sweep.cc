// Reproduces Fig. 6: "The procedure of the LLM cascade" — a new query visits
// models from small to large; a decision model accepts or escalates. This
// bench traces the accuracy/cost frontier that procedure induces by sweeping
// the decision threshold tau from 0 (always accept the smallest model) to
// 1.01 (always escalate to the largest), and reports the calibrated
// threshold chosen by CalibrateAcceptThreshold on a held-out split.
#include <cstdio>

#include "core/optimize/cascade.h"
#include "data/qa_workload.h"
#include "llm/simulated.h"

int main() {
  using namespace llmdm;
  common::Rng rng(777);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(80, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 9);
  auto workload = data::GenerateQaWorkload(kb, 60, {0.25, 0.45, 0.30}, rng);
  auto calibration = data::GenerateQaWorkload(kb, 40, {0.25, 0.45, 0.30}, rng);

  std::printf("Fig 6: cascade decision-threshold sweep "
              "(%zu queries, 3-model ladder)\n",
              workload.size());
  std::printf("%-8s %10s %12s %18s\n", "tau", "accuracy", "api_cost",
              "stop(small/mid/big)");

  for (double tau : {0.0, 0.3, 0.5, 0.65, 0.8, 0.9, 1.01}) {
    optimize::LlmCascade::Options options;
    options.accept_threshold = tau;
    optimize::LlmCascade cascade(ladder, options);
    llm::UsageMeter meter;
    int correct = 0;
    size_t stops[3] = {0, 0, 0};
    for (const auto& item : workload) {
      auto r = cascade.Run(llm::MakePrompt("qa", item.question), &meter);
      if (!r.ok()) continue;
      if (r->answer == item.answer) ++correct;
      for (size_t m = 0; m < 3; ++m) {
        if (r->model == ladder[m]->name()) ++stops[m];
      }
    }
    std::printf("%-8.2f %9.1f%% %12s %8zu/%zu/%zu\n", tau,
                100.0 * correct / double(workload.size()),
                meter.cost().ToString(4).c_str(), stops[0], stops[1],
                stops[2]);
  }

  // Train the decision threshold on a calibration split: collect the
  // mid-model's decision scores + correctness, then pick the operating point.
  std::vector<optimize::CalibrationSample> samples;
  {
    optimize::LlmCascade::Options probe_options;
    probe_options.accept_threshold = 1.01;  // never accept: observe all rungs
    optimize::LlmCascade probe(ladder, probe_options);
    for (const auto& item : calibration) {
      auto r = probe.Run(llm::MakePrompt("qa", item.question));
      if (!r.ok() || r->trace.size() < 2) continue;
      const auto& mid = r->trace[1];
      samples.push_back({mid.confidence, mid.answer == item.answer});
    }
  }
  double tuned = optimize::CalibrateAcceptThreshold(
      samples, /*escalation_accuracy=*/0.9, /*escalation_cost_ratio=*/20.0);
  std::printf("\ncalibrated acceptance threshold from %zu samples: %.2f\n",
              samples.size(), tuned);
  return 0;
}
