// Ablation A3: semantic-cache design choices (Sec. III-C).
//   (a) similarity-threshold sweep on the confusable NL2SQL family: low
//       thresholds produce false hits (wrong reused answers), high
//       thresholds forfeit savings — the paper's "threshold should be
//       different for various scenarios";
//   (b) eviction policy shoot-out (LRU / LFU / cost-aware) on a Zipf-skewed
//       stream under a tight memory budget.
#include <cstdio>

#include "common/string_util.h"
#include "core/optimize/semantic_cache.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;

  // ---- (a) threshold sweep ------------------------------------------------
  {
    common::Rng rng(717);
    sql::Database db;
    db.ExecuteScript(data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
        .ok();
    auto models = llm::CreatePaperModelLadder(nullptr, 71);
    data::Nl2SqlWorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.condition_pool = 6;
    auto base = data::GenerateNl2SqlWorkload(wopts, rng);
    std::vector<data::Nl2SqlQuery> stream = base;
    stream.insert(stream.end(), base.begin(), base.end());

    std::printf("Ablation A3(a): cache similarity threshold "
                "(confusable queries, 12 issued twice)\n");
    std::printf("%-12s %10s %10s %12s %14s\n", "threshold", "hits",
                "accuracy", "llm_calls", "false_hits");
    for (double threshold : {0.90, 0.95, 0.97, 0.99, 0.999}) {
      optimize::SemanticCache::Options copts;
      copts.similarity_threshold = threshold;
      optimize::SemanticCache cache(copts);
      llm::UsageMeter meter;
      int correct = 0;
      size_t hits = 0, false_hits = 0;
      for (const auto& q : stream) {
        std::string nl = q.ToNaturalLanguage();
        std::string sql;
        if (auto hit = cache.Lookup(nl); hit.has_value()) {
          ++hits;
          if (hit->query != nl) ++false_hits;  // reused a different query
          sql = hit->response;
        } else {
          auto c = models[1]->CompleteMetered(llm::MakePrompt("nl2sql", nl),
                                              &meter);
          sql = c.ok() ? c->text : "-- error";
          cache.Insert(nl, sql);
        }
        auto gold = db.Query(q.ToGoldSql());
        auto pred = db.Query(sql);
        if (gold.ok() && pred.ok() && pred->BagEquals(*gold)) ++correct;
      }
      std::printf("%-12.3f %10zu %9.1f%% %12zu %14zu\n", threshold, hits,
                  100.0 * correct / double(stream.size()), meter.calls(),
                  false_hits);
    }
  }

  // ---- (b) eviction policies ------------------------------------------------
  {
    std::printf("\nAblation A3(b): eviction policy on a Zipf stream "
                "(100 distinct queries, capacity 20, 2000 lookups)\n");
    std::printf("%-12s %10s %12s\n", "policy", "hit_rate", "evictions");
    for (auto [policy, name] :
         {std::pair{optimize::EvictionPolicy::kLru, "LRU"},
          std::pair{optimize::EvictionPolicy::kLfu, "LFU"},
          std::pair{optimize::EvictionPolicy::kCostAware, "cost-aware"}}) {
      optimize::SemanticCache::Options copts;
      copts.capacity = 20;
      copts.policy = policy;
      copts.similarity_threshold = 0.99;
      optimize::SemanticCache cache(copts);
      common::Rng rng(818);
      std::vector<std::string> queries;
      for (int i = 0; i < 100; ++i) {
        queries.push_back(common::StrFormat(
            "generate cleaning code for dataset %d with strategy %d", i,
            i * 7 % 13));
      }
      size_t hits = 0;
      for (int step = 0; step < 2000; ++step) {
        const std::string& q = queries[rng.Zipf(queries.size(), 1.0)];
        if (cache.Lookup(q).has_value()) {
          ++hits;
        } else {
          cache.Insert(q, "code for " + q);
        }
      }
      std::printf("%-12s %9.1f%% %12zu\n", name, 100.0 * hits / 2000.0,
                  cache.stats().evictions);
    }
  }
  // ---- (c) predictive admission ---------------------------------------------
  {
    std::printf("\nAblation A3(c): predictive admission on a singleton-heavy "
                "stream (capacity 8, 25%% hot queries)\n");
    std::printf("%-22s %10s %14s %12s\n", "admission", "hit_rate",
                "rejections", "evictions");
    for (bool predictive : {false, true}) {
      optimize::SemanticCache::Options copts;
      copts.capacity = 8;
      copts.similarity_threshold = 0.99;
      copts.predictive_admission = predictive;
      // LRU on purpose: the doorkeeper's value shows against a recency
      // policy (cost-aware eviction already shields reused entries).
      copts.policy = optimize::EvictionPolicy::kLru;
      optimize::SemanticCache cache(copts);
      common::Rng rng(919);
      size_t hits = 0;
      constexpr int kSteps = 2000;
      for (int step = 0; step < kSteps; ++step) {
        std::string q;
        if (rng.Bernoulli(0.25)) {
          q = common::StrFormat("hot pipeline question %llu",
                                (unsigned long long)rng.NextBelow(6));
        } else {
          q = common::StrFormat("singleton exploration query %d about %d",
                                step, step * 31);
        }
        if (cache.Lookup(q).has_value()) {
          ++hits;
        } else {
          cache.Insert(q, "answer");
        }
      }
      std::printf("%-22s %9.1f%% %14zu %12zu\n",
                  predictive ? "doorkeeper" : "always-admit",
                  100.0 * hits / double(kSteps),
                  cache.stats().admission_rejections,
                  cache.stats().evictions);
    }
  }
  return 0;
}
