// Reproduces Fig. 7: "An illustration of query decomposition" — compound
// queries share sub-queries (Q11 == Q21), so shared sub-queries call the LLM
// once. This bench (a) walks the paper's exact Q1-Q5 example and prints the
// dedup structure, then (b) sweeps the sharing level (condition-pool size)
// and reports unique LLM units and token totals under the batch planner.
#include <cstdio>
#include <map>

#include "core/optimize/decomposition.h"
#include "data/nl2sql_workload.h"
#include "text/tokenizer.h"

int main() {
  using namespace llmdm;

  // (a) The paper's Q1-Q5.
  auto paper = data::PaperQ1ToQ5();
  std::printf("Fig 7(a): the paper's Q1-Q5 decomposition\n");
  std::map<std::string, std::vector<int>> sub_to_queries;
  for (size_t i = 0; i < paper.size(); ++i) {
    auto d = optimize::DecomposeQuestion(paper[i].ToNaturalLanguage());
    if (!d.ok()) continue;
    std::printf("  Q%zu: %zu sub-quer%s\n", i + 1, d->sub_questions.size(),
                d->sub_questions.size() == 1 ? "y" : "ies");
    for (const auto& s : d->sub_questions) {
      sub_to_queries[s].push_back(static_cast<int>(i) + 1);
    }
  }
  size_t total_units = 0;
  std::printf("  shared sub-queries:\n");
  for (const auto& [sub, queries] : sub_to_queries) {
    total_units += queries.size();
    if (queries.size() > 1) {
      std::printf("    \"%s\" used by Q", sub.c_str());
      for (size_t i = 0; i < queries.size(); ++i) {
        std::printf("%s%d", i ? ",Q" : "", queries[i]);
      }
      std::printf(" -> 1 LLM call instead of %zu\n", queries.size());
    }
  }
  std::printf("  %zu sub-query slots -> %zu unique LLM calls\n\n", total_units,
              sub_to_queries.size());

  // (b) Sharing sweep: isolate the saving that comes from *sub-query
  // dedup* by comparing the batch plan against decomposing every query
  // without sharing (each sub-query slot billed separately).
  std::printf("Fig 7(b): sub-query sharing sweep "
              "(20 queries, batch-planned)\n");
  std::printf("%-12s %10s %14s %16s %18s\n", "pool_size", "slots",
              "unique_units", "dedup_savings", "tokens(plan/nodedup)");
  for (size_t pool : {2, 3, 4, 6, 10, 16}) {
    common::Rng rng(1000 + pool);
    data::Nl2SqlWorkloadOptions options;
    options.num_queries = 20;
    options.condition_pool = pool;
    options.compound_rate = 0.8;
    // Wide year range so large pools are genuinely diverse (2 events x 6
    // years x 2 superlative = 24 possible distinct conditions).
    options.years = {2012, 2013, 2014, 2015, 2016, 2017};
    auto workload = data::GenerateNl2SqlWorkload(options, rng);
    std::vector<std::string> questions;
    for (const auto& q : workload) questions.push_back(q.ToNaturalLanguage());

    optimize::QueryBatchOptimizer::Options oopts;
    oopts.enable_decomposition = true;
    for (const auto& ex : data::PaperQ1ToQ5()) {
      oopts.examples.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
    }
    optimize::QueryBatchOptimizer optimizer(oopts);
    auto plan = optimizer.Plan(questions);

    // No-dedup accounting: every unit of every item billed separately.
    size_t prompt_overhead = llm::Prompt{}.CountInputTokens() +
                             text::CountTokens(oopts.instructions);
    for (const auto& ex : oopts.examples) {
      prompt_overhead +=
          text::CountTokens(ex.input) + text::CountTokens(ex.output);
    }
    size_t slots = 0;
    size_t nodedup_tokens = 0;
    for (const auto& item : plan.items) {
      for (const auto& unit : item.units) {
        ++slots;
        nodedup_tokens += text::CountTokens(unit) + prompt_overhead;
      }
    }
    double saving =
        100.0 * (1.0 - double(plan.estimated_tokens) / double(nodedup_tokens));
    std::printf("%-12zu %10zu %14zu %15.1f%% %10zu/%zu\n", pool, slots,
                plan.unique_units.size(), saving, plan.estimated_tokens,
                nodedup_tokens);
  }
  std::printf("\nsmaller pools = more sharing = fewer unique sub-queries = "
              "bigger dedup savings (the Fig 7 effect)\n");
  return 0;
}
