// Robustness ablation: fault rate × resilience policy on the Table-I
// cascade workload.
//
// The paper's cascades/caches assume the endpoint always answers; production
// LLM traffic sees rate limits, timeouts, outages and damaged completions as
// the common case. This bench injects those faults deterministically
// (FaultInjectingLlm) and sweeps what the resilience layer (ResilientLlm:
// retry with backoff, circuit breaker, fallback chain) buys back, reporting
// availability / accuracy / cost / retry-spend per cell. Fully seeded: two
// runs print byte-identical tables, fault schedules included.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/optimize/cascade.h"
#include "data/qa_workload.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"

namespace {

using namespace llmdm;

enum class Policy { kNone, kRetry, kFull };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kNone:
      return "unprotected";
    case Policy::kRetry:
      return "retry-only";
    case Policy::kFull:
      return "retry+breaker+fallback";
  }
  return "?";
}

// Builds the paper ladder with every rung behind a fault injector and,
// policy permitting, a ResilientLlm whose fallback chain points at the
// cheaper (equally flaky) rungs.
std::vector<std::shared_ptr<llm::LlmModel>> BuildLadder(
    const data::KnowledgeBase* kb, double fault_rate, Policy policy,
    size_t max_attempts, bool top_rung_down = false) {
  auto base = llm::CreatePaperModelLadder(kb, 1);
  std::vector<std::shared_ptr<llm::LlmModel>> faulty;
  for (size_t i = 0; i < base.size(); ++i) {
    llm::FaultProfile profile = llm::FaultProfile::Uniform(fault_rate);
    if (top_rung_down && i + 1 == base.size()) {
      profile = llm::FaultProfile();
      profile.unavailable = 1.0;  // hard outage, not background noise
    }
    faulty.push_back(std::make_shared<llm::FaultInjectingLlm>(
        base[i], profile, 9000 + i));
  }
  if (policy == Policy::kNone) return faulty;
  std::vector<std::shared_ptr<llm::LlmModel>> ladder;
  for (size_t i = 0; i < faulty.size(); ++i) {
    llm::ResilientLlm::Options options;
    options.retry.max_attempts = max_attempts;
    options.retry.initial_backoff_ms = 50.0;
    options.seed = 77 + i;
    if (policy == Policy::kRetry) {
      // Disable the breaker so the cell isolates pure retry value.
      options.breaker.min_samples = 1u << 20;
    }
    auto resilient = std::make_shared<llm::ResilientLlm>(faulty[i], options);
    if (policy == Policy::kFull) {
      for (size_t j = i; j-- > 0;) resilient->AddFallbackModel(faulty[j]);
    }
    ladder.push_back(std::move(resilient));
  }
  return ladder;
}

struct Cell {
  double availability = 0.0;
  double accuracy = 0.0;
  common::Money cost;
  llm::UsageMeter::RetryStats retry;
};

Cell RunCell(const std::vector<data::QaItem>& workload,
             const std::vector<std::shared_ptr<llm::LlmModel>>& ladder) {
  optimize::LlmCascade::Options options;
  options.accept_threshold = 0.65;
  optimize::LlmCascade cascade(ladder, options);
  llm::UsageMeter meter;
  size_t answered = 0, correct = 0;
  for (const auto& item : workload) {
    auto r = cascade.Run(llm::MakePrompt("qa", item.question), &meter);
    if (!r.ok()) continue;
    ++answered;
    if (r->answer == item.answer) ++correct;
  }
  Cell cell;
  cell.availability = 100.0 * double(answered) / double(workload.size());
  cell.accuracy = 100.0 * double(correct) / double(workload.size());
  cell.cost = meter.cost();
  cell.retry = meter.retry_stats();
  return cell;
}

int main_impl() {
  common::Rng rng(20240704);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(80, rng);
  auto workload = data::GenerateQaWorkload(kb, 40, {0.25, 0.45, 0.30}, rng);

  std::printf(
      "Ablation: endpoint fault rate x resilience policy "
      "(%zu QA queries, cascade accept=0.65)\n\n",
      workload.size());
  std::printf("%-24s %6s %7s %7s %10s %9s %8s %10s %6s\n", "policy", "fault",
              "avail", "acc", "cost", "attempts", "retries", "fallbacks",
              "opens");
  for (Policy policy : {Policy::kNone, Policy::kRetry, Policy::kFull}) {
    for (double rate : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      auto ladder = BuildLadder(&kb, rate, policy, /*max_attempts=*/5);
      Cell cell = RunCell(workload, ladder);
      std::printf("%-24s %5.0f%% %6.1f%% %6.1f%% %10s %9zu %8zu %10zu %6zu\n",
                  PolicyName(policy), 100.0 * rate, cell.availability,
                  cell.accuracy, cell.cost.ToString(4).c_str(),
                  cell.retry.attempts, cell.retry.retries,
                  cell.retry.fallbacks, cell.retry.circuit_opens);
    }
    std::printf("\n");
  }

  std::printf(
      "Retry-budget sweep at 20%% fault rate (full policy): how many "
      "attempts buy how much availability\n\n");
  std::printf("%12s %7s %7s %10s %9s %8s %10s\n", "max_attempts", "avail",
              "acc", "cost", "attempts", "retries", "fallbacks");
  for (size_t attempts : {1u, 2u, 3u, 5u, 8u}) {
    auto ladder = BuildLadder(&kb, 0.2, Policy::kFull, attempts);
    Cell cell = RunCell(workload, ladder);
    std::printf("%12zu %6.1f%% %6.1f%% %10s %9zu %8zu %10zu\n", attempts,
                cell.availability, cell.accuracy,
                cell.cost.ToString(4).c_str(), cell.retry.attempts,
                cell.retry.retries, cell.retry.fallbacks);
  }
  std::printf(
      "\nSustained outage: sim-gpt-4 hard-down, 10%% background faults on "
      "the lower rungs\n\n");
  std::printf("%-24s %7s %7s %10s %9s %8s %10s %6s\n", "policy", "avail",
              "acc", "cost", "attempts", "retries", "fallbacks", "opens");
  for (Policy policy : {Policy::kNone, Policy::kRetry, Policy::kFull}) {
    auto ladder = BuildLadder(&kb, 0.1, policy, /*max_attempts=*/5,
                              /*top_rung_down=*/true);
    Cell cell = RunCell(workload, ladder);
    std::printf("%-24s %6.1f%% %6.1f%% %10s %9zu %8zu %10zu %6zu\n",
                PolicyName(policy), cell.availability, cell.accuracy,
                cell.cost.ToString(4).c_str(), cell.retry.attempts,
                cell.retry.retries, cell.retry.fallbacks,
                cell.retry.circuit_opens);
  }

  std::printf(
      "\nreading: under memoryless faults the cascade's sample redundancy "
      "keeps availability up but leaks\naccuracy; plain retries buy it back "
      "through 40%% faults for an itemized premium (the breaker can\nmisfire "
      "there — it is outage machinery, and past ~30%% noise it trades "
      "accuracy for shed load).\nUnder a sustained top-rung outage the "
      "breaker earns its keep: it stops paying for doomed retries\nafter one "
      "window (about half the retries of retry-only) at the same "
      "availability, giving back a few\npoints of accuracy to cheap-rung "
      "fallback answers. All retry/fallback spend is metered into the\nsame "
      "UsageMeter as the base spend.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
