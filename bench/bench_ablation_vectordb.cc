// Ablation A1: vector index trade-offs (flat vs IVF vs HNSW, float32 vs
// int8+rescore).
// The vector database is the substrate the paper leans on for prompt
// selection, caching and multi-modal exploration (Secs. I, III-A/B/C); this
// bench reports recall@10 vs the exact oracle and per-query latency, using
// google-benchmark for the timing half. `--benchmark-smoke` shrinks the
// dataset to ctest scale; unrecognised flags pass through to
// benchmark::Initialize (--benchmark_filter etc.).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <set>

#include "bench_args.h"
#include "common/rng.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/ivf_index.h"

namespace {

using namespace llmdm;
using vectordb::Vector;

constexpr size_t kDim = 128;
constexpr size_t kClusters = 64;

// Sized at startup from --benchmark-smoke, before any lazy dataset build.
size_t g_n = 8000;
size_t g_queries = 40;

// Clustered data (mixture of Gaussians around unit-sphere centroids): real
// embedding collections are clustered, and nearest-neighbour recall is only
// meaningful when neighbourhoods exist — uniform random high-dim vectors
// make every index look bad for the wrong reason.
Vector RandomPoint(common::Rng& rng, const std::vector<Vector>& centers) {
  const Vector& center = centers[rng.NextBelow(centers.size())];
  Vector v(kDim);
  for (size_t d = 0; d < kDim; ++d) {
    v[d] = center[d] + 0.25f * float(rng.Normal());
  }
  embed::L2Normalize(&v);
  return v;
}

std::vector<Vector>& Centers() {
  static auto& centers = *new std::vector<Vector>([] {
    common::Rng rng(5);
    std::vector<Vector> out;
    for (size_t c = 0; c < kClusters; ++c) {
      Vector v(kDim);
      for (float& x : v) x = float(rng.Normal());
      embed::L2Normalize(&v);
      out.push_back(std::move(v));
    }
    return out;
  }());
  return centers;
}

std::vector<Vector>& Dataset() {
  static auto& data = *new std::vector<Vector>([] {
    common::Rng rng(20240704);
    std::vector<Vector> out;
    out.reserve(g_n);
    for (size_t i = 0; i < g_n; ++i) out.push_back(RandomPoint(rng, Centers()));
    return out;
  }());
  return data;
}

std::vector<Vector>& Queries() {
  static auto& queries = *new std::vector<Vector>([] {
    common::Rng rng(99);
    std::vector<Vector> out;
    for (size_t i = 0; i < g_queries; ++i) {
      out.push_back(RandomPoint(rng, Centers()));
    }
    return out;
  }());
  return queries;
}

template <typename IndexT>
IndexT& BuiltIndex() {
  static auto& index = *new IndexT([] {
    IndexT idx;
    for (size_t i = 0; i < Dataset().size(); ++i) {
      idx.Add(i, Dataset()[i]).ok();
    }
    return idx;
  }());
  return index;
}

/// The int8+rescore variants, built once with quantization on.
vectordb::FlatIndex& QuantizedFlat() {
  static auto& index = *new vectordb::FlatIndex([] {
    vectordb::FlatIndex::Options o;
    o.quantize = true;
    vectordb::FlatIndex idx(o);
    for (size_t i = 0; i < Dataset().size(); ++i) {
      idx.Add(i, Dataset()[i]).ok();
    }
    return idx;
  }());
  return index;
}

vectordb::IvfIndex& QuantizedIvf() {
  static auto& index = *new vectordb::IvfIndex([] {
    vectordb::IvfIndex::Options o;
    o.quantize = true;
    vectordb::IvfIndex idx(o);
    for (size_t i = 0; i < Dataset().size(); ++i) {
      idx.Add(i, Dataset()[i]).ok();
    }
    return idx;
  }());
  return index;
}

double RecallAt10(vectordb::VectorIndex& index) {
  auto& exact = BuiltIndex<vectordb::FlatIndex>();
  size_t hits = 0, total = 0;
  for (const Vector& q : Queries()) {
    auto truth = exact.Search(q, 10);
    std::set<uint64_t> truth_ids;
    for (const auto& r : truth) truth_ids.insert(r.id);
    for (const auto& r : index.Search(q, 10)) hits += truth_ids.count(r.id);
    total += truth.size();
  }
  return double(hits) / double(total);
}

void BM_FlatSearch(benchmark::State& state) {
  auto& index = BuiltIndex<vectordb::FlatIndex>();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(Queries()[i++ % g_queries], 10));
  }
}
BENCHMARK(BM_FlatSearch);

void BM_FlatSearchInt8(benchmark::State& state) {
  auto& index = QuantizedFlat();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(Queries()[i++ % g_queries], 10));
  }
  state.counters["recall@10"] = RecallAt10(index);
}
BENCHMARK(BM_FlatSearchInt8);

void BM_IvfSearch(benchmark::State& state) {
  auto& index = BuiltIndex<vectordb::IvfIndex>();
  index.set_nprobe(size_t(state.range(0)));
  index.Build();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(Queries()[i++ % g_queries], 10));
  }
  state.counters["recall@10"] = RecallAt10(index);
}
BENCHMARK(BM_IvfSearch)->Arg(1)->Arg(4)->Arg(8);

void BM_IvfSearchInt8(benchmark::State& state) {
  auto& index = QuantizedIvf();
  index.set_nprobe(size_t(state.range(0)));
  index.Build();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(Queries()[i++ % g_queries], 10));
  }
  state.counters["recall@10"] = RecallAt10(index);
}
BENCHMARK(BM_IvfSearchInt8)->Arg(4)->Arg(8);

void BM_HnswSearch(benchmark::State& state) {
  auto& index = BuiltIndex<vectordb::HnswIndex>();
  index.set_ef_search(size_t(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(Queries()[i++ % g_queries], 10));
  }
  state.counters["recall@10"] = RecallAt10(index);
}
BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  llmdm::bench::BenchArgSpec spec;
  spec.passthrough_unknown = true;
  llmdm::bench::BenchArgs args;
  if (!llmdm::bench::ParseBenchArgs(argc, argv, spec, &args)) return 2;
  if (args.smoke) {
    g_n = 1500;
    g_queries = 12;
  }

  std::printf("Ablation A1: vector index trade-offs "
              "(%zu vectors, d=%zu, recall vs flat oracle)\n",
              g_n, kDim);
  {
    vectordb::IvfIndex::Options o;
    o.nlist = 64;
    o.nprobe = 4;
    vectordb::IvfIndex probe(o);
    for (size_t i = 0; i < Dataset().size(); ++i) {
      probe.Add(i, Dataset()[i]).ok();
    }
    std::printf("IVF(nlist=64, nprobe=4) recall@10 = %.3f\n",
                RecallAt10(probe));
  }
  {
    auto& hnsw = BuiltIndex<vectordb::HnswIndex>();
    hnsw.set_ef_search(64);
    std::printf("HNSW(ef=64)            recall@10 = %.3f\n", RecallAt10(hnsw));
  }
  {
    std::printf("Flat int8+rescore      recall@10 = %.3f\n",
                RecallAt10(QuantizedFlat()));
  }
  int bench_argc = static_cast<int>(args.passthrough.size());
  benchmark::Initialize(&bench_argc, args.passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
