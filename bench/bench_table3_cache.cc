// Reproduces Table III: "Preliminary results on LLM cache optimization".
//
// Paper setup: same dataset as the cascade experiment; 10 queries randomly
// selected and issued twice. Cache(O) caches original queries only; Cache(A)
// caches original queries AND their decomposed sub-queries. Paper numbers:
//              w/o Cache   Cache(O)   Cache(A)
//   Accuracy     77.5%       77.5%      85%
//   API Cost    $1.123      $0.842     $0.887
//
// This reproduction: 10 compound stadium NL2SQL queries issued twice against
// the sim-gpt-3.5 tier. Cache(A) answers a compound query by decomposing it,
// consulting / populating the cache per *sub-query*, and recombining with
// set algebra — sub-queries are simpler, so cached sub-answers are more
// often correct, which is exactly why the paper sees Cache(A) raise accuracy.
//
// A durability postscript measures what a restart costs: the same cache is
// populated with snapshot + WAL attached, "crashed", and recovered from
// disk; cold-start vs warm-start rows compare the savings the repeat pass
// retains. Exits non-zero if the warm restart retains < 90% of the
// pre-restart savings. Flags: `--benchmark-smoke` runs only the durability
// section; `--metrics-out=PATH` writes the section's Prometheus export.
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_args.h"
#include "core/optimize/decomposition.h"
#include "core/optimize/semantic_cache.h"
#include "data/nl2sql_workload.h"
#include "durability/store.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "sql/database.h"

namespace {

using namespace llmdm;

// The workload's queries differ by a single token ("or" vs "and", one year
// digit), which an embedding space places at similarity 0.93-0.975; a true
// repeat scores 1.0. The threshold must therefore sit above the confusable
// band — the paper's own observation that "this similarity threshold should
// be different for various scenarios" (Sec. III-C). See
// bench_ablation_cache for the full threshold sweep.
optimize::SemanticCache::Options CacheOptions() {
  optimize::SemanticCache::Options options;
  options.similarity_threshold = 0.99;
  return options;
}

struct RunResult {
  double accuracy = 0.0;
  common::Money cost;
  size_t llm_calls = 0;
  size_t cache_hits = 0;
  // Cache savings ledger: input tokens the hit skipped *plus* the output
  // tokens the cached response replaced (both halves of the avoided bill).
  common::Money saved;
};

/// Removes the files DurableStore left in `dir`, then the directory itself.
void CleanupDir(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

int main_impl(bool smoke, const std::string& metrics_out) {
  common::Rng rng(20240706);
  sql::Database db;
  if (!db.ExecuteScript(
             data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
           .ok()) {
    return 1;
  }
  auto models = llm::CreatePaperModelLadder(nullptr, 3);
  llm::LlmModel& model = *models[1];

  // 10 queries, each issued twice (the paper's protocol).
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 10;
  options.condition_pool = 6;
  options.compound_rate = 0.8;
  auto base = data::GenerateNl2SqlWorkload(options, rng);
  std::vector<data::Nl2SqlQuery> stream = base;
  stream.insert(stream.end(), base.begin(), base.end());

  auto grade = [&](const std::string& sql, const data::Nl2SqlQuery& q) {
    auto gold = db.Query(q.ToGoldSql());
    auto pred = db.Query(sql);
    return gold.ok() && pred.ok() && pred->BagEquals(*gold);
  };
  auto call_model = [&](const std::string& input, llm::UsageMeter* meter) {
    llm::Prompt p = llm::MakePrompt("nl2sql", input);
    auto c = model.CompleteMetered(p, meter);
    return c.ok() ? c->text : std::string("-- error");
  };
  auto estimate_cost = [&](const std::string& input) {
    llm::Prompt p = llm::MakePrompt("nl2sql", input);
    return common::Money::FromMicros(
        model.spec().input_price_per_1k.micros() *
        int64_t(p.CountInputTokens()) / 1000);
  };

  // --- w/o cache ---
  auto run_plain = [&]() {
    RunResult r;
    llm::UsageMeter meter;
    int correct = 0;
    for (const auto& q : stream) {
      std::string sql = call_model(q.ToNaturalLanguage(), &meter);
      if (grade(sql, q)) ++correct;
    }
    r.accuracy = 100.0 * correct / double(stream.size());
    r.cost = meter.cost();
    r.llm_calls = meter.calls();
    return r;
  };

  // --- Cache(O): cache whole-query responses ---
  auto run_cache_o = [&]() {
    RunResult r;
    llm::UsageMeter meter;
    optimize::SemanticCache cache(CacheOptions());
    int correct = 0;
    const common::Money out_price = model.spec().output_price_per_1k;
    for (const auto& q : stream) {
      std::string nl = q.ToNaturalLanguage();
      std::string sql;
      if (auto hit = cache.Lookup(nl, estimate_cost(nl), out_price);
          hit.has_value()) {
        sql = hit->response;
        ++r.cache_hits;
      } else {
        sql = call_model(nl, &meter);
        cache.Insert(nl, sql);
      }
      if (grade(sql, q)) ++correct;
    }
    r.accuracy = 100.0 * correct / double(stream.size());
    r.cost = meter.cost();
    r.llm_calls = meter.calls();
    r.saved = cache.stats().saved;
    return r;
  };

  // --- Cache(A): cache sub-queries too; answer via decomposition ---
  auto run_cache_a = [&]() {
    RunResult r;
    llm::UsageMeter meter;
    optimize::SemanticCache cache(CacheOptions());
    int correct = 0;
    const common::Money out_price = model.spec().output_price_per_1k;
    for (const auto& q : stream) {
      std::string nl = q.ToNaturalLanguage();
      auto decomposed = optimize::DecomposeQuestion(nl);
      std::string sql;
      if (decomposed.ok() && decomposed->sub_questions.size() > 1) {
        std::vector<std::string> parts;
        for (const std::string& sub : decomposed->sub_questions) {
          if (auto hit = cache.Lookup(sub, estimate_cost(sub), out_price);
              hit.has_value()) {
            parts.push_back(hit->response);
            ++r.cache_hits;
          } else {
            std::string part = call_model(sub, &meter);
            cache.Insert(sub, part);
            parts.push_back(std::move(part));
          }
        }
        sql = optimize::RecombineSql(parts, decomposed->combiner);
      } else {
        if (auto hit = cache.Lookup(nl, estimate_cost(nl), out_price);
            hit.has_value()) {
          sql = hit->response;
          ++r.cache_hits;
        } else {
          sql = call_model(nl, &meter);
          cache.Insert(nl, sql);
        }
      }
      if (grade(sql, q)) ++correct;
    }
    r.accuracy = 100.0 * correct / double(stream.size());
    r.cost = meter.cost();
    r.llm_calls = meter.calls();
    r.saved = cache.stats().saved;
    return r;
  };

  // --- durability postscript: cold-start vs warm-start ---
  // Populate a durable cache (checkpoint halfway, so recovery exercises both
  // the snapshot and the WAL-replay path), serve the repeat pass to price
  // the warm cache, "crash", recover from disk, and serve the repeat pass
  // again. A cold start (empty cache) prices what the restart would have
  // cost without durable state.
  auto run_durability = [&]() -> int {
    const common::Money out_price = model.spec().output_price_per_1k;
    // One hit-counting serve pass over the 10 base queries: the savings the
    // cache state is worth to the repeat half of the workload.
    auto serve_pass = [&](optimize::SemanticCache& cache, size_t* hits) {
      common::Money saved;
      for (const auto& q : base) {
        std::string nl = q.ToNaturalLanguage();
        if (auto hit = cache.Lookup(nl, estimate_cost(nl), out_price);
            hit.has_value()) {
          saved += hit->saved;
          ++*hits;
        }
      }
      return saved;
    };

    obs::Registry registry;
    char dir_template[] = "/tmp/llmdm_table3_dur_XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    const std::string dir = dir_template;
    durability::DurableStore::Options dopt;
    dopt.dir = dir;
    dopt.name = "table3_cache";
    dopt.fsync = false;  // tmpfs bench; the format is what is under test
    dopt.registry = &registry;

    optimize::SemanticCache::Options copt = CacheOptions();
    copt.registry = &registry;

    // Pre-restart process: populate with durability attached.
    size_t hits_before = 0;
    common::Money saved_before;
    {
      optimize::SemanticCache cache(copt);
      auto store = durability::DurableStore::Open(dopt, &cache);
      if (!store.ok()) {
        std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
        CleanupDir(dir);
        return 1;
      }
      cache.AttachDurability(store.value().get());
      llm::UsageMeter meter;
      for (size_t i = 0; i < base.size(); ++i) {
        std::string nl = base[i].ToNaturalLanguage();
        if (!cache.Lookup(nl, estimate_cost(nl), out_price).has_value()) {
          cache.Insert(nl, call_model(nl, &meter));
        }
        if (i + 1 == base.size() / 2) {
          // Mid-population checkpoint: the recovered state is snapshot (first
          // half) + WAL replay (second half), not one path or the other.
          if (auto s = store.value()->Checkpoint(); !s.ok()) {
            std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
            CleanupDir(dir);
            return 1;
          }
        }
      }
      saved_before = serve_pass(cache, &hits_before);
      // The store (and its WAL fd) closes here; the cache's memory is
      // discarded — the crash, minus the drama.
    }

    // Cold start: no durable state, the repeat pass pays full price.
    size_t hits_cold = 0;
    common::Money saved_cold;
    {
      optimize::SemanticCache cache(CacheOptions());
      saved_cold = serve_pass(cache, &hits_cold);
    }

    // Warm start: recover from the snapshot + WAL left on disk.
    size_t hits_warm = 0;
    common::Money saved_warm;
    durability::DurableStore::RecoveryInfo recovery;
    {
      optimize::SemanticCache cache(copt);
      auto store = durability::DurableStore::Open(dopt, &cache);
      if (!store.ok()) {
        std::fprintf(stderr, "recover: %s\n",
                     store.status().ToString().c_str());
        CleanupDir(dir);
        return 1;
      }
      recovery = store.value()->recovery_info();
      cache.AttachDurability(store.value().get());
      saved_warm = serve_pass(cache, &hits_warm);
    }
    CleanupDir(dir);

    double retained =
        saved_before.micros() > 0
            ? 100.0 * double(saved_warm.micros()) / double(saved_before.micros())
            : 0.0;
    std::printf("\nDurable cache: restart cost on the repeat pass "
                "(10 queries; snapshot@%llu + %zu WAL records replayed)\n",
                static_cast<unsigned long long>(recovery.epoch),
                recovery.wal_records_replayed);
    std::printf("%-14s %10s %14s\n", "", "hits", "est. saved");
    std::printf("%-14s %10zu %14s\n", "pre-restart", hits_before,
                saved_before.ToString(4).c_str());
    std::printf("%-14s %10zu %14s\n", "cold-start", hits_cold,
                saved_cold.ToString(4).c_str());
    std::printf("%-14s %10zu %14s   (%.1f%% retained)\n", "warm-start",
                hits_warm, saved_warm.ToString(4).c_str(), retained);

    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        return 1;
      }
      std::string prom = registry.PrometheusText();
      std::fwrite(prom.data(), 1, prom.size(), f);
      std::fclose(f);
    }
    if (retained < 90.0) {
      std::fprintf(stderr,
                   "FAIL: warm restart retained %.1f%% of savings (< 90%%)\n",
                   retained);
      return 1;
    }
    return 0;
  };

  if (smoke) return run_durability();

  RunResult plain = run_plain();
  RunResult cache_o = run_cache_o();
  RunResult cache_a = run_cache_a();

  std::printf("Table III: LLM cache optimization "
              "(10 queries issued twice, threshold %.2f)\n",
              CacheOptions().similarity_threshold);
  std::printf("%-12s %12s %12s %12s\n", "", "w/o Cache", "Cache(O)",
              "Cache(A)");
  std::printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", "Accuracy", plain.accuracy,
              cache_o.accuracy, cache_a.accuracy);
  std::printf("%-12s %12s %12s %12s\n", "API Cost",
              plain.cost.ToString(4).c_str(), cache_o.cost.ToString(4).c_str(),
              cache_a.cost.ToString(4).c_str());
  std::printf("%-12s %12zu %12zu %12zu\n", "LLM calls", plain.llm_calls,
              cache_o.llm_calls, cache_a.llm_calls);
  std::printf("%-12s %12zu %12zu %12zu\n", "cache hits", plain.cache_hits,
              cache_o.cache_hits, cache_a.cache_hits);
  // The ledger counts both halves of each avoided call: the input tokens the
  // hit skipped and the output tokens the cached response replaced. It is an
  // estimate of avoided spend, not a delta of the meter column above.
  std::printf("%-12s %12s %12s %12s\n", "est. saved",
              plain.saved.ToString(4).c_str(),
              cache_o.saved.ToString(4).c_str(),
              cache_a.saved.ToString(4).c_str());
  std::printf(
      "\npaper reference: Accuracy 77.5%% / 77.5%% / 85%%; API Cost $1.123 / "
      "$0.842 / $0.887\n");
  return run_durability();
}

}  // namespace

int main(int argc, char** argv) {
  llmdm::bench::BenchArgs args;
  if (!llmdm::bench::ParseBenchArgs(argc, argv, {}, &args)) return 2;
  return main_impl(args.smoke, args.metrics_out);
}
