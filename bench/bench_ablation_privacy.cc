// Ablation A4: the DP utility/privacy dial (Sec. III-D). Sweeps the DP-SGD
// noise multiplier and reports holdout accuracy vs membership-inference
// advantage (multi-seed means) in the memorization regime, plus the
// federated heterogeneity/adaptation grid.
#include <cstdio>

#include "core/privacy/dp.h"
#include "core/privacy/federated.h"
#include "data/tabular_gen.h"

int main() {
  using namespace llmdm;

  // Memorization regime: small train set, noise features, long training.
  common::Rng rng(41);
  data::PatientDataOptions popts;
  popts.num_rows = 40;
  auto train_table = data::GeneratePatientTable(popts, rng);
  popts.num_rows = 300;
  auto holdout_table = data::GeneratePatientTable(popts, rng);
  auto train = ml::DatasetFromTable(train_table, "has_heart_disease");
  auto holdout = ml::DatasetFromTable(holdout_table, "has_heart_disease");
  ml::Standardize(&*train);
  ml::Standardize(&*holdout);
  common::Rng noise_rng(42);
  for (auto* ds : {&*train, &*holdout}) {
    for (auto& x : ds->features) {
      for (int j = 0; j < 24; ++j) x.push_back(noise_rng.Normal());
    }
  }
  ml::LogisticRegression::TrainOptions overfit;
  overfit.epochs = 400;
  overfit.l2 = 0.0;

  std::printf("Ablation A4(a): DP-SGD noise sweep "
              "(40-row train set + noise features, 8-seed means)\n");
  std::printf("%-18s %12s %12s %14s\n", "noise_multiplier", "~epsilon",
              "accuracy", "MI advantage");
  for (double noise : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    double acc = 0, adv = 0, eps = 0;
    constexpr int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto report = privacy::TrainWithDpAndAudit(
          *train, *holdout, noise, noise > 0 ? 0.5 : 0.0, 100 + seed, overfit);
      acc += report.holdout_accuracy;
      adv += report.attack.advantage();
      eps = report.approx_epsilon;
    }
    if (noise == 0.0) {
      std::printf("%-18.1f %12s %11.1f%% %14.3f\n", noise, "inf",
                  100.0 * acc / kSeeds, adv / kSeeds);
    } else {
      std::printf("%-18.1f %12.2f %11.1f%% %14.3f\n", noise, eps,
                  100.0 * acc / kSeeds, adv / kSeeds);
    }
  }

  // DP aggregate release demo: budget split across three queries.
  {
    privacy::DpAggregator agg(&holdout_table, 3.0, 7);
    auto count = agg.NoisyCount("age", 1.0);
    auto mean = agg.NoisyMean("age", 20, 90, 2.0);
    std::printf("\nDP aggregate release (budget 3.0): noisy count=%.1f, "
                "noisy mean age=%.1f, remaining budget=%.2f\n",
                count.value_or(-1), mean.value_or(-1), agg.remaining_budget());
    auto refused = agg.NoisyCount("age", 0.5);
    std::printf("fourth query over budget -> %s\n",
                refused.ok() ? "allowed (BUG)" : refused.status().ToString().c_str());
  }

  // Federated grid.
  std::printf("\nAblation A4(b): federated averaging "
              "(4 clients, 10 rounds)\n");
  std::printf("%-22s %12s\n", "setting", "accuracy");
  popts.num_rows = 400;
  common::Rng frng(43);
  auto all_table = data::GeneratePatientTable(popts, frng);
  auto all = ml::DatasetFromTable(all_table, "has_heart_disease");
  ml::Standardize(&*all);
  auto eval_table = data::GeneratePatientTable(popts, frng);
  auto eval = ml::DatasetFromTable(eval_table, "has_heart_disease");
  ml::Standardize(&*eval);
  struct FlSetting {
    double heterogeneity;
    bool adaptive;
    const char* name;
  };
  for (const FlSetting& setting :
       {FlSetting{0.0, false, "IID"}, FlSetting{0.9, false, "skewed"},
        FlSetting{0.9, true, "skewed + adaptive"}}) {
    const auto& [heterogeneity, adaptive, name] = setting;
    common::Rng crng(44);
    auto clients = privacy::MakeHeterogeneousClients(*all, 4, heterogeneity,
                                                     crng);
    privacy::FederatedTrainer::Options fopts;
    fopts.rounds = 10;
    fopts.adaptive_weighting = adaptive;
    privacy::FederatedTrainer trainer(fopts);
    auto report = trainer.Train(clients, *eval);
    std::printf("%-22s %11.1f%%\n", name,
                report.ok() ? 100.0 * report->final_accuracy : -1.0);
  }
  return 0;
}
