// Serving-layer overload bench: offered load × queue depth × shedding
// policy × hedging, in virtual time.
//
// The paper's cost/latency tables assume every query is served in
// isolation; a deployed endpoint sees *traffic*, and its tail latency is
// made in the queue, not in the model. This bench drives the serve::Server
// scheduler past saturation and reports what each admission policy does to
// throughput, p50/p99 virtual latency, shed rate and cost — with a faulted
// section (FaultInjectingLlm at 30%) layered on top. All latency is
// simulated ms, all schedules are seeded, responses are id-sorted: two runs
// print byte-identical tables even though real worker threads race over
// the requests.
//
// Flags: `--benchmark-smoke` runs only the registry-reconciliation cell at a
// ctest-friendly size (the exit status enforces that the registry snapshot
// matches the legacy ServerStats view and is byte-stable across worker
// counts); `--metrics-out=PATH` writes the cell's Prometheus text export.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

using namespace llmdm;

std::shared_ptr<llm::SimulatedLlm> MakeEndpoint(const std::string& name,
                                                double latency_ms_per_1k,
                                                uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = name;
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

struct CellResult {
  serve::ServerStats stats;
  common::Money cost;
};

// Drives `n` requests at a fixed virtual inter-arrival gap through a fresh
// server and returns the aggregate outcome.
CellResult RunCell(const serve::Server::Options& options,
                   std::shared_ptr<llm::LlmModel> model,
                   std::shared_ptr<llm::LlmModel> hedge_model, size_t n,
                   double gap_vms, double deadline_ms,
                   size_t input_period = 50) {
  serve::Server server(std::move(model), options, std::move(hedge_model));
  for (size_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * gap_vms;
    req.input = common::StrFormat("workload query %zu about data systems",
                                  i % input_period);
    // Mixed SLOs: half the traffic is latency-sensitive, half can wait 4x
    // as long — the population deadline-aware shedding discriminates on.
    req.deadline_ms =
        deadline_ms > 0.0 ? ((i % 2 == 0) ? deadline_ms : 4.0 * deadline_ms)
                          : 0.0;
    server.Submit(req);
  }
  server.Drain();
  return CellResult{server.stats(), server.meter().cost()};
}

constexpr size_t kRequests = 400;
constexpr double kServiceVms = 130.0;  // nominal per-request service time
constexpr double kSlots = 4.0;         // virtual_concurrency below

double GapForLoad(double load) { return kServiceVms / (load * kSlots); }

const char* PolicyName(serve::ShedPolicy p) {
  switch (p) {
    case serve::ShedPolicy::kNone:
      return "unbounded";
    case serve::ShedPolicy::kQueueFull:
      return "queue-full";
    case serve::ShedPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

void PrintHeader() {
  std::printf("%-16s %5s %6s %6s %9s %9s %9s %8s\n", "policy", "load",
              "adm", "shed%", "p50(vms)", "p99(vms)", "good/vs", "cost");
}

void PrintCell(const char* policy, double load, const CellResult& cell) {
  const serve::ServerStats& s = cell.stats;
  double shed_pct = s.submitted == 0
                        ? 0.0
                        : 100.0 * double(s.shed) / double(s.submitted);
  std::printf("%-16s %4.1fx %6zu %5.1f%% %9.0f %9.0f %9.2f %8s\n", policy,
              load, s.admitted, shed_pct, s.p50_latency_vms,
              s.p99_latency_vms, s.goodput_per_vs,
              cell.cost.ToString(2).c_str());
}

// The observability acceptance check. Each cell is driven three times through
// injected registries — 2, 8, and again 8 worker threads. ServerStats is a
// view over the registry now, so every field must reconcile exactly; and
// because every instrument is fed deterministic virtual-time values, the
// Prometheus export must be byte-identical across runs and worker counts.
// Returns true iff both hold, and appends the export to `prom_out`.
template <typename RunCellFn>
bool ReconcileCell(const char* cell_name, const RunCellFn& run_cell,
                   std::string* prom_out) {
  obs::Registry reg2, reg8, reg8_again;
  CellResult cell = run_cell(size_t{2}, &reg2);
  (void)run_cell(size_t{8}, &reg8);
  (void)run_cell(size_t{8}, &reg8_again);

  const serve::ServerStats& s = cell.stats;
  auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(reg2.GetCounter(name)->value());
  };
  uint64_t latency_count =
      reg2.GetHistogram("llmdm_serve_latency_vms", {},
                        obs::Histogram::LatencyBoundsVms())
          ->TakeSnapshot()
          .count;
  struct Row {
    const char* field;
    unsigned long long legacy;
    unsigned long long registry;
  };
  const Row rows[] = {
      {"submitted", s.submitted, counter("llmdm_serve_submitted_total")},
      {"admitted", s.admitted, counter("llmdm_serve_admitted_total")},
      {"shed", s.shed, counter("llmdm_serve_shed_total")},
      {"coalesced", s.coalesced, counter("llmdm_serve_coalesced_total")},
      {"completed", s.completed, counter("llmdm_serve_completed_total")},
      {"failed", s.failed, counter("llmdm_serve_failed_total")},
      {"deadline_missed", s.deadline_missed,
       counter("llmdm_serve_deadline_missed_total")},
      {"hedges_launched", s.hedges_launched,
       counter("llmdm_serve_hedges_launched_total")},
      {"hedge_wins", s.hedge_wins, counter("llmdm_serve_hedge_wins_total")},
      {"hedge_cancelled_micros",
       static_cast<unsigned long long>(s.hedge_cancelled_cost.micros()),
       counter("llmdm_serve_hedge_cancelled_cost_micros_total")},
      {"max_queue_len", static_cast<unsigned long long>(s.max_queue_len),
       static_cast<unsigned long long>(
           reg2.GetGauge("llmdm_serve_max_queue_len")->value())},
      {"latency_histogram_count",
       static_cast<unsigned long long>(s.completed + s.failed), latency_count},
  };

  std::printf("\n== registry snapshot vs legacy ServerStats: %s ==\n\n",
              cell_name);
  std::printf("%-24s %12s %12s\n", "field", "legacy", "registry");
  bool reconciled = true;
  for (const Row& r : rows) {
    bool match = r.legacy == r.registry;
    reconciled = reconciled && match;
    std::printf("%-24s %12llu %12llu  %s\n", r.field, r.legacy, r.registry,
                match ? "ok" : "MISMATCH");
  }

  const std::string prom = reg2.PrometheusText();
  bool stable = prom == reg8.PrometheusText() &&
                prom == reg8_again.PrometheusText();
  std::printf("\nexport byte-identical across 2/8/8 worker threads: %s\n",
              stable ? "yes" : "NO");
  *prom_out += common::StrFormat("# cell: %s\n", cell_name);
  *prom_out += prom;
  return reconciled && stable;
}

int RunReconciliation(size_t n, const std::string& metrics_out) {
  std::string prom;
  // Overload cell: a bounded queue at 2x offered load with distinct queries,
  // so the shed counters and the queue-length high-water mark move.
  bool ok = ReconcileCell(
      "overload (queue-full shedding)",
      [&](size_t workers, obs::Registry* registry) {
        serve::Server::Options options;
        options.worker_threads = workers;
        options.virtual_concurrency = static_cast<size_t>(kSlots);
        options.queue_depth = 16;
        options.shed_policy = serve::ShedPolicy::kQueueFull;
        options.registry = registry;
        return RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                       nullptr, n, GapForLoad(2.0), 4.0 * kServiceVms);
      },
      &prom);
  // Coalescing cell: the workload repeats every 8 queries so duplicates
  // overlap in flight and single-flight collapses them.
  ok = ReconcileCell(
           "coalesce (single-flight, period-8 workload)",
           [&](size_t workers, obs::Registry* registry) {
             serve::Server::Options options;
             options.worker_threads = workers;
             options.virtual_concurrency = static_cast<size_t>(kSlots);
             options.queue_depth = 16;
             options.shed_policy = serve::ShedPolicy::kQueueFull;
             options.single_flight = true;
             options.registry = registry;
             return RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                            nullptr, n, GapForLoad(2.0), 4.0 * kServiceVms,
                            /*input_period=*/8);
           },
           &prom) &&
       ok;
  // Hedging cell: timeout-tail primary raced by a fast fallback, so the
  // hedge counters and the cancelled-spend ledger are exercised too.
  ok = ReconcileCell(
           "hedged (20% timeout primary)",
           [&](size_t workers, obs::Registry* registry) {
             llm::FaultProfile tail;
             tail.timeout = 0.2;
             auto primary = std::make_shared<llm::FaultInjectingLlm>(
                 MakeEndpoint("sim-endpoint", 2000.0, 3), tail, 21);
             serve::Server::Options options;
             options.worker_threads = workers;
             options.virtual_concurrency = static_cast<size_t>(kSlots);
             options.shed_policy = serve::ShedPolicy::kNone;
             options.hedging = true;
             options.hedge_percentile = 0.5;
             options.est_output_tokens = 8;
             options.registry = registry;
             return RunCell(options, primary,
                            MakeEndpoint("sim-fallback", 400.0, 4), n,
                            GapForLoad(0.5), 0.0);
           },
           &prom) &&
       ok;

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return ok ? 0 : 1;
}

int main_impl(bool smoke, const std::string& metrics_out) {
  if (smoke) {
    return RunReconciliation(/*n=*/160, metrics_out);
  }
  std::printf("== serving under overload: admission policy x offered load ==\n");
  std::printf("(%zu requests, %d virtual slots, queue depth 32, deadlines "
              "%.0f/%.0f vms mixed)\n\n", kRequests, int(kSlots),
              4.0 * kServiceVms, 16.0 * kServiceVms);
  PrintHeader();
  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::kNone, serve::ShedPolicy::kQueueFull,
        serve::ShedPolicy::kDeadlineAware}) {
    for (double load : {0.5, 1.0, 2.0, 4.0}) {
      serve::Server::Options options;
      options.worker_threads = 8;
      options.virtual_concurrency = static_cast<size_t>(kSlots);
      options.queue_depth = 32;
      options.shed_policy = policy;
      auto cell = RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                          nullptr, kRequests, GapForLoad(load),
                          4.0 * kServiceVms);
      PrintCell(PolicyName(policy), load, cell);
    }
  }

  std::printf("\n== queue depth at 2x offered load (queue-full policy) ==\n\n");
  std::printf("%-8s %6s %6s %9s %9s %9s\n", "depth", "adm", "shed%",
              "p50(vms)", "p99(vms)", "good/vs");
  for (size_t depth : {4u, 16u, 64u, 256u}) {
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.queue_depth = depth;
    options.shed_policy = serve::ShedPolicy::kQueueFull;
    auto cell = RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                        nullptr, kRequests, GapForLoad(2.0),
                        8.0 * kServiceVms);
    const serve::ServerStats& s = cell.stats;
    std::printf("%-8zu %6zu %5.1f%% %9.0f %9.0f %9.2f\n", depth, s.admitted,
                100.0 * double(s.shed) / double(s.submitted),
                s.p50_latency_vms, s.p99_latency_vms, s.goodput_per_vs);
  }

  std::printf("\n== hedged requests against a timeout-tail primary ==\n");
  std::printf("(primary injects 20%% timeouts; hedge races the fast "
              "fallback endpoint)\n\n");
  std::printf("%-10s %6s %6s %7s %5s %9s %9s %9s %10s\n", "hedging", "done",
              "fail", "hedges", "wins", "p50(vms)", "p99(vms)", "cost",
              "cancelled");
  for (bool hedging : {false, true}) {
    llm::FaultProfile tail;
    tail.timeout = 0.2;
    auto primary = std::make_shared<llm::FaultInjectingLlm>(
        MakeEndpoint("sim-endpoint", 2000.0, 3), tail, 21);
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.shed_policy = serve::ShedPolicy::kNone;
    options.hedging = hedging;
    options.hedge_percentile = 0.5;
    options.est_output_tokens = 8;  // tight estimate: hedge past the median
    auto cell = RunCell(options, primary,
                        MakeEndpoint("sim-fallback", 400.0, 4), kRequests,
                        GapForLoad(0.5), 0.0);
    const serve::ServerStats& s = cell.stats;
    std::printf("%-10s %6zu %6zu %7zu %5zu %9.0f %9.0f %9s %10s\n",
                hedging ? "on" : "off", s.completed, s.failed,
                s.hedges_launched, s.hedge_wins, s.p50_latency_vms,
                s.p99_latency_vms, cell.cost.ToString(3).c_str(),
                s.hedge_cancelled_cost.ToString(3).c_str());
  }

  std::printf("\n== graceful degradation at 30%% endpoint faults ==\n");
  std::printf("(resilient stack behind the server: retry+backoff, breaker, "
              "fallback rung)\n\n");
  PrintHeader();
  for (double fault_rate : {0.0, 0.3}) {
    auto faulty = std::make_shared<llm::FaultInjectingLlm>(
        MakeEndpoint("sim-endpoint", 2000.0, 3),
        llm::FaultProfile::Uniform(fault_rate), 31);
    llm::ResilientLlm::Options resilience;
    resilience.retry.max_attempts = 3;
    resilience.retry.initial_backoff_ms = 25.0;
    resilience.seed = 9;
    auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);
    resilient->AddFallbackModel(MakeEndpoint("sim-fallback", 400.0, 4));
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.queue_depth = 32;
    options.shed_policy = serve::ShedPolicy::kQueueFull;
    auto cell = RunCell(options, resilient, nullptr, kRequests,
                        GapForLoad(1.0), 4.0 * kServiceVms);
    std::string label =
        common::StrFormat("faults=%.0f%%", 100.0 * fault_rate);
    PrintCell(label.c_str(), 1.0, cell);
  }

  std::printf(
      "\nreading: past saturation the unbounded queue's p99 grows with the "
      "backlog and its goodput\ncollapses to zero — every admitted request "
      "eventually misses its deadline in line. Bounding the\nqueue holds "
      "p99 near the depth x service product and keeps goodput at the "
      "capacity ceiling;\ndeadline-aware shedding additionally refuses the "
      "requests that could not have made it anyway.\nDeeper queues only "
      "stretch the tail: past ~2 service times of buffering, depth buys "
      "latency, not\nthroughput. Hedging trades a bounded premium "
      "(cancelled-attempt spend, booked separately from\nthe committed "
      "meter) for the timeout tail; at 30%% faults the resilient stack "
      "under the same\nadmission policy degrades by paying retry/fallback "
      "cost, not by losing requests.\n");
  return RunReconciliation(kRequests, metrics_out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark-smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      std::fprintf(stderr, "usage: %s [--benchmark-smoke] [--metrics-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return main_impl(smoke, metrics_out);
}
