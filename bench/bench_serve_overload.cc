// Serving-layer overload bench: offered load × queue depth × shedding
// policy × hedging, in virtual time.
//
// The paper's cost/latency tables assume every query is served in
// isolation; a deployed endpoint sees *traffic*, and its tail latency is
// made in the queue, not in the model. This bench drives the serve::Server
// scheduler past saturation and reports what each admission policy does to
// throughput, p50/p99 virtual latency, shed rate and cost — with a faulted
// section (FaultInjectingLlm at 30%) layered on top. All latency is
// simulated ms, all schedules are seeded, responses are id-sorted: two runs
// print byte-identical tables even though real worker threads race over
// the requests.
//
// The multi-tenant section drives a synthetic tenant population (zipf
// sizes, diurnal arrivals, bursty hot tenants) through the QoS scheduler
// and reports per-tenant SLO attainment, spend and Jain's fairness index;
// its hot-tenant-isolation cell lets one tenant burst to 10x its fair share
// and *enforces* — by exit status — that every compliant tenant still
// attains >= 95% SLO with Jain >= 0.9, and that the full per-tenant metrics
// export is byte-identical across 2/8/8 worker threads.
//
// The continuous-batching section drives the Table II near-duplicate
// workload (shared clause heads, varying tails) through the per-model batch
// scheduler and *enforces* — by exit status — that batching changes
// billing, never answers: id-sorted texts are byte-identical to an
// unbatched run, prefix-cache savings are strictly positive, and the
// batched spend plus the itemized savings reconstructs the unbatched spend
// to the micro, byte-identically across 1/4/8 worker threads.
//
// Flags: `--benchmark-smoke` runs the registry-reconciliation and QoS
// isolation cells at a ctest-friendly size (the exit status enforces that
// the registry snapshot matches the legacy ServerStats view, that exports
// are byte-stable across worker counts, and that hot-tenant isolation
// holds); `--qos-smoke` runs only the QoS cells; `--batch-smoke` runs only
// the continuous-batching cell; `--metrics-out=PATH` writes the cells'
// Prometheus text export.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.h"
#include "common/string_util.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "serve/qos.h"
#include "serve/server.h"

namespace {

using namespace llmdm;

std::shared_ptr<llm::SimulatedLlm> MakeEndpoint(const std::string& name,
                                                double latency_ms_per_1k,
                                                uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = name;
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

struct CellResult {
  serve::ServerStats stats;
  common::Money cost;
};

// Drives `n` requests at a fixed virtual inter-arrival gap through a fresh
// server and returns the aggregate outcome.
CellResult RunCell(const serve::Server::Options& options,
                   std::shared_ptr<llm::LlmModel> model,
                   std::shared_ptr<llm::LlmModel> hedge_model, size_t n,
                   double gap_vms, double deadline_ms,
                   size_t input_period = 50) {
  serve::Server server(std::move(model), options, std::move(hedge_model));
  for (size_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * gap_vms;
    req.input = common::StrFormat("workload query %zu about data systems",
                                  i % input_period);
    // Mixed SLOs: half the traffic is latency-sensitive, half can wait 4x
    // as long — the population deadline-aware shedding discriminates on.
    req.deadline_ms =
        deadline_ms > 0.0 ? ((i % 2 == 0) ? deadline_ms : 4.0 * deadline_ms)
                          : 0.0;
    server.Submit(req);
  }
  server.Drain();
  return CellResult{server.stats(), server.meter().cost()};
}

constexpr size_t kRequests = 400;
constexpr double kServiceVms = 130.0;  // nominal per-request service time
constexpr double kSlots = 4.0;         // virtual_concurrency below

double GapForLoad(double load) { return kServiceVms / (load * kSlots); }

const char* PolicyName(serve::ShedPolicy p) {
  switch (p) {
    case serve::ShedPolicy::kNone:
      return "unbounded";
    case serve::ShedPolicy::kQueueFull:
      return "queue-full";
    case serve::ShedPolicy::kDeadlineAware:
      return "deadline-aware";
  }
  return "?";
}

void PrintHeader() {
  std::printf("%-16s %5s %6s %6s %9s %9s %9s %8s\n", "policy", "load",
              "adm", "shed%", "p50(vms)", "p99(vms)", "good/vs", "cost");
}

void PrintCell(const char* policy, double load, const CellResult& cell) {
  const serve::ServerStats& s = cell.stats;
  double shed_pct = s.submitted == 0
                        ? 0.0
                        : 100.0 * double(s.shed) / double(s.submitted);
  std::printf("%-16s %4.1fx %6zu %5.1f%% %9.0f %9.0f %9.2f %8s\n", policy,
              load, s.admitted, shed_pct, s.p50_latency_vms,
              s.p99_latency_vms, s.goodput_per_vs,
              cell.cost.ToString(2).c_str());
}

// The observability acceptance check. Each cell is driven three times through
// injected registries — 2, 8, and again 8 worker threads. ServerStats is a
// view over the registry now, so every field must reconcile exactly; and
// because every instrument is fed deterministic virtual-time values, the
// Prometheus export must be byte-identical across runs and worker counts.
// Returns true iff both hold, and appends the export to `prom_out`.
template <typename RunCellFn>
bool ReconcileCell(const char* cell_name, const RunCellFn& run_cell,
                   std::string* prom_out) {
  obs::Registry reg2, reg8, reg8_again;
  CellResult cell = run_cell(size_t{2}, &reg2);
  (void)run_cell(size_t{8}, &reg8);
  (void)run_cell(size_t{8}, &reg8_again);

  const serve::ServerStats& s = cell.stats;
  auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(reg2.GetCounter(name)->value());
  };
  uint64_t latency_count =
      reg2.GetHistogram("llmdm_serve_latency_vms", {},
                        obs::Histogram::LatencyBoundsVms())
          ->TakeSnapshot()
          .count;
  struct Row {
    const char* field;
    unsigned long long legacy;
    unsigned long long registry;
  };
  const Row rows[] = {
      {"submitted", s.submitted, counter("llmdm_serve_submitted_total")},
      {"admitted", s.admitted, counter("llmdm_serve_admitted_total")},
      {"shed", s.shed, counter("llmdm_serve_shed_total")},
      {"coalesced", s.coalesced, counter("llmdm_serve_coalesced_total")},
      {"completed", s.completed, counter("llmdm_serve_completed_total")},
      {"failed", s.failed, counter("llmdm_serve_failed_total")},
      {"deadline_missed", s.deadline_missed,
       counter("llmdm_serve_deadline_missed_total")},
      {"hedges_launched", s.hedges_launched,
       counter("llmdm_serve_hedges_launched_total")},
      {"hedge_wins", s.hedge_wins, counter("llmdm_serve_hedge_wins_total")},
      {"hedge_cancelled_micros",
       static_cast<unsigned long long>(s.hedge_cancelled_cost.micros()),
       counter("llmdm_serve_hedge_cancelled_cost_micros_total")},
      {"max_queue_len", static_cast<unsigned long long>(s.max_queue_len),
       static_cast<unsigned long long>(
           reg2.GetGauge("llmdm_serve_max_queue_len")->value())},
      {"latency_histogram_count",
       static_cast<unsigned long long>(s.completed + s.failed), latency_count},
  };

  std::printf("\n== registry snapshot vs legacy ServerStats: %s ==\n\n",
              cell_name);
  std::printf("%-24s %12s %12s\n", "field", "legacy", "registry");
  bool reconciled = true;
  for (const Row& r : rows) {
    bool match = r.legacy == r.registry;
    reconciled = reconciled && match;
    std::printf("%-24s %12llu %12llu  %s\n", r.field, r.legacy, r.registry,
                match ? "ok" : "MISMATCH");
  }

  const std::string prom = reg2.PrometheusText();
  bool stable = prom == reg8.PrometheusText() &&
                prom == reg8_again.PrometheusText();
  std::printf("\nexport byte-identical across 2/8/8 worker threads: %s\n",
              stable ? "yes" : "NO");
  *prom_out += common::StrFormat("# cell: %s\n", cell_name);
  *prom_out += prom;
  return reconciled && stable;
}

bool RunReconciliation(size_t n, std::string* prom_out) {
  std::string& prom = *prom_out;
  // Overload cell: a bounded queue at 2x offered load with distinct queries,
  // so the shed counters and the queue-length high-water mark move.
  bool ok = ReconcileCell(
      "overload (queue-full shedding)",
      [&](size_t workers, obs::Registry* registry) {
        serve::Server::Options options;
        options.worker_threads = workers;
        options.virtual_concurrency = static_cast<size_t>(kSlots);
        options.queue_depth = 16;
        options.shed_policy = serve::ShedPolicy::kQueueFull;
        options.registry = registry;
        return RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                       nullptr, n, GapForLoad(2.0), 4.0 * kServiceVms);
      },
      &prom);
  // Coalescing cell: the workload repeats every 8 queries so duplicates
  // overlap in flight and single-flight collapses them.
  ok = ReconcileCell(
           "coalesce (single-flight, period-8 workload)",
           [&](size_t workers, obs::Registry* registry) {
             serve::Server::Options options;
             options.worker_threads = workers;
             options.virtual_concurrency = static_cast<size_t>(kSlots);
             options.queue_depth = 16;
             options.shed_policy = serve::ShedPolicy::kQueueFull;
             options.single_flight = true;
             options.registry = registry;
             return RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                            nullptr, n, GapForLoad(2.0), 4.0 * kServiceVms,
                            /*input_period=*/8);
           },
           &prom) &&
       ok;
  // Hedging cell: timeout-tail primary raced by a fast fallback, so the
  // hedge counters and the cancelled-spend ledger are exercised too.
  ok = ReconcileCell(
           "hedged (20% timeout primary)",
           [&](size_t workers, obs::Registry* registry) {
             llm::FaultProfile tail;
             tail.timeout = 0.2;
             auto primary = std::make_shared<llm::FaultInjectingLlm>(
                 MakeEndpoint("sim-endpoint", 2000.0, 3), tail, 21);
             serve::Server::Options options;
             options.worker_threads = workers;
             options.virtual_concurrency = static_cast<size_t>(kSlots);
             options.shed_policy = serve::ShedPolicy::kNone;
             options.hedging = true;
             options.hedge_percentile = 0.5;
             options.est_output_tokens = 8;
             options.registry = registry;
             return RunCell(options, primary,
                            MakeEndpoint("sim-fallback", 400.0, 4), n,
                            GapForLoad(0.5), 0.0);
           },
           &prom) &&
       ok;

  return ok;
}

bool WriteMetricsFile(const std::string& metrics_out, const std::string& prom) {
  if (metrics_out.empty()) return true;
  std::FILE* f = std::fopen(metrics_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    return false;
  }
  std::fwrite(prom.data(), 1, prom.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", metrics_out.c_str());
  return true;
}

// ---- Multi-tenant QoS -------------------------------------------------------

void SortByArrivalAndNumber(std::vector<serve::Request>* requests) {
  std::stable_sort(requests->begin(), requests->end(),
                   [](const serve::Request& a, const serve::Request& b) {
                     return a.arrival_vms < b.arrival_vms;
                   });
  for (size_t i = 0; i < requests->size(); ++i) (*requests)[i].id = i;
}

void PrintTenantHeader() {
  std::printf("%-8s %6s %6s %7s %7s %6s %8s %9s %9s\n", "tenant", "sub",
              "adm", "shed_q", "shed_r", "slo%", "p99(vms)", "spend",
              "coal");
}

void PrintTenantRow(const serve::TenantStats& t) {
  std::printf("%-8s %6zu %6zu %7zu %7zu %5.1f%% %8.0f %9s %9zu\n",
              t.tenant.c_str(), t.submitted, t.admitted, t.shed_queue,
              t.shed_quota, 100.0 * t.slo_attainment, t.p99_latency_vms,
              t.spend.ToString(3).c_str(), t.coalesced);
}

// The population cell: GeneratePopulation's zipf/diurnal/bursty stream
// through a QoS server with equal weights and a metered head tenant, sized
// to ~1.2x capacity so the queue-share and quota policies both bite.
void RunPopulationCell(bool smoke) {
  serve::PopulationOptions pop;
  pop.tenants = smoke ? 8 : 16;
  pop.requests = smoke ? 400 : 2000;
  pop.mean_gap_vms = 24.0;  // ~1.2x the 4-slot capacity at ~116 vms/request
  pop.deadline_ms = 1000.0;
  pop.hot_tenants = 1;
  pop.burst_every_vms = 4000.0;
  pop.burst_size = smoke ? 16 : 32;
  pop.seed = 7;
  std::vector<serve::Request> requests = serve::GeneratePopulation(pop);

  serve::Server::Options options;
  options.worker_threads = 8;
  options.virtual_concurrency = static_cast<size_t>(kSlots);
  options.queue_depth = 32;
  for (size_t t = 0; t < pop.tenants; ++t) {
    serve::TenantConfig cfg;
    cfg.id = common::StrFormat("t%02zu", t);
    cfg.weight = 1.0;
    if (t == 0) {
      // The zipf head doubles as the burster: meter it at ~60% of its
      // offered rate, with a queue share wide enough that the bucket — not
      // the queue — is its binding constraint (queue share is checked
      // first, so a tight queue would mask the quota entirely).
      cfg.quota_tokens_per_vs = 700.0;
      cfg.quota_burst_tokens = 1000.0;
      cfg.queue_limit = 16;
    }
    options.qos.tenants.push_back(cfg);
  }
  serve::Server server(MakeEndpoint("sim-endpoint", 2000.0, 3), options);
  for (const auto& req : requests) server.Submit(req);
  server.Drain();

  std::printf(
      "\n== synthetic tenant population (zipf sizes, diurnal arrivals, "
      "bursty head tenant) ==\n(%zu tenants, %zu requests, head tenant "
      "quota-metered; queue shares split by weight)\n\n",
      pop.tenants, requests.size());
  PrintTenantHeader();
  std::vector<double> slos;
  for (const auto& t : server.tenant_stats()) {
    if (t.submitted == 0) continue;
    PrintTenantRow(t);
    slos.push_back(t.slo_attainment);
  }
  std::printf("\nJain fairness over per-tenant SLO attainment: %.3f\n",
              serve::JainFairnessIndex(slos));
}

struct IsolationOutcome {
  std::string table;      // serialized per-tenant rows (determinism check)
  double min_compliant_slo = 0.0;
  double jain = 0.0;      // over compliant tenants' SLO attainment
  size_t hot_shed = 0;    // the pressure must be real
};

// One tenant ("hot") offered 10x its fair share of a 4-slot server shared
// with 8 compliant tenants; the hot tenant's quota pins it to its share.
IsolationOutcome RunIsolationCell(size_t workers, double horizon_vms,
                                  obs::Registry* registry) {
  std::vector<serve::Request> requests;
  for (size_t t = 1; t <= 8; ++t) {
    // Each compliant tenant offers 1 request / 400 vms — together ~60% of
    // capacity — with staggered phases so arrivals do not align.
    size_t k = 0;
    for (double at = static_cast<double>(t) * 13.0; at < horizon_vms;
         at += 400.0) {
      serve::Request req;
      req.tenant = common::StrFormat("c%02zu", t);
      req.arrival_vms = at;
      req.deadline_ms = 1000.0;
      req.input = common::StrFormat("tenant c%02zu steady query %zu", t, k++);
      requests.push_back(req);
    }
  }
  {
    // Fair share of 9 equal-weight tenants is ~1/(9 * 116 vms / 4 slots) =
    // one request per ~260 vms; the hot tenant offers one per 26 vms.
    size_t k = 0;
    for (double at = 0.0; at < horizon_vms; at += 26.0) {
      serve::Request req;
      req.tenant = "hot";
      req.arrival_vms = at;
      req.deadline_ms = 1000.0;
      req.input = common::StrFormat("hot tenant burst query %zu", k++);
      requests.push_back(req);
    }
  }
  SortByArrivalAndNumber(&requests);

  serve::Server::Options options;
  options.worker_threads = workers;
  options.virtual_concurrency = static_cast<size_t>(kSlots);
  options.queue_depth = 32;
  options.registry = registry;
  for (size_t t = 1; t <= 8; ++t) {
    serve::TenantConfig cfg;
    cfg.id = common::StrFormat("c%02zu", t);
    options.qos.tenants.push_back(cfg);
  }
  serve::TenantConfig hot;
  hot.id = "hot";
  // ~Fair share in token terms: (4 slots / 9 tenants) * 1000 vms/vs /
  // 2 vms-per-token ~= 220 tokens/vs.
  hot.quota_tokens_per_vs = 220.0;
  hot.quota_burst_tokens = 440.0;
  options.qos.tenants.push_back(hot);

  serve::Server server(MakeEndpoint("sim-endpoint", 2000.0, 3), options);
  for (const auto& req : requests) server.Submit(req);
  server.Drain();

  IsolationOutcome out;
  std::vector<double> compliant_slos;
  double min_slo = 1.0;
  for (const auto& t : server.tenant_stats()) {
    if (t.submitted == 0) continue;
    out.table += common::StrFormat(
        "%s sub=%zu adm=%zu shed_q=%zu shed_r=%zu done=%zu miss=%zu "
        "spend=%lld slo=%.4f p99=%.3f\n",
        t.tenant.c_str(), t.submitted, t.admitted, t.shed_queue, t.shed_quota,
        t.completed, t.deadline_missed, (long long)t.spend.micros(),
        t.slo_attainment, t.p99_latency_vms);
    if (t.tenant == "hot") {
      out.hot_shed = t.shed_quota + t.shed_queue;
    } else {
      compliant_slos.push_back(t.slo_attainment);
      min_slo = std::min(min_slo, t.slo_attainment);
    }
  }
  out.min_compliant_slo = compliant_slos.empty() ? 0.0 : min_slo;
  out.jain = serve::JainFairnessIndex(compliant_slos);
  return out;
}

// The QoS acceptance cell. Exit-status enforced: compliant tenants keep
// their SLOs while the hot tenant bursts 10x, fairness holds, and the
// per-tenant export (every {tenant=...} series) is byte-identical across
// 2/8/8 worker threads.
bool RunQosIsolation(bool smoke, std::string* prom_out) {
  const double horizon = smoke ? 8000.0 : 40000.0;
  obs::Registry reg2, reg8, reg8_again;
  IsolationOutcome cell = RunIsolationCell(2, horizon, &reg2);
  IsolationOutcome cell8 = RunIsolationCell(8, horizon, &reg8);
  IsolationOutcome cell8_again = RunIsolationCell(8, horizon, &reg8_again);

  std::printf(
      "\n== hot-tenant isolation (one tenant bursting 10x its share) ==\n"
      "(8 compliant tenants at ~60%% of capacity; \"hot\" quota-pinned to "
      "its fair share)\n\n");
  // Print the serialized table itself so what is shown is exactly what the
  // determinism check compared.
  std::printf("%s\n", cell.table.c_str());
  std::printf("min compliant SLO attainment: %.1f%% (require >= 95%%)\n",
              100.0 * cell.min_compliant_slo);
  std::printf("Jain fairness over compliant SLOs: %.3f (require >= 0.9)\n",
              cell.jain);
  std::printf("hot tenant sheds (quota+queue): %zu (require > 0)\n",
              cell.hot_shed);

  const std::string prom = reg2.PrometheusText();
  bool stable = cell.table == cell8.table &&
                cell.table == cell8_again.table &&
                prom == reg8.PrometheusText() &&
                prom == reg8_again.PrometheusText();
  std::printf("per-tenant export byte-identical across 2/8/8 workers: %s\n",
              stable ? "yes" : "NO");
  *prom_out += "# cell: qos hot-tenant isolation\n";
  *prom_out += prom;

  bool isolated = cell.min_compliant_slo >= 0.95 && cell.jain >= 0.9 &&
                  cell.hot_shed > 0;
  if (!isolated) std::printf("HOT-TENANT ISOLATION FAILED\n");
  return isolated && stable;
}

// ---- Continuous batching ----------------------------------------------------

std::shared_ptr<llm::SimulatedLlm> MakeBatchEndpoint(double latency_ms_per_1k,
                                                     uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = "sim-batch";
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.cached_input_price_per_1k = common::Money::FromDollars(0.0001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

struct BatchRunOutcome {
  std::string texts;  // id-sorted response texts (answer-equality check)
  std::string table;  // texts + billing ledger (determinism check)
  serve::ServerStats stats;
  common::Money cost;
  llm::UsageMeter::BatchStats ledger;
};

// Drives the Table II near-duplicate workload (a shared clause head with a
// varying tail — the shape the prefix trie amortizes) through one server.
BatchRunOutcome RunBatchCell(size_t workers, bool batching, size_t n,
                             obs::Registry* registry) {
  serve::Server::Options options;
  options.worker_threads = workers;
  options.virtual_concurrency = static_cast<size_t>(kSlots);
  options.shed_policy = serve::ShedPolicy::kNone;
  options.batching = batching;
  options.max_batch = 8;
  options.batch_window_vms = 10.0;
  options.registry = registry;
  serve::Server server(MakeBatchEndpoint(2000.0, 3), options);
  for (size_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * 2.0;
    req.input = common::StrFormat(
        "translate condition group %zu variant %zu into sql", i % 8, i % 3);
    server.Submit(req);
  }
  BatchRunOutcome out;
  for (const auto& r : server.Drain()) {
    out.texts += common::StrFormat("%llu %s\n", (unsigned long long)r.id,
                                   r.text.c_str());
    out.table += common::StrFormat(
        "%llu ok=%d lat=%.3f cost=%lld %s\n", (unsigned long long)r.id,
        r.status.ok() ? 1 : 0, r.latency_vms, (long long)r.cost.micros(),
        r.text.c_str());
  }
  out.stats = server.stats();
  out.cost = server.meter().cost();
  out.ledger = server.meter().batch_stats();
  out.table += common::StrFormat(
      "ledger batches=%zu calls=%zu cached=%zu saved=%lld cost=%lld\n",
      out.ledger.batches, out.ledger.batched_calls,
      out.ledger.prefix_cached_tokens,
      (long long)out.ledger.prefix_saved.micros(),
      (long long)out.cost.micros());
  return out;
}

// The batching acceptance cell. Exit-status enforced: batching amortizes
// the shared prompt head (savings > 0, spend strictly down) without
// changing a single answer byte, and the whole outcome — texts, per-request
// billing, the batch ledger — is byte-identical across 1/4/8 workers.
bool RunBatchSmoke(bool smoke, std::string* prom_out) {
  const size_t n = smoke ? 160 : 400;
  obs::Registry reg1, reg4, reg8;
  BatchRunOutcome plain = RunBatchCell(4, /*batching=*/false, n, nullptr);
  BatchRunOutcome b1 = RunBatchCell(1, /*batching=*/true, n, &reg1);
  BatchRunOutcome b4 = RunBatchCell(4, /*batching=*/true, n, &reg4);
  BatchRunOutcome b8 = RunBatchCell(8, /*batching=*/true, n, &reg8);

  std::printf(
      "\n== continuous batching (max_batch=8, window=10 vms, near-duplicate "
      "Table II workload) ==\n\n");
  std::printf("%-12s %8s %10s %12s %12s %10s\n", "mode", "done", "batches",
              "cached_tok", "saved", "cost");
  std::printf("%-12s %8zu %10s %12s %12s %10s\n", "unbatched",
              plain.stats.completed, "-", "-", "-",
              plain.cost.ToString(4).c_str());
  std::printf("%-12s %8zu %10zu %12zu %12s %10s\n", "batched",
              b4.stats.completed, b4.stats.batches_closed,
              b4.stats.prefix_cached_tokens,
              b4.stats.prefix_saved.ToString(4).c_str(),
              b4.cost.ToString(4).c_str());

  bool texts_equal = b4.texts == plain.texts;
  bool savings = b4.stats.prefix_cached_tokens > 0 &&
                 b4.cost.micros() < plain.cost.micros();
  // Exactness: the itemized savings must reconstruct the unbatched ledger.
  bool conserved =
      b4.cost.micros() + b4.ledger.prefix_saved.micros() ==
      plain.cost.micros();
  bool deterministic = b1.table == b4.table && b1.table == b8.table;
  const std::string prom = reg1.PrometheusText();
  bool export_stable =
      prom == reg4.PrometheusText() && prom == reg8.PrometheusText();

  std::printf("\nanswers byte-identical to unbatched run: %s\n",
              texts_equal ? "yes" : "NO");
  std::printf("prefix savings > 0 and spend strictly down: %s\n",
              savings ? "yes" : "NO");
  std::printf("batched spend + itemized savings == unbatched spend: %s\n",
              conserved ? "yes" : "NO");
  std::printf("outcome byte-identical across 1/4/8 workers: %s\n",
              deterministic ? "yes" : "NO");
  std::printf("batch metrics export byte-identical across workers: %s\n",
              export_stable ? "yes" : "NO");
  *prom_out += "# cell: continuous batching\n";
  *prom_out += prom;

  bool ok =
      texts_equal && savings && conserved && deterministic && export_stable;
  if (!ok) std::printf("BATCH SMOKE FAILED\n");
  return ok;
}

int main_impl(bool smoke, bool qos_smoke, bool batch_smoke,
              const std::string& metrics_out) {
  std::string prom;
  if (batch_smoke) {
    bool ok = RunBatchSmoke(/*smoke=*/true, &prom);
    ok = WriteMetricsFile(metrics_out, prom) && ok;
    return ok ? 0 : 1;
  }
  if (qos_smoke) {
    RunPopulationCell(/*smoke=*/true);
    bool ok = RunQosIsolation(/*smoke=*/true, &prom);
    ok = WriteMetricsFile(metrics_out, prom) && ok;
    return ok ? 0 : 1;
  }
  if (smoke) {
    bool ok = RunReconciliation(/*n=*/160, &prom);
    ok = RunQosIsolation(/*smoke=*/true, &prom) && ok;
    ok = WriteMetricsFile(metrics_out, prom) && ok;
    return ok ? 0 : 1;
  }
  std::printf("== serving under overload: admission policy x offered load ==\n");
  std::printf("(%zu requests, %d virtual slots, queue depth 32, deadlines "
              "%.0f/%.0f vms mixed)\n\n", kRequests, int(kSlots),
              4.0 * kServiceVms, 16.0 * kServiceVms);
  PrintHeader();
  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::kNone, serve::ShedPolicy::kQueueFull,
        serve::ShedPolicy::kDeadlineAware}) {
    for (double load : {0.5, 1.0, 2.0, 4.0}) {
      serve::Server::Options options;
      options.worker_threads = 8;
      options.virtual_concurrency = static_cast<size_t>(kSlots);
      options.queue_depth = 32;
      options.shed_policy = policy;
      auto cell = RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                          nullptr, kRequests, GapForLoad(load),
                          4.0 * kServiceVms);
      PrintCell(PolicyName(policy), load, cell);
    }
  }

  std::printf("\n== queue depth at 2x offered load (queue-full policy) ==\n\n");
  std::printf("%-8s %6s %6s %9s %9s %9s\n", "depth", "adm", "shed%",
              "p50(vms)", "p99(vms)", "good/vs");
  for (size_t depth : {4u, 16u, 64u, 256u}) {
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.queue_depth = depth;
    options.shed_policy = serve::ShedPolicy::kQueueFull;
    auto cell = RunCell(options, MakeEndpoint("sim-endpoint", 2000.0, 3),
                        nullptr, kRequests, GapForLoad(2.0),
                        8.0 * kServiceVms);
    const serve::ServerStats& s = cell.stats;
    std::printf("%-8zu %6zu %5.1f%% %9.0f %9.0f %9.2f\n", depth, s.admitted,
                100.0 * double(s.shed) / double(s.submitted),
                s.p50_latency_vms, s.p99_latency_vms, s.goodput_per_vs);
  }

  std::printf("\n== hedged requests against a timeout-tail primary ==\n");
  std::printf("(primary injects 20%% timeouts; hedge races the fast "
              "fallback endpoint)\n\n");
  std::printf("%-10s %6s %6s %7s %5s %9s %9s %9s %10s\n", "hedging", "done",
              "fail", "hedges", "wins", "p50(vms)", "p99(vms)", "cost",
              "cancelled");
  for (bool hedging : {false, true}) {
    llm::FaultProfile tail;
    tail.timeout = 0.2;
    auto primary = std::make_shared<llm::FaultInjectingLlm>(
        MakeEndpoint("sim-endpoint", 2000.0, 3), tail, 21);
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.shed_policy = serve::ShedPolicy::kNone;
    options.hedging = hedging;
    options.hedge_percentile = 0.5;
    options.est_output_tokens = 8;  // tight estimate: hedge past the median
    auto cell = RunCell(options, primary,
                        MakeEndpoint("sim-fallback", 400.0, 4), kRequests,
                        GapForLoad(0.5), 0.0);
    const serve::ServerStats& s = cell.stats;
    std::printf("%-10s %6zu %6zu %7zu %5zu %9.0f %9.0f %9s %10s\n",
                hedging ? "on" : "off", s.completed, s.failed,
                s.hedges_launched, s.hedge_wins, s.p50_latency_vms,
                s.p99_latency_vms, cell.cost.ToString(3).c_str(),
                s.hedge_cancelled_cost.ToString(3).c_str());
  }

  std::printf("\n== graceful degradation at 30%% endpoint faults ==\n");
  std::printf("(resilient stack behind the server: retry+backoff, breaker, "
              "fallback rung)\n\n");
  PrintHeader();
  for (double fault_rate : {0.0, 0.3}) {
    auto faulty = std::make_shared<llm::FaultInjectingLlm>(
        MakeEndpoint("sim-endpoint", 2000.0, 3),
        llm::FaultProfile::Uniform(fault_rate), 31);
    llm::ResilientLlm::Options resilience;
    resilience.retry.max_attempts = 3;
    resilience.retry.initial_backoff_ms = 25.0;
    resilience.seed = 9;
    auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);
    resilient->AddFallbackModel(MakeEndpoint("sim-fallback", 400.0, 4));
    serve::Server::Options options;
    options.worker_threads = 8;
    options.virtual_concurrency = static_cast<size_t>(kSlots);
    options.queue_depth = 32;
    options.shed_policy = serve::ShedPolicy::kQueueFull;
    auto cell = RunCell(options, resilient, nullptr, kRequests,
                        GapForLoad(1.0), 4.0 * kServiceVms);
    std::string label =
        common::StrFormat("faults=%.0f%%", 100.0 * fault_rate);
    PrintCell(label.c_str(), 1.0, cell);
  }

  std::printf(
      "\nreading: past saturation the unbounded queue's p99 grows with the "
      "backlog and its goodput\ncollapses to zero — every admitted request "
      "eventually misses its deadline in line. Bounding the\nqueue holds "
      "p99 near the depth x service product and keeps goodput at the "
      "capacity ceiling;\ndeadline-aware shedding additionally refuses the "
      "requests that could not have made it anyway.\nDeeper queues only "
      "stretch the tail: past ~2 service times of buffering, depth buys "
      "latency, not\nthroughput. Hedging trades a bounded premium "
      "(cancelled-attempt spend, booked separately from\nthe committed "
      "meter) for the timeout tail; at 30%% faults the resilient stack "
      "under the same\nadmission policy degrades by paying retry/fallback "
      "cost, not by losing requests.\n");

  RunPopulationCell(/*smoke=*/false);
  bool ok = RunQosIsolation(/*smoke=*/false, &prom);
  ok = RunBatchSmoke(/*smoke=*/false, &prom) && ok;
  ok = RunReconciliation(kRequests, &prom) && ok;
  ok = WriteMetricsFile(metrics_out, prom) && ok;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  llmdm::bench::BenchArgSpec spec;
  spec.accepts_qos_smoke = true;
  spec.accepts_batch_smoke = true;
  llmdm::bench::BenchArgs args;
  if (!llmdm::bench::ParseBenchArgs(argc, argv, spec, &args)) return 2;
  return main_impl(args.smoke, args.qos_smoke, args.batch_smoke,
                   args.metrics_out);
}
