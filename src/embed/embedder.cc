#include "embed/embedder.h"

#include <cmath>

#include "common/hash.h"
#include "text/tokenizer.h"
#include "vectordb/kernels.h"

namespace llmdm::embed {

// The three distance functions route through the dispatched kernels
// (vectordb/kernels.h). The kernels' lane-equivalent reduction contract makes
// the results bit-identical across scalar/AVX2/NEON, so similarity-threshold
// decisions (semantic cache, cascade gating) do not depend on the host ISA.

float CosineSimilarity(const Vector& a, const Vector& b) {
  size_t n = std::min(a.size(), b.size());
  float dot = vectordb::kernels::Dot(a.data(), b.data(), n);
  float na = vectordb::kernels::Dot(a.data(), a.data(), a.size());
  float nb = vectordb::kernels::Dot(b.data(), b.data(), b.size());
  if (na == 0 || nb == 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

float L2DistanceSquared(const Vector& a, const Vector& b) {
  size_t n = std::min(a.size(), b.size());
  float acc = vectordb::kernels::L2Sq(a.data(), b.data(), n);
  // Past the shorter vector, the missing elements are implicit zeros.
  acc += vectordb::kernels::Dot(a.data() + n, a.data() + n, a.size() - n);
  acc += vectordb::kernels::Dot(b.data() + n, b.data() + n, b.size() - n);
  return acc;
}

float DotProduct(const Vector& a, const Vector& b) {
  size_t n = std::min(a.size(), b.size());
  return vectordb::kernels::Dot(a.data(), b.data(), n);
}

void L2Normalize(Vector* v) {
  float norm = 0;
  for (float x : *v) norm += x * x;
  if (norm == 0) return;
  norm = std::sqrt(norm);
  for (float& x : *v) x /= norm;
}

Vector HashingEmbedder::Embed(std::string_view text) const {
  Vector v;
  EmbedInto(text, &v);
  return v;
}

void HashingEmbedder::EmbedInto(std::string_view text, Vector* out) const {
  out->resize(options_.dimension);
  EmbedInto(text, out->data());
}

void HashingEmbedder::EmbedInto(std::string_view text, float* out) const {
  float* const v = out;
  std::fill_n(v, options_.dimension, 0.0f);
  auto bucket_add = [&](uint64_t h, float weight) {
    size_t bucket = h % options_.dimension;
    // One independent bit decides the sign so that colliding features cancel
    // rather than pile up (standard signed feature hashing).
    float sign = ((h >> 61) & 1) ? 1.0f : -1.0f;
    v[bucket] += sign * weight;
  };
  auto fold = [](char c) {
    return static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(c)));
  };

  // Word features: hash-equivalent to Fnv1a("w:" + lowercased_piece, seed)
  // by seeding with the "w:" prefix and extending with case-folded bytes —
  // no per-feature string is ever built. Feature order (all word pieces,
  // then 3-grams, then 4-grams) matches the accumulation order the seed
  // implementation used, so the float sums are bit-identical.
  const uint64_t word_seed = common::Fnv1a("w:", options_.seed);
  text::Tokenizer::Options tok_options;
  tok_options.lowercase = true;  // folded below, byte by byte
  text::Tokenizer tokenizer(tok_options);
  tokenizer.VisitTokens(text, [&](std::string_view piece, bool /*is_word*/) {
    uint64_t h = word_seed;
    for (char c : piece) h = common::Fnv1aByte(h, fold(c));
    bucket_add(h, options_.word_weight);
  });

  // Character n-grams over the virtual padded sequence '^' + lower(text) +
  // '$' (what CharNgrams materializes), hashed window by window.
  const uint64_t gram_seed = common::Fnv1a("g:", options_.seed);
  const size_t padded_len = text.size() + 2;
  auto padded_at = [&](size_t i) -> unsigned char {
    if (i == 0) return '^';
    if (i + 1 == padded_len) return '$';
    return fold(text[i - 1]);
  };
  for (size_t n : {3u, 4u}) {
    if (padded_len < n) continue;
    for (size_t i = 0; i + n <= padded_len; ++i) {
      uint64_t h = gram_seed;
      for (size_t j = 0; j < n; ++j) h = common::Fnv1aByte(h, padded_at(i + j));
      bucket_add(h, 1.0f);
    }
  }
  // Normalize in place with the same sequential accumulation L2Normalize
  // performs, so this path stays bit-identical to Embed().
  float norm = 0;
  for (size_t i = 0; i < options_.dimension; ++i) norm += v[i] * v[i];
  if (norm == 0) return;
  norm = std::sqrt(norm);
  for (size_t i = 0; i < options_.dimension; ++i) v[i] /= norm;
}

float HashingEmbedder::Similarity(std::string_view a, std::string_view b) const {
  return CosineSimilarity(Embed(a), Embed(b));
}

}  // namespace llmdm::embed
