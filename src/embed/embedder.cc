#include "embed/embedder.h"

#include <cmath>

#include "common/hash.h"
#include "text/tokenizer.h"

namespace llmdm::embed {

float CosineSimilarity(const Vector& a, const Vector& b) {
  float dot = 0, na = 0, nb = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  for (size_t i = n; i < a.size(); ++i) na += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) nb += b[i] * b[i];
  if (na == 0 || nb == 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

float L2DistanceSquared(const Vector& a, const Vector& b) {
  float acc = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  for (size_t i = n; i < a.size(); ++i) acc += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) acc += b[i] * b[i];
  return acc;
}

float DotProduct(const Vector& a, const Vector& b) {
  float acc = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void L2Normalize(Vector* v) {
  float norm = 0;
  for (float x : *v) norm += x * x;
  if (norm == 0) return;
  norm = std::sqrt(norm);
  for (float& x : *v) x /= norm;
}

Vector HashingEmbedder::Embed(std::string_view text) const {
  Vector v(options_.dimension, 0.0f);
  auto add_feature = [&](std::string_view feature, float weight) {
    uint64_t h = common::Fnv1a(feature, options_.seed);
    size_t bucket = h % options_.dimension;
    // One independent bit decides the sign so that colliding features cancel
    // rather than pile up (standard signed feature hashing).
    float sign = ((h >> 61) & 1) ? 1.0f : -1.0f;
    v[bucket] += sign * weight;
  };

  text::Tokenizer::Options tok_options;
  tok_options.lowercase = true;
  text::Tokenizer tokenizer(tok_options);
  for (const std::string& token : tokenizer.Tokenize(text)) {
    add_feature("w:" + token, options_.word_weight);
  }
  for (size_t n : {3u, 4u}) {
    for (const std::string& gram : text::CharNgrams(text, n)) {
      add_feature("g:" + gram, 1.0f);
    }
  }
  L2Normalize(&v);
  return v;
}

float HashingEmbedder::Similarity(std::string_view a, std::string_view b) const {
  return CosineSimilarity(Embed(a), Embed(b));
}

}  // namespace llmdm::embed
