#ifndef LLMDM_EMBED_EMBEDDER_H_
#define LLMDM_EMBED_EMBEDDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace llmdm::embed {

using Vector = std::vector<float>;

/// Cosine similarity in [-1, 1]. Zero vectors yield 0.
float CosineSimilarity(const Vector& a, const Vector& b);

/// Squared Euclidean distance.
float L2DistanceSquared(const Vector& a, const Vector& b);

/// Dot product.
float DotProduct(const Vector& a, const Vector& b);

/// Normalizes to unit length in place (no-op on the zero vector).
void L2Normalize(Vector* v);

/// Deterministic text embedder: signed feature hashing of word tokens and
/// character 3/4-grams into a fixed-dimension space, L2-normalized.
///
/// This stands in for the learned embedding models the paper assumes
/// (Sec. II-D, III-B.2, III-C): what the vector database, semantic cache and
/// prompt store need from an embedder is that (a) paraphrases and
/// shared-subclause queries land near each other and (b) unrelated text lands
/// far away — character n-grams plus word features give exactly that for the
/// synthetic workloads, with zero model weights and full determinism.
class HashingEmbedder {
 public:
  struct Options {
    size_t dimension = 256;
    /// Weight of word-level features relative to character n-grams.
    float word_weight = 2.0f;
    /// Hash seed; two embedders with different seeds produce incompatible
    /// spaces (used in tests to verify space mismatch detection).
    uint64_t seed = 0x5EEDF00DULL;
  };

  HashingEmbedder() : HashingEmbedder(Options{}) {}
  explicit HashingEmbedder(const Options& options) : options_(options) {}

  size_t dimension() const { return options_.dimension; }

  /// Embeds text into a unit-length vector.
  Vector Embed(std::string_view text) const;

  /// Embed() into a caller-owned buffer, reusing its capacity: the hot-path
  /// variant for the sharded semantic cache and the perf bench, which embed
  /// per lookup. Produces bit-identical vectors to Embed() while allocating
  /// nothing beyond `out`'s (reused) storage: word pieces are hashed as
  /// string_views over the input with bytes case-folded on the fly, and
  /// character n-grams are hashed incrementally without materializing the
  /// padded string (see common::Fnv1aByte).
  void EmbedInto(std::string_view text, Vector* out) const;

  /// EmbedInto() against a raw buffer of dimension() floats — the batch
  /// variant for callers that embed many texts into one contiguous arena
  /// (SemanticCache::LookupBatch) without a Vector per query. Bit-identical
  /// to Embed().
  void EmbedInto(std::string_view text, float* out) const;

  /// Convenience: cosine similarity of two texts under this embedder.
  float Similarity(std::string_view a, std::string_view b) const;

 private:
  Options options_;
};

}  // namespace llmdm::embed

#endif  // LLMDM_EMBED_EMBEDDER_H_
