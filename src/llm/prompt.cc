#include "llm/prompt.h"

#include "text/tokenizer.h"

namespace llmdm::llm {

std::string Prompt::Render() const {
  std::string out;
  if (!system.empty()) {
    out += "[system] " + system + "\n";
  }
  if (!instructions.empty()) {
    out += "[task] " + instructions + "\n";
  }
  for (const FewShotExample& ex : examples) {
    out += "[example] input: " + ex.input + "\n[example] output: " + ex.output +
           "\n";
  }
  out += "[input] " + input + "\n";
  return out;
}

size_t Prompt::CountInputTokens() const { return text::CountTokens(Render()); }

Prompt MakePrompt(std::string task_tag, std::string input) {
  Prompt p;
  p.task_tag = std::move(task_tag);
  p.input = std::move(input);
  return p;
}

}  // namespace llmdm::llm
