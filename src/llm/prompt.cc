#include "llm/prompt.h"

#include "common/hash.h"
#include "text/tokenizer.h"

namespace llmdm::llm {

namespace {

// The prefix (everything before the "[input] " line) of Render(). Split out
// so token metering can count it once per distinct prefix (see
// CountInputTokens) instead of re-rendering it on every metered call.
std::string RenderPrefix(const Prompt& p) {
  std::string out;
  if (!p.system.empty()) {
    out += "[system] " + p.system + "\n";
  }
  if (!p.instructions.empty()) {
    out += "[task] " + p.instructions + "\n";
  }
  for (const FewShotExample& ex : p.examples) {
    out += "[example] input: " + ex.input + "\n[example] output: " + ex.output +
           "\n";
  }
  return out;
}

}  // namespace

std::string Prompt::Render() const {
  std::string out = RenderPrefix(*this);
  out += "[input] " + input + "\n";
  return out;
}

size_t Prompt::CountInputTokens() const {
  // The tokenizer splits at whitespace and every rendered section ends in
  // '\n', so section counts are additive: count(prefix + input line) ==
  // count(prefix) + count(input line). The prefix (system + instructions +
  // few-shot examples) is identical across the calls a metered workload
  // makes, so its count is memoized under a hash of the parts — each part
  // hashed with a field separator so distinct part boundaries cannot alias.
  uint64_t key = common::Fnv1a(system);
  key = common::Fnv1aByte(key, 0x1F);
  key = common::Fnv1a(instructions, key);
  key = common::Fnv1aByte(key, 0x1F);
  for (const FewShotExample& ex : examples) {
    key = common::Fnv1a(ex.input, key);
    key = common::Fnv1aByte(key, 0x1F);
    key = common::Fnv1a(ex.output, key);
    key = common::Fnv1aByte(key, 0x1F);
  }
  size_t prefix_tokens;
  if (auto cached = text::LookupTokenCount(key); cached.has_value()) {
    prefix_tokens = *cached;
  } else {
    prefix_tokens = text::CountTokens(RenderPrefix(*this));
    text::StoreTokenCount(key, prefix_tokens);
  }
  // "[input] " contributes a fixed token count ('[', "input", ']'), and the
  // surrounding space/newline contribute none.
  static const size_t kInputMarkTokens = text::CountTokens("[input]");
  return prefix_tokens + kInputMarkTokens + text::CountTokens(input);
}

Prompt MakePrompt(std::string task_tag, std::string input) {
  Prompt p;
  p.task_tag = std::move(task_tag);
  p.input = std::move(input);
  return p;
}

}  // namespace llmdm::llm
