#include "llm/model.h"

#include "llm/deadline.h"

namespace llmdm::llm {

common::Result<Completion> LlmModel::CompleteMetered(const Prompt& prompt,
                                                     UsageMeter* meter) {
  // The request's budget is enforced here, at the call boundary, so every
  // layer stacked above (cascade rungs, pipeline stages, retries) fails fast
  // once the request is out of time instead of starting doomed work.
  if (prompt.deadline != nullptr && prompt.deadline->Exhausted()) {
    return common::Status::Timeout("request deadline exhausted before call to " +
                                   name());
  }
  auto result = Complete(prompt);
  if (result.ok()) {
    if (meter != nullptr) {
      meter->Record(result->model, result->input_tokens, result->output_tokens,
                    result->cost, result->latency_ms);
    }
    if (prompt.deadline != nullptr) prompt.deadline->Charge(result->latency_ms);
  }
  return result;
}

std::vector<common::Result<Completion>> LlmModel::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  // Base endpoints have no prefix sharing to exploit: a batch is the same
  // calls back to back, with the same per-prompt deadline enforcement as
  // CompleteMetered (metering stays with the caller — see header).
  std::vector<common::Result<Completion>> out;
  out.reserve(prompts.size());
  for (const Prompt& prompt : prompts) {
    out.push_back(CompleteMetered(prompt, nullptr));
  }
  return out;
}

std::vector<ModelSpec> PaperModelSpecs() {
  // Cached-input (KV-hit prefix) tokens bill at 10% of the list input price,
  // the discount tier providers quote for prompt caching. Only the batched
  // path consults it, so the single-call tables are unaffected.
  std::vector<ModelSpec> specs(3);
  specs[0].name = "sim-babbage-002";
  specs[0].capability = 0.35;
  specs[0].input_price_per_1k = common::Money::FromDollars(0.0004);
  specs[0].output_price_per_1k = common::Money::FromDollars(0.0004);
  specs[0].cached_input_price_per_1k = common::Money::FromDollars(0.00004);
  specs[0].latency_ms_per_1k_tokens = 150.0;

  specs[1].name = "sim-gpt-3.5-turbo";
  specs[1].capability = 0.72;
  specs[1].input_price_per_1k = common::Money::FromDollars(0.001);
  specs[1].output_price_per_1k = common::Money::FromDollars(0.002);
  specs[1].cached_input_price_per_1k = common::Money::FromDollars(0.0001);
  specs[1].latency_ms_per_1k_tokens = 400.0;

  specs[2].name = "sim-gpt-4";
  specs[2].capability = 0.95;
  specs[2].input_price_per_1k = common::Money::FromDollars(0.03);
  specs[2].output_price_per_1k = common::Money::FromDollars(0.06);
  specs[2].cached_input_price_per_1k = common::Money::FromDollars(0.003);
  specs[2].latency_ms_per_1k_tokens = 1200.0;
  return specs;
}

}  // namespace llmdm::llm
