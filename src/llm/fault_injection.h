#ifndef LLMDM_LLM_FAULT_INJECTION_H_
#define LLMDM_LLM_FAULT_INJECTION_H_

#include <map>
#include <memory>
#include <mutex>

#include "llm/model.h"

namespace llmdm::llm {

/// Per-fault-kind injection rates, each in [0,1] and summing to <= 1.
/// Transport faults reject the call with a transient Status before any
/// tokens are billed; semantic faults (truncate/garble) complete the call —
/// and bill it — but damage the text, which is how real endpoints fail under
/// load ("you paid for a useless answer").
struct FaultProfile {
  double rate_limit = 0.0;   // -> StatusCode::kRateLimited
  double timeout = 0.0;      // -> StatusCode::kTimeout
  double unavailable = 0.0;  // -> StatusCode::kUnavailable
  double truncate = 0.0;     // completion cut short, Completion::truncated set
  double garble = 0.0;       // characters corrupted, invisible to the client

  double total() const {
    return rate_limit + timeout + unavailable + truncate + garble;
  }

  /// Splits one per-call fault rate across the kinds with the mix observed
  /// in production LLM traffic: mostly rate limits and timeouts, a smaller
  /// tail of outages and damaged completions.
  static FaultProfile Uniform(double per_call_rate);
};

/// Counts of injected faults, for bench output and rate assertions.
struct FaultStats {
  size_t calls = 0;
  size_t rate_limited = 0;
  size_t timeouts = 0;
  size_t unavailable = 0;
  size_t truncated = 0;
  size_t garbled = 0;
  size_t injected() const {
    return rate_limited + timeouts + unavailable + truncated + garbled;
  }
};

/// LlmModel decorator that deterministically injects faults. The draw for a
/// call is hashed from (seed, model, prompt input+instructions, sample salt,
/// attempt#), where attempt# counts how often this exact prompt has been
/// seen — so a retry of a failed call is an independent draw (it can
/// succeed), yet two runs with the same seed produce byte-identical fault
/// schedules. Deterministic in the same sense as SimulatedLlm.
///
/// Thread-safe: the attempt counters and stats are mutex-guarded. Note that
/// when several threads retry the *same* prompt concurrently, which thread
/// gets attempt #k is scheduling-dependent; workloads that need per-request
/// reproducibility under threads keep prompts distinct per request (the
/// serve bench salts every request's prompt with its id).
class FaultInjectingLlm : public LlmModel {
 public:
  FaultInjectingLlm(std::shared_ptr<LlmModel> inner, FaultProfile profile,
                    uint64_t seed)
      : inner_(std::move(inner)), profile_(profile), seed_(seed) {}

  const ModelSpec& spec() const override { return inner_->spec(); }

  common::Result<Completion> Complete(const Prompt& prompt) override;

  FaultStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const FaultProfile& profile() const { return profile_; }

  /// Forgets the per-prompt attempt counters (and stats), so a fresh
  /// benchmark pass replays the identical fault schedule.
  void ResetSchedule();

 private:
  std::shared_ptr<LlmModel> inner_;
  FaultProfile profile_;
  uint64_t seed_;
  mutable std::mutex mu_;  // guards stats_ and attempts_
  FaultStats stats_;
  std::map<uint64_t, uint64_t> attempts_;  // prompt key -> times seen
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_FAULT_INJECTION_H_
