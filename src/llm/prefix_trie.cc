#include "llm/prefix_trie.h"

#include <algorithm>

namespace llmdm::llm {

namespace {
size_t CommonPrefixLen(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}
}  // namespace

size_t PrefixTrie::Insert(std::string_view s) {
  // lower_bound gives the first member >= s: the successor. Its predecessor
  // is the greatest member < s. The longest shared prefix over the whole set
  // is attained at one of these two neighbours (see class comment).
  auto succ = strings_.lower_bound(s);
  size_t shared = 0;
  if (succ != strings_.end()) {
    shared = CommonPrefixLen(s, *succ);
    if (*succ == s) return s.size();  // exact duplicate: full prefix reuse
  }
  if (succ != strings_.begin()) {
    shared = std::max(shared, CommonPrefixLen(s, *std::prev(succ)));
  }
  strings_.emplace_hint(succ, s);
  return shared;
}

}  // namespace llmdm::llm
