#include "llm/fault_injection.h"

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace llmdm::llm {

FaultProfile FaultProfile::Uniform(double per_call_rate) {
  FaultProfile p;
  p.rate_limit = 0.35 * per_call_rate;
  p.timeout = 0.25 * per_call_rate;
  p.unavailable = 0.20 * per_call_rate;
  p.truncate = 0.10 * per_call_rate;
  p.garble = 0.10 * per_call_rate;
  return p;
}

void FaultInjectingLlm::ResetSchedule() {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.clear();
  stats_ = FaultStats{};
}

common::Result<Completion> FaultInjectingLlm::Complete(const Prompt& prompt) {
  uint64_t key = common::HashCombine(
      common::Fnv1a(prompt.input, seed_),
      common::HashCombine(common::Fnv1a(prompt.instructions),
                          prompt.sample_salt));
  uint64_t attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[key]++;
    ++stats_.calls;
  }
  uint64_t h = common::HashCombine(common::Fnv1a(spec().name, seed_),
                                   common::HashCombine(key, attempt + 1));
  double u = common::HashToUnit(h);
  auto bump = [this](size_t FaultStats::* counter) {
    std::lock_guard<std::mutex> lock(mu_);
    ++(stats_.*counter);
  };

  double edge = profile_.rate_limit;
  if (u < edge) {
    bump(&FaultStats::rate_limited);
    return common::Status::RateLimited(common::StrFormat(
        "injected 429 for %s (attempt %llu)", spec().name.c_str(),
        (unsigned long long)attempt));
  }
  edge += profile_.timeout;
  if (u < edge) {
    bump(&FaultStats::timeouts);
    return common::Status::Timeout(common::StrFormat(
        "injected timeout for %s (attempt %llu)", spec().name.c_str(),
        (unsigned long long)attempt));
  }
  edge += profile_.unavailable;
  if (u < edge) {
    bump(&FaultStats::unavailable);
    return common::Status::Unavailable(common::StrFormat(
        "injected 503 for %s (attempt %llu)", spec().name.c_str(),
        (unsigned long long)attempt));
  }

  LLMDM_ASSIGN_OR_RETURN(Completion c, inner_->Complete(prompt));

  edge += profile_.truncate;
  if (u < edge) {
    // Cut the completion mid-stream. The tokens were generated and billed;
    // the truncated flag is the client-visible finish_reason analogue.
    bump(&FaultStats::truncated);
    c.text = c.text.substr(0, c.text.size() / 2);
    c.truncated = true;
    return c;
  }
  edge += profile_.garble;
  if (u < edge) {
    // Corrupt a few characters deterministically. Unlike truncation this is
    // invisible to the client: only semantic checks (voting, validators)
    // can catch it.
    bump(&FaultStats::garbled);
    common::Rng rng(h);
    for (size_t i = 0; i < c.text.size(); ++i) {
      if (rng.Bernoulli(0.25)) {
        c.text[i] = static_cast<char>('a' + rng.NextBelow(26));
      }
    }
    return c;
  }
  return c;
}

}  // namespace llmdm::llm
