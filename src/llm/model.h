#ifndef LLMDM_LLM_MODEL_H_
#define LLMDM_LLM_MODEL_H_

#include <string>
#include <vector>

#include "common/money.h"
#include "common/result.h"
#include "llm/prompt.h"
#include "llm/usage.h"

namespace llmdm::llm {

/// Static description of a model tier: how capable it is and what it costs.
/// The prices of the paper's three tiers (Sec. III-B.1 quotes GPT-3.5-Turbo
/// at $0.001/1k input tokens and GPT-4 at $0.03/1k) are reproduced in
/// PaperModelSpecs().
struct ModelSpec {
  std::string name;
  /// Abstract capability in [0,1]; drives the simulated accuracy curve
  /// (see skills.h for the capability->accuracy mapping).
  double capability = 0.5;
  common::Money input_price_per_1k;
  common::Money output_price_per_1k;
  /// Discounted input price for prompt-prefix tokens already resident in the
  /// serving engine's KV cache (the "cached input" tier real providers bill
  /// at ~10% of list). Only consulted on the batched path
  /// (LlmModel::CompleteBatch), where a prefix trie identifies tokens an
  /// earlier batch member has already prefilled. Zero (the default) disables
  /// the discount: cached tokens bill at the list input price and the
  /// single-call cost model is unchanged.
  common::Money cached_input_price_per_1k;
  /// Simulated wall-clock per 1k tokens processed (bigger models are slower).
  double latency_ms_per_1k_tokens = 500.0;
};

/// One completion returned by a model.
struct Completion {
  std::string text;
  /// The model's own estimate that `text` is correct, in [0,1]. Real systems
  /// derive this from logprobs; cascades (Fig. 6) consume it.
  double confidence = 0.5;
  size_t input_tokens = 0;
  size_t output_tokens = 0;
  /// Of input_tokens, how many were served from a shared-prefix KV cache and
  /// billed at ModelSpec::cached_input_price_per_1k instead of list. Only
  /// nonzero on the batched path; `cost` already reflects the discount.
  size_t prefix_cached_tokens = 0;
  common::Money cost;
  double latency_ms = 0.0;
  std::string model;
  /// True when the completion was cut off before finishing (the simulator's
  /// analogue of finish_reason == "length"/"content_filter"). Unlike garbled
  /// text, truncation is visible to the client, so retry layers act on it.
  bool truncated = false;
};

/// Abstract LLM endpoint. The library is written against this interface so a
/// real HTTP-backed client could be dropped in; this repo ships SimulatedLlm.
class LlmModel {
 public:
  virtual ~LlmModel() = default;

  virtual const ModelSpec& spec() const = 0;
  const std::string& name() const { return spec().name; }

  virtual common::Result<Completion> Complete(const Prompt& prompt) = 0;

  /// Complete() plus usage metering (meter may be null). Virtual so
  /// decorators that make several inner calls per logical completion
  /// (retries, fallbacks) can meter every attempt into the same ledger.
  virtual common::Result<Completion> CompleteMetered(const Prompt& prompt,
                                                     UsageMeter* meter);

  /// One model invocation per prompt, executed as a batch: endpoints that
  /// model KV-cache prefix reuse (SimulatedLlm) price the longest prompt
  /// prefix shared with an earlier batch member once, at
  /// ModelSpec::cached_input_price_per_1k, and skip its prefill latency —
  /// setting Completion::prefix_cached_tokens and discounting
  /// Completion::cost accordingly. The base implementation is a plain loop
  /// (no sharing). Per-prompt deadlines are checked before and charged after
  /// each member's call, exactly as in CompleteMetered; results are
  /// positionally aligned with `prompts`. Deliberately unmetered: the serve
  /// layer meters each member into its own scratch ledger so hedging's
  /// winner-commit accounting keeps working per request.
  virtual std::vector<common::Result<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts);
};

/// The three model tiers the paper benchmarks (Table I): sim-babbage-002,
/// sim-gpt-3.5-turbo, sim-gpt-4, with the paper's quoted prices.
std::vector<ModelSpec> PaperModelSpecs();

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_MODEL_H_
