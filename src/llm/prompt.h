#ifndef LLMDM_LLM_PROMPT_H_
#define LLMDM_LLM_PROMPT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace llmdm::obs {
class TraceContext;  // see obs/trace.h
struct Span;
}  // namespace llmdm::obs

namespace llmdm::llm {

class Deadline;  // see llm/deadline.h

/// One in-context example ("few-shot" demonstration).
struct FewShotExample {
  std::string input;
  std::string output;

  bool operator==(const FewShotExample&) const = default;
};

/// A structured prompt. The structure mirrors how real LLM applications
/// assemble prompts (system + task instructions + demonstrations + input);
/// keeping the parts separate is what lets the query-combination optimizer
/// deduplicate shared examples (Sec. III-B.1) and lets cost metering count
/// exactly the tokens that would be billed.
struct Prompt {
  /// Routes the simulated model to a task skill ("qa", "nl2sql",
  /// "tabular_predict", "tabular_generate", "sql2nl", "freeform", ...). A
  /// hosted LLM infers the task from the text; the simulator makes the task
  /// explicit so that behaviour is deterministic and testable.
  std::string task_tag = "freeform";

  std::string system;
  std::string instructions;
  std::vector<FewShotExample> examples;
  std::string input;

  /// Sampling salt: completions with different salts are independent draws
  /// (the simulator's analogue of temperature>0 sampling), which is what
  /// self-consistency confidence estimation needs.
  uint64_t sample_salt = 0;

  /// Optional shared budget of simulated milliseconds for the *whole*
  /// request this prompt belongs to. Charged at the model-call boundary
  /// (LlmModel::CompleteMetered, plus ResilientLlm's backoff waits); layers
  /// that fan one request into many calls — cascades, pipelines — check it
  /// between calls so an up-front deadline bounds the end-to-end request
  /// rather than resetting per call. Null means unbounded. Not part of the
  /// rendered prompt: it never reaches the (simulated) wire.
  std::shared_ptr<Deadline> deadline;

  /// Tenant on whose behalf this call is made, propagated from the serving
  /// layer (serve::Request::tenant) so billing/quota layers below the
  /// scheduler can attribute spend. Like `deadline` and `trace` it is
  /// request metadata, not prompt content: it never reaches the (simulated)
  /// wire and does not affect the rendered text or token count.
  std::string tenant_id;

  /// Optional span tree for the request this prompt belongs to, created
  /// where the request enters the system (like `deadline`). Layers that do
  /// interesting work on the way to the model — retries, cache probes,
  /// cascade rungs — hang child spans under `trace_parent` (the enclosing
  /// span; the trace root when null). Null means no tracing. Not part of
  /// the rendered prompt: it never reaches the (simulated) wire.
  std::shared_ptr<obs::TraceContext> trace;
  obs::Span* trace_parent = nullptr;

  /// Full prompt text as it would be sent over the wire.
  std::string Render() const;

  /// Token count of Render() (the billed input size).
  size_t CountInputTokens() const;
};

/// Builder-style convenience for one-liner prompt construction.
Prompt MakePrompt(std::string task_tag, std::string input);

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_PROMPT_H_
