#ifndef LLMDM_LLM_RESILIENT_H_
#define LLMDM_LLM_RESILIENT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "llm/model.h"
#include "obs/metrics.h"

namespace llmdm::llm {

/// Closed -> open -> half-open breaker over a rolling outcome window.
/// Time is the caller's *simulated* clock (accumulated completion latency and
/// backoff waits), so breaker behaviour is exactly reproducible.
///
/// Thread-safe: one breaker instance guards one endpoint for every thread in
/// the serving layer — a breaker that only some threads observed open would
/// not shed anything. All methods take the internal mutex.
class CircuitBreaker {
 public:
  struct Options {
    size_t window = 16;              // rolling outcomes considered
    size_t min_samples = 8;          // don't judge before this many outcomes
    double failure_threshold = 0.5;  // open at >= this failure rate
    double open_cooldown_ms = 2000.0;
    size_t half_open_successes = 2;  // probes needed to close again
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const Options& options) : options_(options) {}

  /// False while open (and still cooling down). Transitions open->half-open
  /// once the cooldown has elapsed on the simulated clock.
  bool Allow(double now_ms);
  void RecordSuccess(double now_ms);
  void RecordFailure(double now_ms);

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  size_t times_opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_opened_;
  }

 private:
  void Open(double now_ms);          // requires mu_
  double FailureRate() const;        // requires mu_

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::deque<bool> outcomes_;  // true = failure
  double opened_at_ms_ = 0.0;
  size_t half_open_successes_ = 0;
  size_t times_opened_ = 0;
};

/// LlmModel decorator that makes a flaky endpoint dependable:
///  - retries transient errors (and detectable truncation) with exponential
///    backoff and deterministic jitter hashed from (seed, prompt, attempt);
///  - enforces a per-call deadline budget against the *simulated* latency
///    (ModelSpec::latency_ms_per_1k_tokens accumulated into
///    Completion::latency_ms plus backoff waits), surfacing kTimeout; when
///    the prompt carries a request-wide llm::Deadline, the tighter of the
///    two budgets wins and the request budget is charged for waits;
///  - trips a per-model CircuitBreaker so a hard-down endpoint stops eating
///    retry budget;
///  - degrades gracefully through a FallbackChain: cheaper model rungs
///    first, then an optional stale-cache lookup, before giving up.
/// Every attempt's token spend — including discarded retries and fallback
/// calls — is metered into the caller's UsageMeter, with RetryStats
/// itemizing what the resilience machinery cost.
///
/// Thread-safe: many serving threads share one ResilientLlm. Per-call state
/// (elapsed time, attempt counts) lives on the stack; the shared breaker and
/// lifetime stats are internally locked. Jitter is a pure hash of
/// (seed, prompt, attempt) rather than a shared RNG stream, so the backoff
/// schedule of a given call does not depend on which other calls are in
/// flight — the property that keeps threaded runs reproducible.
class ResilientLlm : public LlmModel {
 public:
  struct RetryPolicy {
    size_t max_attempts = 4;
    double initial_backoff_ms = 100.0;
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 4000.0;
    /// Backoff is stretched by up to this fraction, uniform from the seed.
    double jitter = 0.25;
    bool retry_on_truncation = true;
  };

  struct Options {
    RetryPolicy retry;
    CircuitBreaker::Options breaker;
    /// Per-logical-call budget over simulated latency + backoff.
    double call_deadline_ms = 20000.0;
    /// Simulated wall time burned when the endpoint times out (a real
    /// client waits out its socket timeout before retrying).
    double timeout_wait_ms = 1000.0;
    uint64_t seed = 0;
    /// Metrics registry for the decorator's instruments (labelled
    /// model=<inner model name>). Null gives this instance a private
    /// registry, keeping stats() per-instance; inject one to aggregate a
    /// stack (two ResilientLlm over the same model name would then share
    /// series).
    obs::Registry* registry = nullptr;
  };

  /// Last-resort lookup (e.g. a stale SemanticCache hit); returns a
  /// completion served without touching any endpoint.
  using CacheFallback = std::function<std::optional<Completion>(const Prompt&)>;

  ResilientLlm(std::shared_ptr<LlmModel> inner, const Options& options)
      : inner_(std::move(inner)), options_(options), breaker_(options.breaker) {
    if (options_.registry != nullptr) {
      registry_ = options_.registry;
    } else {
      owned_registry_ = std::make_unique<obs::Registry>();
      registry_ = owned_registry_.get();
    }
    const obs::Labels labels{{"model", inner_->spec().name}};
    metrics_.attempts =
        registry_->GetCounter("llmdm_llm_attempts_total", labels);
    metrics_.retries = registry_->GetCounter("llmdm_llm_retries_total", labels);
    metrics_.transient_errors =
        registry_->GetCounter("llmdm_llm_transient_errors_total", labels);
    metrics_.fallbacks =
        registry_->GetCounter("llmdm_llm_fallbacks_total", labels);
    metrics_.stale_serves =
        registry_->GetCounter("llmdm_llm_stale_serves_total", labels);
    metrics_.circuit_opens =
        registry_->GetCounter("llmdm_llm_circuit_opens_total", labels);
    metrics_.circuit_rejections =
        registry_->GetCounter("llmdm_llm_circuit_rejections_total", labels);
    metrics_.deadline_exceeded =
        registry_->GetCounter("llmdm_llm_deadline_exceeded_total", labels);
    metrics_.breaker_state =
        registry_->GetGauge("llmdm_llm_breaker_state", labels);
  }

  const ModelSpec& spec() const override { return inner_->spec(); }

  /// Appends a cheaper rung to the fallback chain (tried in insertion
  /// order once the primary's retries are exhausted or its circuit is open).
  /// Not thread-safe: configure the chain before serving traffic.
  void AddFallbackModel(std::shared_ptr<LlmModel> model) {
    fallbacks_.push_back(std::move(model));
  }
  void set_cache_fallback(CacheFallback fallback) {
    cache_fallback_ = std::move(fallback);
  }

  common::Result<Completion> Complete(const Prompt& prompt) override {
    return CompleteMetered(prompt, nullptr);
  }
  common::Result<Completion> CompleteMetered(const Prompt& prompt,
                                             UsageMeter* meter) override;

  /// Lifetime retry accounting across all calls through this decorator — a
  /// view over the registry counters, so the legacy struct and a registry
  /// export always agree.
  UsageMeter::RetryStats stats() const {
    UsageMeter::RetryStats s;
    s.attempts = metrics_.attempts->value();
    s.retries = metrics_.retries->value();
    s.transient_errors = metrics_.transient_errors->value();
    s.fallbacks = metrics_.fallbacks->value();
    s.stale_serves = metrics_.stale_serves->value();
    s.circuit_opens = metrics_.circuit_opens->value();
    s.circuit_rejections = metrics_.circuit_rejections->value();
    s.deadline_exceeded = metrics_.deadline_exceeded->value();
    return s;
  }
  /// The registry holding this decorator's instruments.
  obs::Registry* registry() const { return registry_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Simulated milliseconds elapsed across all calls (latency + waits).
  /// Under concurrency this is total busy time, not a wall clock: calls in
  /// flight at once each contribute their full elapsed time.
  double clock_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return clock_ms_;
  }

 private:
  struct Metrics {
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* transient_errors = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* stale_serves = nullptr;
    obs::Counter* circuit_opens = nullptr;
    obs::Counter* circuit_rejections = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    /// 0 = closed, 1 = half-open, 2 = open (sampled after each call).
    obs::Gauge* breaker_state = nullptr;
  };

  /// Deterministic jitter draw in [0,1) for (this call's prompt, attempt#).
  double JitterUnit(const Prompt& prompt, size_t attempt) const;

  std::shared_ptr<LlmModel> inner_;
  Options options_;
  CircuitBreaker breaker_;
  std::vector<std::shared_ptr<LlmModel>> fallbacks_;
  CacheFallback cache_fallback_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;
  mutable std::mutex mu_;  // guards clock_ms_
  double clock_ms_ = 0.0;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_RESILIENT_H_
