#include "llm/skills.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "data/tabular_gen.h"
#include "text/tokenizer.h"

#include "common/string_util.h"
#include "sql/parser.h"

namespace llmdm::llm {
namespace {

// Confidence = truth probability plus self-assessment noise. Models know
// roughly, not exactly, how likely they are to be right.
double NoisyConfidence(double p_correct, common::Rng* rng) {
  double conf = p_correct + rng->Normal(0.0, 0.07);
  return std::clamp(conf, 0.02, 0.99);
}

// Parses "key is value; key is value; ..." into ordered (key, value) pairs.
std::vector<std::pair<std::string, std::string>> ParseSerializedRow(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& part : common::Split(std::string(text), ';')) {
    std::string_view trimmed = common::Trim(part);
    size_t pos = trimmed.find(" is ");
    if (pos == std::string_view::npos) continue;
    out.emplace_back(std::string(trimmed.substr(0, pos)),
                     std::string(common::Trim(trimmed.substr(pos + 4))));
  }
  return out;
}

}  // namespace

double CorrectnessProbability(double capability, double difficulty) {
  double p = 1.0 / (1.0 + std::exp(-6.0 * (capability - difficulty)));
  return std::clamp(p, 0.02, 0.995);
}

// ---- QaSkill -----------------------------------------------------------------

common::Result<SkillOutput> QaSkill::Run(const Prompt& prompt,
                                         SkillContext& ctx) {
  auto parsed = data::ParseChainQuestion(prompt.input);
  if (!parsed.ok()) {
    return SkillOutput{"I cannot answer that question.", 0.05};
  }
  const auto& [chain, subject] = *parsed;
  auto truth = kb_->AnswerChain(chain, subject);
  if (!truth.ok()) {
    return SkillOutput{"I cannot answer that question.", 0.05};
  }
  // 1 hop ~ easy, 3 hops ~ hard; a few relevant examples shave difficulty.
  double difficulty = 0.25 + 0.28 * (static_cast<double>(chain.size()) - 1.0);
  difficulty -=
      0.02 * static_cast<double>(std::min<size_t>(prompt.examples.size(), 3));
  double p = CorrectnessProbability(ctx.capability, difficulty);
  if (ctx.rng->Bernoulli(p)) {
    return SkillOutput{*truth, NoisyConfidence(p, ctx.rng)};
  }
  // Plausible wrong answer: some other entity in the same universe.
  const auto& entities = kb_->entities();
  std::string wrong = entities[ctx.rng->NextBelow(entities.size())];
  if (wrong == *truth && entities.size() > 1) {
    wrong = entities[(ctx.rng->NextBelow(entities.size() - 1) + 1) %
                     entities.size()];
  }
  return SkillOutput{wrong, NoisyConfidence(p, ctx.rng)};
}

// ---- Nl2SqlSkill --------------------------------------------------------------

common::Result<SkillOutput> Nl2SqlSkill::Run(const Prompt& prompt,
                                             SkillContext& ctx) {
  auto parsed = data::ParseNl2SqlQuestion(prompt.input);
  if (!parsed.ok()) {
    return SkillOutput{"-- cannot translate this question", 0.05};
  }
  data::Nl2SqlQuery query = *parsed;

  // Example quality matters both ways: a relevant example with well-formed
  // SQL output helps; an example demonstrating broken SQL actively misleads
  // (real LLMs imitate their demonstrations, junk included).
  int relevant = 0, misleading = 0;
  for (const FewShotExample& ex : prompt.examples) {
    if (!data::ParseNl2SqlQuestion(ex.input).ok()) continue;
    if (sql::ParseStatement(ex.output).ok()) {
      ++relevant;
    } else {
      ++misleading;
    }
  }
  double difficulty =
      options_.base_difficulty +
      options_.per_complexity * static_cast<double>(query.Complexity());
  difficulty -= options_.example_bonus * std::min(relevant, 3);
  difficulty += options_.example_bonus * std::min(misleading, 3);
  double p = CorrectnessProbability(ctx.capability, difficulty);
  if (ctx.rng->Bernoulli(p)) {
    return SkillOutput{query.ToGoldSql(), NoisyConfidence(p, ctx.rng)};
  }

  // Corrupt the *semantics*, then re-render: the output is usually valid SQL
  // that returns the wrong rows (the realistic NL2SQL failure mode).
  double mode = ctx.rng->UniformDouble();
  if (mode < 0.35) {
    query.first.year += ctx.rng->Bernoulli(0.5) ? 1 : -1;
  } else if (mode < 0.60) {
    query.first.event = query.first.event == data::EventKind::kConcert
                            ? data::EventKind::kSportsMeeting
                            : data::EventKind::kConcert;
  } else if (mode < 0.80 && query.second.has_value()) {
    query.combiner = query.combiner == data::Combiner::kOr
                         ? data::Combiner::kAnd
                         : data::Combiner::kOr;
  } else if (mode < 0.90 && query.second.has_value()) {
    query.second.reset();
    query.combiner = data::Combiner::kNone;
  } else {
    // Outright syntax damage.
    std::string broken = query.ToGoldSql();
    broken = common::ReplaceAll(broken, "SELECT", "SELEC");
    return SkillOutput{broken, NoisyConfidence(p, ctx.rng)};
  }
  return SkillOutput{query.ToGoldSql(), NoisyConfidence(p, ctx.rng)};
}

// ---- Nl2TxnSkill ----------------------------------------------------------------

common::Result<SkillOutput> Nl2TxnSkill::Run(const Prompt& prompt,
                                             SkillContext& ctx) {
  auto parsed = data::ParseTxnRequest(prompt.input);
  if (!parsed.ok()) {
    return SkillOutput{"-- cannot translate this request", 0.05};
  }
  data::TxnRequest request = *parsed;
  double difficulty =
      0.15 + 0.15 * static_cast<double>(request.transfers.size());
  double p = CorrectnessProbability(ctx.capability, difficulty);
  bool correct = ctx.rng->Bernoulli(p);
  if (!correct) {
    double mode = ctx.rng->UniformDouble();
    size_t victim = ctx.rng->NextBelow(request.transfers.size());
    if (mode < 0.4) {
      request.transfers[victim].amount *= 10;  // fat-finger the amount
    } else if (mode < 0.7) {
      std::swap(request.transfers[victim].from,
                request.transfers[victim].to);  // reverse the direction
    } else if (request.transfers.size() > 1) {
      request.transfers.erase(request.transfers.begin() +
                              static_cast<long>(victim));  // forget a step
    } else {
      request.transfers[victim].amount += 1;
    }
  }
  std::vector<std::string> statements = data::TxnToSql(request);
  return SkillOutput{common::Join(statements, ";\n"),
                     NoisyConfidence(p, ctx.rng)};
}

// ---- TabularPredictSkill -------------------------------------------------------

common::Result<SkillOutput> TabularPredictSkill::Run(const Prompt& prompt,
                                                     SkillContext& ctx) {
  if (prompt.examples.empty()) {
    return SkillOutput{"unknown", 0.05};
  }
  auto target = ParseSerializedRow(prompt.input);
  if (target.empty()) {
    return SkillOutput{"unknown", 0.05};
  }

  // Per-key scale for numeric distance normalization.
  std::map<std::string, std::pair<double, double>> min_max;
  struct ParsedExample {
    std::vector<std::pair<std::string, std::string>> row;
    std::string output;
  };
  std::vector<ParsedExample> parsed;
  for (const FewShotExample& ex : prompt.examples) {
    parsed.push_back({ParseSerializedRow(ex.input), ex.output});
    for (const auto& [k, v] : parsed.back().row) {
      double num;
      if (common::ParseDouble(v, &num)) {
        auto it = min_max.find(k);
        if (it == min_max.end()) {
          min_max[k] = {num, num};
        } else {
          it->second.first = std::min(it->second.first, num);
          it->second.second = std::max(it->second.second, num);
        }
      }
    }
  }

  auto distance = [&](const std::vector<std::pair<std::string, std::string>>& a,
                      const std::vector<std::pair<std::string, std::string>>& b) {
    double acc = 0;
    int shared = 0;
    for (const auto& [k, va] : a) {
      for (const auto& [k2, vb] : b) {
        if (k != k2) continue;
        ++shared;
        double na, nb;
        if (common::ParseDouble(va, &na) && common::ParseDouble(vb, &nb)) {
          auto it = min_max.find(k);
          double span = 1.0;
          if (it != min_max.end()) {
            span = std::max(it->second.second - it->second.first, 1e-9);
          }
          acc += std::abs(na - nb) / span;
        } else {
          acc += (va == vb) ? 0.0 : 1.0;
        }
      }
    }
    return shared == 0 ? 1e9 : acc / shared;
  };

  // k-NN over the examples (k = 3).
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < parsed.size(); ++i) {
    ranked.emplace_back(distance(target, parsed[i].row), i);
  }
  std::sort(ranked.begin(), ranked.end());
  size_t k = std::min<size_t>(3, ranked.size());

  // Numeric target if every example output parses as a number.
  bool numeric_output = true;
  for (const auto& ex : parsed) {
    double v;
    numeric_output = numeric_output && common::ParseDouble(ex.output, &v);
  }

  std::string prediction;
  if (numeric_output) {
    double wsum = 0, acc = 0;
    for (size_t i = 0; i < k; ++i) {
      double w = 1.0 / (ranked[i].first + 1e-3);
      double v = 0;
      common::ParseDouble(parsed[ranked[i].second].output, &v);
      acc += w * v;
      wsum += w;
    }
    double value = acc / wsum;
    prediction = common::StrFormat("%.3f", value);
  } else {
    std::map<std::string, int> votes;
    for (size_t i = 0; i < k; ++i) ++votes[parsed[ranked[i].second].output];
    int best = -1;
    for (const auto& [label, n] : votes) {
      if (n > best) {
        best = n;
        prediction = label;
      }
    }
  }

  double difficulty =
      0.45 - 0.04 * static_cast<double>(std::min<size_t>(parsed.size(), 8));
  double p = CorrectnessProbability(ctx.capability, difficulty);
  if (ctx.rng->Bernoulli(p)) {
    return SkillOutput{prediction, NoisyConfidence(p, ctx.rng)};
  }
  // Corrupt: numeric drift or a different label.
  if (numeric_output) {
    double v = 0;
    common::ParseDouble(prediction, &v);
    double factor = 1.0 + (ctx.rng->Bernoulli(0.5) ? 1 : -1) *
                              ctx.rng->Uniform(0.25, 0.6);
    return SkillOutput{common::StrFormat("%.3f", v * factor),
                       NoisyConfidence(p, ctx.rng)};
  }
  std::vector<std::string> labels;
  for (const auto& ex : parsed) {
    if (ex.output != prediction) labels.push_back(ex.output);
  }
  if (labels.empty()) labels.push_back("unknown");
  return SkillOutput{labels[ctx.rng->NextBelow(labels.size())],
                     NoisyConfidence(p, ctx.rng)};
}

// ---- TabularGenerateSkill -------------------------------------------------------

common::Result<SkillOutput> TabularGenerateSkill::Run(const Prompt& prompt,
                                                      SkillContext& ctx) {
  if (prompt.examples.empty()) {
    return SkillOutput{"", 0.05};
  }
  // Key order from the first example; stats per key over all examples.
  auto first = ParseSerializedRow(prompt.examples[0].input);
  struct KeyStats {
    std::vector<double> numbers;
    std::vector<std::string> categories;
  };
  std::map<std::string, KeyStats> stats;
  for (const FewShotExample& ex : prompt.examples) {
    for (const auto& [k, v] : ParseSerializedRow(ex.input)) {
      double num;
      if (common::ParseDouble(v, &num)) {
        stats[k].numbers.push_back(num);
      } else {
        stats[k].categories.push_back(v);
      }
    }
  }
  std::string out;
  for (const auto& [key, ignored] : first) {
    const KeyStats& st = stats[key];
    if (!out.empty()) out += "; ";
    out += key + " is ";
    if (!st.numbers.empty()) {
      double mean = 0;
      for (double v : st.numbers) mean += v;
      mean /= static_cast<double>(st.numbers.size());
      double var = 0;
      for (double v : st.numbers) var += (v - mean) * (v - mean);
      var /= std::max<size_t>(1, st.numbers.size() - 1);
      // Low capability inflates the spread: sloppier distribution fit.
      double sloppiness = 1.0 + (1.0 - ctx.capability);
      double draw = ctx.rng->Normal(mean, std::sqrt(var) * sloppiness);
      bool integral = true;
      for (double v : st.numbers) integral = integral && v == std::floor(v);
      if (integral) {
        out += std::to_string(static_cast<int64_t>(std::llround(draw)));
      } else {
        out += common::StrFormat("%.3f", draw);
      }
    } else if (!st.categories.empty()) {
      out += st.categories[ctx.rng->NextBelow(st.categories.size())];
    } else {
      out += "unknown";
    }
  }
  return SkillOutput{out, std::clamp(ctx.capability, 0.05, 0.95)};
}

// ---- MatchSkill ---------------------------------------------------------------------

common::Result<SkillOutput> MatchSkill::Run(const Prompt& prompt,
                                            SkillContext& ctx) {
  size_t sep = prompt.input.find(" ||| ");
  if (sep == std::string::npos) {
    return SkillOutput{"no", 0.05};
  }
  std::string left = prompt.input.substr(0, sep);
  std::string right = prompt.input.substr(sep + 5);

  // Real similarity signal: token overlap blended with a char-3-gram overlap
  // (robust to the abbreviation/typo noise the ER workload injects).
  double token_sim = common::TokenJaccard(left, right);
  auto grams = [](const std::string& s) {
    std::vector<std::string> g = text::CharNgrams(common::ToLower(s), 3);
    std::set<std::string> out(g.begin(), g.end());
    return out;
  };
  std::set<std::string> ga = grams(left), gb = grams(right);
  size_t inter = 0;
  for (const auto& g : ga) inter += gb.count(g);
  double gram_sim =
      (ga.empty() && gb.empty())
          ? 1.0
          : static_cast<double>(inter) /
                static_cast<double>(ga.size() + gb.size() - inter);
  double sim = 0.5 * token_sim + 0.5 * gram_sim;

  bool verdict = sim > 0.42;
  // Boundary pairs are hard; clear-cut pairs are easy.
  double difficulty = std::clamp(0.75 - 1.8 * std::abs(sim - 0.42), 0.05, 0.75);
  double p = CorrectnessProbability(ctx.capability, difficulty);
  if (!ctx.rng->Bernoulli(p)) verdict = !verdict;
  return SkillOutput{verdict ? "yes" : "no", NoisyConfidence(p, ctx.rng)};
}

// ---- CtaSkill -----------------------------------------------------------------------

common::Result<SkillOutput> CtaSkill::Run(const Prompt& prompt,
                                          SkillContext& ctx) {
  std::vector<std::string> values;
  for (const std::string& part :
       common::Split(common::ReplaceAll(prompt.input, "||", "\x1f"), '\x1f')) {
    std::string trimmed(common::Trim(part));
    if (!trimmed.empty()) values.push_back(std::move(trimmed));
  }
  if (values.empty()) {
    return SkillOutput{"unknown", 0.05};
  }
  // Gazetteer vote = the model's world knowledge.
  std::map<std::string, int> votes;
  for (const auto& [label, known] : data::CtaGazetteer()) {
    for (const std::string& v : values) {
      for (const std::string& k : known) {
        if (common::ToLower(k) == common::ToLower(v)) ++votes[label];
      }
    }
  }
  std::string best_label = "unknown";
  int best = 0;
  for (const auto& [label, n] : votes) {
    if (n > best) {
      best = n;
      best_label = label;
    }
  }
  double coverage = static_cast<double>(best) /
                    static_cast<double>(values.size());
  // Unknown values make the task harder; full coverage makes it trivial.
  double difficulty = std::clamp(0.6 - 0.45 * coverage, 0.1, 0.7);
  // The label vocabulary comes from the few-shot examples (the paper's
  // prompt); fall back to gazetteer labels if none given.
  std::vector<std::string> vocabulary;
  for (const FewShotExample& ex : prompt.examples) {
    vocabulary.push_back(ex.output);
  }
  if (vocabulary.empty()) {
    for (const auto& [label, known] : data::CtaGazetteer()) {
      vocabulary.push_back(label);
    }
  }
  double p = CorrectnessProbability(ctx.capability, difficulty);
  if (best_label == "unknown" || !ctx.rng->Bernoulli(p)) {
    // Wrong or unsupported: pick another label from the vocabulary.
    std::vector<std::string> other;
    for (const std::string& l : vocabulary) {
      if (l != best_label) other.push_back(l);
    }
    if (!other.empty() && best_label != "unknown") {
      best_label = other[ctx.rng->NextBelow(other.size())];
    } else if (best_label == "unknown" && !vocabulary.empty()) {
      best_label = vocabulary[ctx.rng->NextBelow(vocabulary.size())];
    }
  }
  return SkillOutput{best_label, NoisyConfidence(p, ctx.rng)};
}

// ---- Sql2NlSkill ------------------------------------------------------------------

common::Result<SkillOutput> Sql2NlSkill::Run(const Prompt& prompt,
                                             SkillContext& ctx) {
  // Input: "<sql>\n=> <result value>".
  size_t sep = prompt.input.find("\n=> ");
  if (sep == std::string::npos) {
    return SkillOutput{"The query result could not be described.", 0.05};
  }
  std::string sql_text = prompt.input.substr(0, sep);
  std::string value = prompt.input.substr(sep + 4);
  auto parsed = sql::ParseSelect(sql_text);
  if (!parsed.ok() || (*parsed)->items.empty() || (*parsed)->from.empty()) {
    return SkillOutput{"The query result could not be described.", 0.05};
  }
  const sql::SelectStmt& sel = **parsed;
  const sql::Expr& item = *sel.items[0].expr;
  if (item.kind != sql::ExprKind::kAggregate) {
    return SkillOutput{"The value of " + item.ToString() + " is " + value + ".",
                       0.6};
  }
  static const std::map<std::string, std::string> kAggWords = {
      {"AVG", "average"}, {"SUM", "total"},   {"COUNT", "number"},
      {"MIN", "minimum"}, {"MAX", "maximum"},
  };
  std::string word = kAggWords.count(item.op) ? kAggWords.at(item.op) : "value";
  double p = CorrectnessProbability(ctx.capability, 0.2);
  if (!ctx.rng->Bernoulli(p)) {
    // Wrong aggregate word: a subtle but detectable description error.
    word = (word == "average") ? "total" : "average";
  }
  std::string target = item.args[0]->kind == sql::ExprKind::kStar
                           ? "rows"
                           : item.args[0]->ToString();
  std::string table = sel.from[0]->table_name;
  std::string sentence = "The " + word + " " + target + " of all the rows in the " +
                         table + " table is " + value + ".";
  return SkillOutput{sentence, NoisyConfidence(p, ctx.rng)};
}

// ---- FreeformSkill ------------------------------------------------------------------

common::Result<SkillOutput> FreeformSkill::Run(const Prompt& prompt,
                                               SkillContext& ctx) {
  // Deterministic acknowledgement summarizing the request; good enough for
  // glue prompts whose value is the metered cost, not the text.
  std::string head = prompt.input.substr(0, 96);
  return SkillOutput{"Understood: " + head,
                     std::clamp(ctx.capability, 0.05, 0.95)};
}

}  // namespace llmdm::llm
