#include "llm/simulated.h"

#include <algorithm>

#include "common/hash.h"
#include "llm/deadline.h"
#include "llm/prefix_trie.h"
#include "text/tokenizer.h"

namespace llmdm::llm {

void SimulatedLlm::RegisterSkill(std::unique_ptr<Skill> skill) {
  std::string tag(skill->tag());
  skills_[tag] = std::move(skill);
}

common::Result<Completion> SimulatedLlm::Complete(const Prompt& prompt) {
  auto it = skills_.find(prompt.task_tag);
  Skill* skill;
  if (it != skills_.end()) {
    skill = it->second.get();
  } else {
    auto fallback = skills_.find("freeform");
    if (fallback == skills_.end()) {
      return common::Status::Unimplemented("no skill for task tag '" +
                                           prompt.task_tag + "'");
    }
    skill = fallback->second.get();
  }

  // Deterministic per-call noise stream: same (model, prompt, salt) -> same
  // draw; different salts -> independent draws.
  uint64_t h = common::Fnv1a(spec_.name, seed_);
  h = common::HashCombine(h, common::Fnv1a(prompt.input));
  h = common::HashCombine(h, common::Fnv1a(prompt.instructions));
  h = common::HashCombine(h, prompt.sample_salt);
  common::Rng rng(h);

  SkillContext ctx;
  ctx.capability = spec_.capability;
  ctx.rng = &rng;
  LLMDM_ASSIGN_OR_RETURN(SkillOutput out, skill->Run(prompt, ctx));

  Completion completion;
  completion.text = std::move(out.text);
  completion.confidence = out.confidence;
  completion.model = spec_.name;
  completion.input_tokens = prompt.CountInputTokens();
  completion.output_tokens = text::CountTokens(completion.text);
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };
  completion.cost = price(spec_.input_price_per_1k, completion.input_tokens) +
                    price(spec_.output_price_per_1k, completion.output_tokens);
  completion.latency_ms =
      spec_.latency_ms_per_1k_tokens *
      static_cast<double>(completion.input_tokens + completion.output_tokens) /
      1000.0;
  return completion;
}

std::vector<common::Result<Completion>> SimulatedLlm::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };
  const bool discount = spec_.cached_input_price_per_1k.micros() > 0;
  PrefixTrie trie;
  std::vector<common::Result<Completion>> out;
  out.reserve(prompts.size());
  for (const Prompt& prompt : prompts) {
    // Same per-member deadline contract as CompleteMetered: fail fast before
    // the call, charge the (discounted) latency after. A member that dies
    // here never ran prefill, so its prompt does not enter the trie.
    if (prompt.deadline != nullptr && prompt.deadline->Exhausted()) {
      out.push_back(common::Status::Timeout(
          "request deadline exhausted before call to " + spec_.name));
      continue;
    }
    auto result = Complete(prompt);
    if (!result.ok()) {
      out.push_back(result.status());
      continue;
    }
    Completion completion = std::move(*result);
    if (discount) {
      const std::string rendered = prompt.Render();
      const size_t shared_chars = trie.Insert(rendered);
      // The shared character prefix re-tokenized: the batch-order trie walk
      // is deterministic, so so is this count. Clamped — a sub-word
      // tokenizer can split a truncated prefix into more pieces than the
      // full render bills for.
      const size_t cached = std::min(
          text::CountTokens(std::string_view(rendered).substr(0, shared_chars)),
          completion.input_tokens);
      const size_t fresh = completion.input_tokens - cached;
      completion.prefix_cached_tokens = cached;
      completion.cost = price(spec_.input_price_per_1k, fresh) +
                        price(spec_.cached_input_price_per_1k, cached) +
                        price(spec_.output_price_per_1k,
                              completion.output_tokens);
      // Prefill for the cached prefix is skipped: only fresh input + decode
      // spend time in the slot.
      completion.latency_ms =
          spec_.latency_ms_per_1k_tokens *
          static_cast<double>(fresh + completion.output_tokens) / 1000.0;
    }
    if (prompt.deadline != nullptr) {
      prompt.deadline->Charge(completion.latency_ms);
    }
    out.push_back(std::move(completion));
  }
  return out;
}

std::vector<std::shared_ptr<LlmModel>> CreatePaperModelLadder(
    const data::KnowledgeBase* kb, uint64_t seed) {
  std::vector<std::shared_ptr<LlmModel>> out;
  for (const ModelSpec& spec : PaperModelSpecs()) {
    auto model = std::make_shared<SimulatedLlm>(spec, seed);
    if (kb != nullptr) {
      model->RegisterSkill(std::make_unique<QaSkill>(kb));
    }
    model->RegisterSkill(std::make_unique<Nl2SqlSkill>());
    model->RegisterSkill(std::make_unique<Nl2TxnSkill>());
    model->RegisterSkill(std::make_unique<MatchSkill>());
    model->RegisterSkill(std::make_unique<CtaSkill>());
    model->RegisterSkill(std::make_unique<TabularPredictSkill>());
    model->RegisterSkill(std::make_unique<TabularGenerateSkill>());
    model->RegisterSkill(std::make_unique<Sql2NlSkill>());
    model->RegisterSkill(std::make_unique<FreeformSkill>());
    out.push_back(std::move(model));
  }
  return out;
}

}  // namespace llmdm::llm
