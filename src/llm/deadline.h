#ifndef LLMDM_LLM_DEADLINE_H_
#define LLMDM_LLM_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "llm/model.h"

namespace llmdm::llm {

/// A shared per-request budget of *simulated* milliseconds. One Deadline is
/// created where the request enters the system (the serve layer, or a
/// pipeline run) and attached to every Prompt derived from that request, so
/// the budget bounds the whole request: a cascade that escalates through
/// three rungs, or a pipeline stage that makes forty annotation calls, draws
/// every rung and every retry from the same pot instead of resetting the
/// clock per model call.
///
/// Charging happens at the model-call boundary (LlmModel::CompleteMetered
/// charges completion latency; ResilientLlm additionally charges backoff and
/// timeout waits), so layers above — cascades, pipelines, annotators — only
/// need to *check* the budget, never to book-keep it. Thread-safe: the serve
/// layer charges one Deadline from a request's primary and hedge attempts
/// concurrently.
class Deadline {
 public:
  explicit Deadline(double budget_ms)
      : remaining_micros_(ToMicros(budget_ms)) {}

  /// Simulated milliseconds left; never negative.
  double remaining_ms() const {
    int64_t v = remaining_micros_.load(std::memory_order_relaxed);
    return v <= 0 ? 0.0 : static_cast<double>(v) / 1000.0;
  }

  bool Exhausted() const {
    return remaining_micros_.load(std::memory_order_relaxed) <= 0;
  }

  /// Consumes `ms` of budget (clamped at zero; negative charges ignored).
  void Charge(double ms) {
    if (ms <= 0.0) return;
    remaining_micros_.fetch_sub(ToMicros(ms), std::memory_order_relaxed);
  }

 private:
  static int64_t ToMicros(double ms) {
    return static_cast<int64_t>(ms * 1000.0 + 0.5);
  }

  std::atomic<int64_t> remaining_micros_;
};

/// LlmModel decorator that attaches `deadline` to every prompt passing
/// through it (unless the prompt already carries one). This is how a layer
/// that does not build its own prompts — the Fig-1 pipeline hands its model
/// to annotators and synthesizers that prompt internally — scopes all of its
/// LLM traffic under one request budget.
class DeadlineScopedLlm : public LlmModel {
 public:
  DeadlineScopedLlm(std::shared_ptr<LlmModel> inner,
                    std::shared_ptr<Deadline> deadline)
      : inner_(std::move(inner)), deadline_(std::move(deadline)) {}

  const ModelSpec& spec() const override { return inner_->spec(); }

  common::Result<Completion> Complete(const Prompt& prompt) override {
    return CompleteMetered(prompt, nullptr);
  }
  common::Result<Completion> CompleteMetered(const Prompt& prompt,
                                             UsageMeter* meter) override;

  const std::shared_ptr<Deadline>& deadline() const { return deadline_; }

 private:
  std::shared_ptr<LlmModel> inner_;
  std::shared_ptr<Deadline> deadline_;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_DEADLINE_H_
