#ifndef LLMDM_LLM_PREFIX_TRIE_H_
#define LLMDM_LLM_PREFIX_TRIE_H_

#include <cstddef>
#include <set>
#include <string>
#include <string_view>

namespace llmdm::llm {

/// Prefix index over the rendered prompts of one batch: Insert() returns how
/// many leading characters the new prompt shares with the batch so far —
/// the KV-cache prefill a serving engine would skip because an earlier batch
/// member already computed it.
///
/// Represented as a sorted string set rather than an explicit node trie: the
/// longest prefix `s` shares with *any* member of a set equals the longer of
/// its common prefixes with its two lexicographic neighbours. (Any other
/// member m with a longer common prefix p would sort inside [p..., p~...],
/// an interval that also contains s — so walking from m toward s in sorted
/// order never leaves strings sharing p, and the adjacent neighbour shares
/// at least as much.) One ordered set + two neighbour comparisons per insert
/// gives the exact trie answer without node bookkeeping.
///
/// Not thread-safe; a batch is priced by the one worker executing it.
class PrefixTrie {
 public:
  /// Inserts `s`; returns the length in characters of the longest prefix of
  /// `s` shared with any *previously* inserted string (0 for the first
  /// insert or a duplicate-free miss; s.size() for an exact duplicate).
  size_t Insert(std::string_view s);

  size_t size() const { return strings_.size(); }

 private:
  std::set<std::string, std::less<>> strings_;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_PREFIX_TRIE_H_
