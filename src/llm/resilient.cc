#include "llm/resilient.h"

#include <algorithm>

#include "common/hash.h"
#include "common/string_util.h"
#include "llm/deadline.h"
#include "llm/prompt.h"
#include "obs/trace.h"

namespace llmdm::llm {

double CircuitBreaker::FailureRate() const {
  if (outcomes_.empty()) return 0.0;
  size_t failures = 0;
  for (bool failed : outcomes_) failures += failed ? 1 : 0;
  return static_cast<double>(failures) /
         static_cast<double>(outcomes_.size());
}

void CircuitBreaker::Open(double now_ms) {
  state_ = State::kOpen;
  opened_at_ms_ = now_ms;
  half_open_successes_ = 0;
  ++times_opened_;
}

bool CircuitBreaker::Allow(double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (now_ms - opened_at_ms_ >= options_.open_cooldown_ms) {
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      return true;
    }
    return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(double) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      outcomes_.clear();
    }
    return;
  }
  outcomes_.push_back(false);
  if (outcomes_.size() > options_.window) outcomes_.pop_front();
}

void CircuitBreaker::RecordFailure(double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: the endpoint is still down.
    Open(now_ms);
    return;
  }
  outcomes_.push_back(true);
  if (outcomes_.size() > options_.window) outcomes_.pop_front();
  if (state_ == State::kClosed && outcomes_.size() >= options_.min_samples &&
      FailureRate() >= options_.failure_threshold) {
    Open(now_ms);
  }
}

double ResilientLlm::JitterUnit(const Prompt& prompt, size_t attempt) const {
  uint64_t h = common::Fnv1a(prompt.input, options_.seed ^ 0x5E11EBCull);
  h = common::HashCombine(h, prompt.sample_salt);
  h = common::HashCombine(h, attempt);
  return common::HashToUnit(h);
}

common::Result<Completion> ResilientLlm::CompleteMetered(const Prompt& prompt,
                                                         UsageMeter* meter) {
  UsageMeter::RetryStats call;
  const size_t opens_before = breaker_.times_opened();
  // All time accounting for this call is local; the shared clock only sees
  // one merged update at the end. Breaker timestamps are anchored at the
  // shared clock's value when the call started — approximate under
  // concurrency, but the breaker only needs "roughly now" for cooldowns.
  const double clock_base = clock_ms();
  double elapsed_ms = 0.0;
  // The tighter of the per-call budget and the request-wide deadline (if the
  // prompt carries one) governs this call.
  double deadline_ms = options_.call_deadline_ms;
  if (prompt.deadline != nullptr) {
    deadline_ms = std::min(deadline_ms, prompt.deadline->remaining_ms());
  }
  common::Status last_error =
      common::Status::Unavailable("no attempt made for " + name());
  std::optional<Completion> degraded;  // truncated answer kept as last resort

  // Span accounting: the call's spans are anchored at the parent span's
  // start, and child offsets follow this call's local elapsed clock, so
  // the tree is exactly as deterministic as the virtual-time workload.
  obs::TraceContext* trace = prompt.trace.get();
  obs::Span* call_span = nullptr;
  double span_base = 0.0;
  if (trace != nullptr) {
    span_base = trace->SpanStart(prompt.trace_parent);
    call_span =
        trace->StartSpan("resilient:" + name(), span_base, prompt.trace_parent);
  }
  const char* outcome = "error";

  auto finalize = [&]() {
    call.circuit_opens = breaker_.times_opened() - opens_before;
    metrics_.attempts->Add(call.attempts);
    metrics_.retries->Add(call.retries);
    metrics_.transient_errors->Add(call.transient_errors);
    metrics_.fallbacks->Add(call.fallbacks);
    metrics_.stale_serves->Add(call.stale_serves);
    metrics_.circuit_opens->Add(call.circuit_opens);
    metrics_.circuit_rejections->Add(call.circuit_rejections);
    metrics_.deadline_exceeded->Add(call.deadline_exceeded);
    metrics_.breaker_state->Set(static_cast<int64_t>(breaker_.state()));
    if (call_span != nullptr) {
      trace->SetAttr(call_span, "attempts", std::to_string(call.attempts));
      trace->SetAttr(call_span, "retries", std::to_string(call.retries));
      trace->SetAttr(call_span, "outcome", outcome);
      trace->EndSpan(call_span, span_base + elapsed_ms);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      clock_ms_ += elapsed_ms;
    }
    if (meter != nullptr) meter->RecordRetry(name(), call);
  };

  const RetryPolicy& retry = options_.retry;
  for (size_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      double backoff = retry.initial_backoff_ms;
      for (size_t i = 1; i < attempt; ++i) backoff *= retry.backoff_multiplier;
      backoff = std::min(backoff, retry.max_backoff_ms);
      backoff *= 1.0 + retry.jitter * JitterUnit(prompt, attempt);
      if (call_span != nullptr) {
        obs::Span* b = trace->StartSpan("backoff", span_base + elapsed_ms,
                                        call_span);
        trace->EndSpan(b, span_base + elapsed_ms + backoff);
      }
      elapsed_ms += backoff;
      if (prompt.deadline != nullptr) prompt.deadline->Charge(backoff);
      if (elapsed_ms > deadline_ms) {
        ++call.deadline_exceeded;
        last_error = common::Status::Timeout(common::StrFormat(
            "deadline %.0fms exhausted backing off for %s", deadline_ms,
            name().c_str()));
        break;
      }
      ++call.retries;
    }
    if (!breaker_.Allow(clock_base + elapsed_ms)) {
      ++call.circuit_rejections;
      outcome = "circuit_open";
      last_error = common::Status::Unavailable(
          "circuit open for " + name());
      break;
    }
    ++call.attempts;
    obs::Span* attempt_span = nullptr;
    if (call_span != nullptr) {
      attempt_span = trace->StartSpan("attempt", span_base + elapsed_ms,
                                      call_span);
    }
    auto end_attempt = [&](std::string result_attr) {
      if (attempt_span != nullptr) {
        trace->SetAttr(attempt_span, "result", std::move(result_attr));
        trace->EndSpan(attempt_span, span_base + elapsed_ms);
      }
    };
    auto result = inner_->CompleteMetered(prompt, meter);
    if (result.ok()) {
      elapsed_ms += result->latency_ms;
      if (elapsed_ms > deadline_ms) {
        // The model answered, but slower than the caller's budget — the
        // ModelSpec latency bound is enforced here. Retrying the same model
        // cannot get faster, so go straight to the fallback chain.
        breaker_.RecordFailure(clock_base + elapsed_ms);
        ++call.transient_errors;
        ++call.deadline_exceeded;
        end_attempt("deadline_exceeded");
        last_error = common::Status::Timeout(common::StrFormat(
            "%s took %.0fms against a %.0fms deadline", name().c_str(),
            elapsed_ms, deadline_ms));
        break;
      }
      if (result->truncated && retry.retry_on_truncation) {
        breaker_.RecordFailure(clock_base + elapsed_ms);
        ++call.transient_errors;
        end_attempt("truncated");
        degraded = *result;  // better a clipped answer than none
        last_error = common::Status::Unavailable(
            "completion truncated by " + name());
        continue;
      }
      breaker_.RecordSuccess(clock_base + elapsed_ms);
      end_attempt("ok");
      outcome = "ok";
      finalize();
      return result;
    }
    last_error = result.status();
    breaker_.RecordFailure(clock_base + elapsed_ms);
    ++call.transient_errors;
    if (last_error.code() == common::StatusCode::kTimeout) {
      // A timed-out request burned real wall time before failing.
      elapsed_ms += options_.timeout_wait_ms;
      if (prompt.deadline != nullptr) {
        prompt.deadline->Charge(options_.timeout_wait_ms);
      }
    }
    end_attempt(std::string(common::StatusCodeName(last_error.code())));
    if (!common::IsTransientError(last_error.code())) break;  // permanent
  }

  // Retries exhausted (or circuit open / deadline blown): degrade through
  // the fallback chain rather than failing the whole query.
  for (const auto& fallback : fallbacks_) {
    obs::Span* fb_span = nullptr;
    if (call_span != nullptr) {
      fb_span = trace->StartSpan("fallback:" + fallback->name(),
                                 span_base + elapsed_ms, call_span);
    }
    auto result = fallback->CompleteMetered(prompt, meter);
    if (result.ok()) {
      elapsed_ms += result->latency_ms;
      ++call.fallbacks;
      if (fb_span != nullptr) {
        trace->SetAttr(fb_span, "result", "ok");
        trace->EndSpan(fb_span, span_base + elapsed_ms);
      }
      outcome = "fallback";
      finalize();
      return result;
    }
    last_error = result.status();
    if (fb_span != nullptr) {
      trace->SetAttr(fb_span, "result", "error");
      trace->EndSpan(fb_span, span_base + elapsed_ms);
    }
  }
  if (cache_fallback_) {
    if (std::optional<Completion> hit = cache_fallback_(prompt)) {
      ++call.stale_serves;
      if (call_span != nullptr) {
        obs::Span* stale = trace->StartSpan("stale_serve",
                                            span_base + elapsed_ms, call_span);
        trace->EndSpan(stale, span_base + elapsed_ms);
      }
      outcome = "stale";
      finalize();
      return *hit;
    }
  }
  if (degraded.has_value()) {
    outcome = "degraded";
    finalize();
    return *degraded;
  }
  finalize();
  return last_error;
}

}  // namespace llmdm::llm
