#include "llm/resilient.h"

#include <algorithm>

#include "common/string_util.h"

namespace llmdm::llm {

double CircuitBreaker::FailureRate() const {
  if (outcomes_.empty()) return 0.0;
  size_t failures = 0;
  for (bool failed : outcomes_) failures += failed ? 1 : 0;
  return static_cast<double>(failures) /
         static_cast<double>(outcomes_.size());
}

void CircuitBreaker::Open(double now_ms) {
  state_ = State::kOpen;
  opened_at_ms_ = now_ms;
  half_open_successes_ = 0;
  ++times_opened_;
}

bool CircuitBreaker::Allow(double now_ms) {
  if (state_ == State::kOpen) {
    if (now_ms - opened_at_ms_ >= options_.open_cooldown_ms) {
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      return true;
    }
    return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(double) {
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      outcomes_.clear();
    }
    return;
  }
  outcomes_.push_back(false);
  if (outcomes_.size() > options_.window) outcomes_.pop_front();
}

void CircuitBreaker::RecordFailure(double now_ms) {
  if (state_ == State::kHalfOpen) {
    // The probe failed: the endpoint is still down.
    Open(now_ms);
    return;
  }
  outcomes_.push_back(true);
  if (outcomes_.size() > options_.window) outcomes_.pop_front();
  if (state_ == State::kClosed && outcomes_.size() >= options_.min_samples &&
      FailureRate() >= options_.failure_threshold) {
    Open(now_ms);
  }
}

common::Result<Completion> ResilientLlm::CompleteMetered(const Prompt& prompt,
                                                         UsageMeter* meter) {
  UsageMeter::RetryStats call;
  const size_t opens_before = breaker_.times_opened();
  const double call_start_ms = clock_ms_;
  common::Status last_error =
      common::Status::Unavailable("no attempt made for " + name());
  std::optional<Completion> degraded;  // truncated answer kept as last resort

  auto finalize = [&]() {
    call.circuit_opens = breaker_.times_opened() - opens_before;
    stats_.Merge(call);
    if (meter != nullptr) meter->RecordRetry(name(), call);
  };

  const RetryPolicy& retry = options_.retry;
  for (size_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      double backoff = retry.initial_backoff_ms;
      for (size_t i = 1; i < attempt; ++i) backoff *= retry.backoff_multiplier;
      backoff = std::min(backoff, retry.max_backoff_ms);
      backoff *= 1.0 + retry.jitter * jitter_rng_.UniformDouble();
      clock_ms_ += backoff;
      if (clock_ms_ - call_start_ms > options_.call_deadline_ms) {
        ++call.deadline_exceeded;
        last_error = common::Status::Timeout(common::StrFormat(
            "deadline %.0fms exhausted backing off for %s",
            options_.call_deadline_ms, name().c_str()));
        break;
      }
      ++call.retries;
    }
    if (!breaker_.Allow(clock_ms_)) {
      ++call.circuit_rejections;
      last_error = common::Status::Unavailable(
          "circuit open for " + name());
      break;
    }
    ++call.attempts;
    auto result = inner_->CompleteMetered(prompt, meter);
    if (result.ok()) {
      clock_ms_ += result->latency_ms;
      if (clock_ms_ - call_start_ms > options_.call_deadline_ms) {
        // The model answered, but slower than the caller's budget — the
        // ModelSpec latency bound is enforced here. Retrying the same model
        // cannot get faster, so go straight to the fallback chain.
        breaker_.RecordFailure(clock_ms_);
        ++call.transient_errors;
        ++call.deadline_exceeded;
        last_error = common::Status::Timeout(common::StrFormat(
            "%s took %.0fms against a %.0fms deadline", name().c_str(),
            clock_ms_ - call_start_ms, options_.call_deadline_ms));
        break;
      }
      if (result->truncated && retry.retry_on_truncation) {
        breaker_.RecordFailure(clock_ms_);
        ++call.transient_errors;
        degraded = *result;  // better a clipped answer than none
        last_error = common::Status::Unavailable(
            "completion truncated by " + name());
        continue;
      }
      breaker_.RecordSuccess(clock_ms_);
      finalize();
      return result;
    }
    last_error = result.status();
    breaker_.RecordFailure(clock_ms_);
    ++call.transient_errors;
    if (last_error.code() == common::StatusCode::kTimeout) {
      // A timed-out request burned real wall time before failing.
      clock_ms_ += options_.timeout_wait_ms;
    }
    if (!common::IsTransientError(last_error.code())) break;  // permanent
  }

  // Retries exhausted (or circuit open / deadline blown): degrade through
  // the fallback chain rather than failing the whole query.
  for (const auto& fallback : fallbacks_) {
    auto result = fallback->CompleteMetered(prompt, meter);
    if (result.ok()) {
      clock_ms_ += result->latency_ms;
      ++call.fallbacks;
      finalize();
      return result;
    }
    last_error = result.status();
  }
  if (cache_fallback_) {
    if (std::optional<Completion> hit = cache_fallback_(prompt)) {
      ++call.stale_serves;
      finalize();
      return *hit;
    }
  }
  if (degraded.has_value()) {
    finalize();
    return *degraded;
  }
  finalize();
  return last_error;
}

}  // namespace llmdm::llm
