#ifndef LLMDM_LLM_USAGE_H_
#define LLMDM_LLM_USAGE_H_

#include <map>
#include <string>

#include "common/money.h"

namespace llmdm::llm {

/// Aggregated API usage: calls, tokens, dollars, simulated latency. Every
/// experiment's "API Cost" row comes out of one of these.
class UsageMeter {
 public:
  struct Totals {
    size_t calls = 0;
    size_t input_tokens = 0;
    size_t output_tokens = 0;
    common::Money cost;
    double latency_ms = 0.0;
  };

  void Record(const std::string& model, size_t input_tokens,
              size_t output_tokens, common::Money cost, double latency_ms);

  const Totals& totals() const { return totals_; }
  common::Money cost() const { return totals_.cost; }
  size_t calls() const { return totals_.calls; }

  /// Per-model breakdown (model name -> totals).
  const std::map<std::string, Totals>& by_model() const { return by_model_; }

  void Reset();

  /// "calls=12 in=3456 out=789 cost=$0.123 latency=456.7ms".
  std::string ToString() const;

 private:
  Totals totals_;
  std::map<std::string, Totals> by_model_;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_USAGE_H_
