#ifndef LLMDM_LLM_USAGE_H_
#define LLMDM_LLM_USAGE_H_

#include <map>
#include <mutex>
#include <string>

#include "common/money.h"

namespace llmdm::llm {

/// Aggregated API usage: calls, tokens, dollars, simulated latency. Every
/// experiment's "API Cost" row comes out of one of these.
///
/// Thread-safe: the serve layer meters concurrent requests — including a
/// request's racing hedge attempts — into one shared ledger, so all
/// mutations take an internal mutex and the accessors return snapshot
/// copies (a reference into a map another thread may be rehashing is a
/// data race, not an API).
class UsageMeter {
 public:
  struct Totals {
    size_t calls = 0;
    size_t input_tokens = 0;
    size_t output_tokens = 0;
    common::Money cost;
    double latency_ms = 0.0;
  };

  /// Resilience-layer accounting: how many attempts a logical completion
  /// took and which degradation paths fired. Kept separate from Totals so
  /// the cost columns of Tables I–III stay directly comparable while the
  /// retry/fallback spend is itemized alongside them.
  struct RetryStats {
    size_t attempts = 0;            // endpoint calls made (first try + retries)
    size_t retries = 0;             // attempts beyond the first
    size_t transient_errors = 0;    // rate-limit/timeout/unavailable observed
    size_t fallbacks = 0;           // completions served by a fallback rung
    size_t stale_serves = 0;        // completions served from a stale cache
    size_t circuit_opens = 0;       // closed->open transitions
    size_t circuit_rejections = 0;  // calls short-circuited by an open breaker
    size_t deadline_exceeded = 0;   // per-call latency budget blown
    void Merge(const RetryStats& other);
    /// "attempts=9 retries=3 faults=3 fallbacks=1 stale=0 opens=1 ...".
    std::string ToString() const;
  };

  /// Single-flight accounting: requests that never reached the endpoint
  /// because they were coalesced onto an identical in-flight call. Kept out
  /// of Totals (those count real endpoint calls) and itemized per model so
  /// the avoided spend is auditable next to the committed spend.
  struct CoalesceStats {
    size_t coalesced = 0;  // follower requests collapsed onto a leader
    common::Money saved;   // estimated spend those calls avoided
    void Merge(const CoalesceStats& other);
    /// "coalesced=5 saved=$0.0123".
    std::string ToString() const;
  };

  /// Continuous-batching accounting: how many model-boundary batches closed
  /// and how much input spend the shared-prefix (KV-cache) discount avoided.
  /// Like CoalesceStats, kept out of Totals — Totals.cost already reflects
  /// the discounted spend; `prefix_saved` itemizes what list-price billing
  /// would have added, so discounted + saved reconstructs the undiscounted
  /// bill exactly.
  struct BatchStats {
    size_t batches = 0;        // batch closes (size/window/drain)
    size_t batched_calls = 0;  // completions served through a batch
    size_t prefix_cached_tokens = 0;  // input tokens billed at the cached tier
    common::Money prefix_saved;       // list-price spend those tokens avoided
    void Merge(const BatchStats& other);
    /// "batches=3 calls=17 cached_tokens=412 saved=$0.0321".
    std::string ToString() const;
  };

  UsageMeter() = default;
  UsageMeter(const UsageMeter&) = delete;
  UsageMeter& operator=(const UsageMeter&) = delete;

  void Record(const std::string& model, size_t input_tokens,
              size_t output_tokens, common::Money cost, double latency_ms);

  /// Folds one logical call's retry accounting into the ledger.
  void RecordRetry(const std::string& model, const RetryStats& delta);

  /// Books one coalesced follower: the request was served from `model`'s
  /// in-flight leader call, avoiding an estimated `saved_estimate` of spend.
  void RecordCoalesced(const std::string& model, common::Money saved_estimate);

  /// Books one batch close on `model` with `batch_size` member calls.
  /// Called once per batch by whoever executed it (not per member, and not
  /// in a hedge scratch meter — the batch closed regardless of which
  /// attempt wins any member's race).
  void RecordBatchClose(const std::string& model, size_t batch_size);

  /// Books one member's shared-prefix reuse: `cached_tokens` input tokens
  /// billed at the cached tier instead of list, avoiding exactly `saved`.
  /// Recorded into the member's scratch meter alongside Record(), so
  /// winner-commit hedging claims the discount only when the batched
  /// (primary) attempt actually won.
  void RecordPrefixReuse(const std::string& model, size_t cached_tokens,
                         common::Money saved);

  /// Folds another meter's whole ledger into this one. The serve layer
  /// meters each hedge attempt into its own scratch meter and commits only
  /// the winning attempt's meter — this is the commit.
  void MergeFrom(const UsageMeter& other);

  RetryStats retry_stats() const;
  std::map<std::string, RetryStats> retry_by_model() const;

  CoalesceStats coalesce_stats() const;
  std::map<std::string, CoalesceStats> coalesce_by_model() const;

  BatchStats batch_stats() const;
  std::map<std::string, BatchStats> batch_by_model() const;

  Totals totals() const;
  common::Money cost() const;
  size_t calls() const;

  /// Per-model breakdown (model name -> totals).
  std::map<std::string, Totals> by_model() const;

  void Reset();

  /// "calls=12 in=3456 out=789 cost=$0.123 latency=456.7ms".
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  Totals totals_;
  std::map<std::string, Totals> by_model_;
  RetryStats retry_stats_;
  std::map<std::string, RetryStats> retry_by_model_;
  CoalesceStats coalesce_stats_;
  std::map<std::string, CoalesceStats> coalesce_by_model_;
  BatchStats batch_stats_;
  std::map<std::string, BatchStats> batch_by_model_;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_USAGE_H_
