#include "llm/deadline.h"

namespace llmdm::llm {

common::Result<Completion> DeadlineScopedLlm::CompleteMetered(
    const Prompt& prompt, UsageMeter* meter) {
  if (prompt.deadline != nullptr || deadline_ == nullptr) {
    return inner_->CompleteMetered(prompt, meter);
  }
  Prompt scoped = prompt;
  scoped.deadline = deadline_;
  return inner_->CompleteMetered(scoped, meter);
}

}  // namespace llmdm::llm
