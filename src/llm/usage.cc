#include "llm/usage.h"

#include "common/string_util.h"

namespace llmdm::llm {

void UsageMeter::Record(const std::string& model, size_t input_tokens,
                        size_t output_tokens, common::Money cost,
                        double latency_ms) {
  auto bump = [&](Totals& t) {
    ++t.calls;
    t.input_tokens += input_tokens;
    t.output_tokens += output_tokens;
    t.cost += cost;
    t.latency_ms += latency_ms;
  };
  bump(totals_);
  bump(by_model_[model]);
}

void UsageMeter::RetryStats::Merge(const RetryStats& other) {
  attempts += other.attempts;
  retries += other.retries;
  transient_errors += other.transient_errors;
  fallbacks += other.fallbacks;
  stale_serves += other.stale_serves;
  circuit_opens += other.circuit_opens;
  circuit_rejections += other.circuit_rejections;
  deadline_exceeded += other.deadline_exceeded;
}

std::string UsageMeter::RetryStats::ToString() const {
  return common::StrFormat(
      "attempts=%zu retries=%zu faults=%zu fallbacks=%zu stale=%zu "
      "opens=%zu rejected=%zu deadline=%zu",
      attempts, retries, transient_errors, fallbacks, stale_serves,
      circuit_opens, circuit_rejections, deadline_exceeded);
}

void UsageMeter::RecordRetry(const std::string& model,
                             const RetryStats& delta) {
  retry_stats_.Merge(delta);
  retry_by_model_[model].Merge(delta);
}

void UsageMeter::Reset() {
  totals_ = Totals{};
  by_model_.clear();
  retry_stats_ = RetryStats{};
  retry_by_model_.clear();
}

std::string UsageMeter::ToString() const {
  return common::StrFormat(
      "calls=%zu in=%zu out=%zu cost=%s latency=%.1fms", totals_.calls,
      totals_.input_tokens, totals_.output_tokens,
      totals_.cost.ToString(4).c_str(), totals_.latency_ms);
}

}  // namespace llmdm::llm
