#include "llm/usage.h"

#include "common/string_util.h"

namespace llmdm::llm {

void UsageMeter::Record(const std::string& model, size_t input_tokens,
                        size_t output_tokens, common::Money cost,
                        double latency_ms) {
  auto bump = [&](Totals& t) {
    ++t.calls;
    t.input_tokens += input_tokens;
    t.output_tokens += output_tokens;
    t.cost += cost;
    t.latency_ms += latency_ms;
  };
  bump(totals_);
  bump(by_model_[model]);
}

void UsageMeter::Reset() {
  totals_ = Totals{};
  by_model_.clear();
}

std::string UsageMeter::ToString() const {
  return common::StrFormat(
      "calls=%zu in=%zu out=%zu cost=%s latency=%.1fms", totals_.calls,
      totals_.input_tokens, totals_.output_tokens,
      totals_.cost.ToString(4).c_str(), totals_.latency_ms);
}

}  // namespace llmdm::llm
