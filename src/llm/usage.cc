#include "llm/usage.h"

#include "common/string_util.h"

namespace llmdm::llm {

void UsageMeter::Record(const std::string& model, size_t input_tokens,
                        size_t output_tokens, common::Money cost,
                        double latency_ms) {
  auto bump = [&](Totals& t) {
    ++t.calls;
    t.input_tokens += input_tokens;
    t.output_tokens += output_tokens;
    t.cost += cost;
    t.latency_ms += latency_ms;
  };
  std::lock_guard<std::mutex> lock(mu_);
  bump(totals_);
  bump(by_model_[model]);
}

void UsageMeter::RetryStats::Merge(const RetryStats& other) {
  attempts += other.attempts;
  retries += other.retries;
  transient_errors += other.transient_errors;
  fallbacks += other.fallbacks;
  stale_serves += other.stale_serves;
  circuit_opens += other.circuit_opens;
  circuit_rejections += other.circuit_rejections;
  deadline_exceeded += other.deadline_exceeded;
}

std::string UsageMeter::RetryStats::ToString() const {
  return common::StrFormat(
      "attempts=%zu retries=%zu faults=%zu fallbacks=%zu stale=%zu "
      "opens=%zu rejected=%zu deadline=%zu",
      attempts, retries, transient_errors, fallbacks, stale_serves,
      circuit_opens, circuit_rejections, deadline_exceeded);
}

void UsageMeter::RecordRetry(const std::string& model,
                             const RetryStats& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  retry_stats_.Merge(delta);
  retry_by_model_[model].Merge(delta);
}

void UsageMeter::CoalesceStats::Merge(const CoalesceStats& other) {
  coalesced += other.coalesced;
  saved += other.saved;
}

std::string UsageMeter::CoalesceStats::ToString() const {
  return common::StrFormat("coalesced=%zu saved=%s", coalesced,
                           saved.ToString(4).c_str());
}

void UsageMeter::RecordCoalesced(const std::string& model,
                                 common::Money saved_estimate) {
  std::lock_guard<std::mutex> lock(mu_);
  ++coalesce_stats_.coalesced;
  coalesce_stats_.saved += saved_estimate;
  CoalesceStats& m = coalesce_by_model_[model];
  ++m.coalesced;
  m.saved += saved_estimate;
}

void UsageMeter::BatchStats::Merge(const BatchStats& other) {
  batches += other.batches;
  batched_calls += other.batched_calls;
  prefix_cached_tokens += other.prefix_cached_tokens;
  prefix_saved += other.prefix_saved;
}

std::string UsageMeter::BatchStats::ToString() const {
  return common::StrFormat("batches=%zu calls=%zu cached_tokens=%zu saved=%s",
                           batches, batched_calls, prefix_cached_tokens,
                           prefix_saved.ToString(4).c_str());
}

void UsageMeter::RecordBatchClose(const std::string& model,
                                  size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batch_stats_.batches;
  batch_stats_.batched_calls += batch_size;
  BatchStats& m = batch_by_model_[model];
  ++m.batches;
  m.batched_calls += batch_size;
}

void UsageMeter::RecordPrefixReuse(const std::string& model,
                                   size_t cached_tokens, common::Money saved) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_stats_.prefix_cached_tokens += cached_tokens;
  batch_stats_.prefix_saved += saved;
  BatchStats& m = batch_by_model_[model];
  m.prefix_cached_tokens += cached_tokens;
  m.prefix_saved += saved;
}

void UsageMeter::MergeFrom(const UsageMeter& other) {
  // Snapshot `other` under its own lock, then merge under ours; taking both
  // locks at once would invite deadlock for no benefit (the donor is a
  // request-local scratch meter with no concurrent writers at commit time).
  Totals other_totals;
  std::map<std::string, Totals> other_by_model;
  RetryStats other_retry;
  std::map<std::string, RetryStats> other_retry_by_model;
  CoalesceStats other_coalesce;
  std::map<std::string, CoalesceStats> other_coalesce_by_model;
  BatchStats other_batch;
  std::map<std::string, BatchStats> other_batch_by_model;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_totals = other.totals_;
    other_by_model = other.by_model_;
    other_retry = other.retry_stats_;
    other_retry_by_model = other.retry_by_model_;
    other_coalesce = other.coalesce_stats_;
    other_coalesce_by_model = other.coalesce_by_model_;
    other_batch = other.batch_stats_;
    other_batch_by_model = other.batch_by_model_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  totals_.calls += other_totals.calls;
  totals_.input_tokens += other_totals.input_tokens;
  totals_.output_tokens += other_totals.output_tokens;
  totals_.cost += other_totals.cost;
  totals_.latency_ms += other_totals.latency_ms;
  for (const auto& [model, t] : other_by_model) {
    Totals& mine = by_model_[model];
    mine.calls += t.calls;
    mine.input_tokens += t.input_tokens;
    mine.output_tokens += t.output_tokens;
    mine.cost += t.cost;
    mine.latency_ms += t.latency_ms;
  }
  retry_stats_.Merge(other_retry);
  for (const auto& [model, r] : other_retry_by_model) {
    retry_by_model_[model].Merge(r);
  }
  coalesce_stats_.Merge(other_coalesce);
  for (const auto& [model, c] : other_coalesce_by_model) {
    coalesce_by_model_[model].Merge(c);
  }
  batch_stats_.Merge(other_batch);
  for (const auto& [model, b] : other_batch_by_model) {
    batch_by_model_[model].Merge(b);
  }
}

UsageMeter::RetryStats UsageMeter::retry_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_stats_;
}

std::map<std::string, UsageMeter::RetryStats> UsageMeter::retry_by_model()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_by_model_;
}

UsageMeter::CoalesceStats UsageMeter::coalesce_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesce_stats_;
}

std::map<std::string, UsageMeter::CoalesceStats> UsageMeter::coalesce_by_model()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesce_by_model_;
}

UsageMeter::BatchStats UsageMeter::batch_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_stats_;
}

std::map<std::string, UsageMeter::BatchStats> UsageMeter::batch_by_model()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_by_model_;
}

UsageMeter::Totals UsageMeter::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

common::Money UsageMeter::cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_.cost;
}

size_t UsageMeter::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_.calls;
}

std::map<std::string, UsageMeter::Totals> UsageMeter::by_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_model_;
}

void UsageMeter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  totals_ = Totals{};
  by_model_.clear();
  retry_stats_ = RetryStats{};
  retry_by_model_.clear();
  coalesce_stats_ = CoalesceStats{};
  coalesce_by_model_.clear();
  batch_stats_ = BatchStats{};
  batch_by_model_.clear();
}

std::string UsageMeter::ToString() const {
  Totals t = totals();
  return common::StrFormat(
      "calls=%zu in=%zu out=%zu cost=%s latency=%.1fms", t.calls,
      t.input_tokens, t.output_tokens, t.cost.ToString(4).c_str(),
      t.latency_ms);
}

}  // namespace llmdm::llm
