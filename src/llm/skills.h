#ifndef LLMDM_LLM_SKILLS_H_
#define LLMDM_LLM_SKILLS_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "data/txn_workload.h"
#include "llm/prompt.h"

namespace llmdm::llm {

/// Per-call execution context handed to a skill: which model tier is
/// "thinking" and a deterministic noise stream derived from
/// (prompt, model, sample_salt) — the same prompt to the same model with the
/// same salt always behaves identically, while different salts are
/// independent draws (simulated temperature sampling).
struct SkillContext {
  double capability = 0.5;
  common::Rng* rng = nullptr;
};

/// A skill's answer: the text plus the model's self-estimated confidence.
struct SkillOutput {
  std::string text;
  double confidence = 0.5;
};

/// Maps (capability, difficulty) to the probability the simulated model gets
/// the task right: a logistic curve in (capability - difficulty). This single
/// function is the entire "model quality" assumption of the reproduction —
/// bigger models win, hard tasks lose, smoothly.
double CorrectnessProbability(double capability, double difficulty);

/// A task competence of the simulated LLM. Skills implement genuine task
/// logic (graph walks, SQL translation, nearest-neighbour ICL) and then
/// corrupt their own output with probability 1 - CorrectnessProbability.
class Skill {
 public:
  virtual ~Skill() = default;
  virtual std::string_view tag() const = 0;
  virtual common::Result<SkillOutput> Run(const Prompt& prompt,
                                          SkillContext& ctx) = 0;
};

/// "qa": multi-hop question answering over a KnowledgeBase. Difficulty grows
/// with hop count. Wrong answers are plausible entities, not garbage —
/// exactly the failure mode that makes cascade decision models necessary.
class QaSkill : public Skill {
 public:
  /// `kb` must outlive the skill.
  explicit QaSkill(const data::KnowledgeBase* kb) : kb_(kb) {}

  std::string_view tag() const override { return "qa"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;

 private:
  const data::KnowledgeBase* kb_;
};

/// "nl2sql": translates the stadium-family NL questions into SQL. Difficulty
/// grows with the number of conditions and superlatives; relevant few-shot
/// examples lower it (which is why decomposition + good examples wins in
/// Table II). Corruptions produce executable-but-wrong or syntactically
/// broken SQL.
class Nl2SqlSkill : public Skill {
 public:
  struct Options {
    double base_difficulty = 0.10;
    double per_complexity = 0.21;
    double example_bonus = 0.05;   // per relevant example, up to 3
  };

  Nl2SqlSkill() : Nl2SqlSkill(Options{}) {}
  explicit Nl2SqlSkill(const Options& options) : options_(options) {}

  std::string_view tag() const override { return "nl2sql"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;

 private:
  Options options_;
};

/// "nl2txn": translates a multi-transfer payment request into the SQL
/// statement sequence of a transaction (Sec. II-B.1 NL2Transaction).
/// Output: statements joined by ";\n". Corruptions drop a statement or
/// damage an amount — exactly the failures atomic execution must catch.
class Nl2TxnSkill : public Skill {
 public:
  std::string_view tag() const override { return "nl2txn"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "tabular_predict": in-context learning over serialized rows
/// ("age is 63; bmi is 31.2; ..."): k-nearest-neighbour regression /
/// classification against the prompt's examples. More examples = easier.
class TabularPredictSkill : public Skill {
 public:
  std::string_view tag() const override { return "tabular_predict"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "tabular_generate": synthesizes a new serialized row mimicking the
/// marginal distributions of the examples (numeric: fitted normal;
/// categorical: frequency draw). Low capability = sloppier fit.
class TabularGenerateSkill : public Skill {
 public:
  std::string_view tag() const override { return "tabular_generate"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "match": generic semantic matching — input "A ||| B", output "yes"/"no".
/// Serves entity resolution and schema matching (Sec. II-C.1). The skill
/// computes a real string/token similarity and decides; pairs near the
/// decision boundary are hard (small models flip on them), obvious pairs are
/// easy — the accuracy structure ER benchmarks actually show.
class MatchSkill : public Skill {
 public:
  std::string_view tag() const override { return "match"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "cta": column type annotation (Sec. II-C.1's exact prompt pattern).
/// Input: "v1||v2||v3"; few-shot examples carry the label vocabulary. The
/// skill's world knowledge is the CtaGazetteer; difficulty rises when the
/// values are ambiguous or absent from it.
class CtaSkill : public Skill {
 public:
  std::string_view tag() const override { return "cta"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "sql2nl": renders an aggregate SQL query + its result as a natural
/// language sentence (the table-understanding helper of Sec. II-C.2).
/// Input format: "<sql>\n=> <value>".
class Sql2NlSkill : public Skill {
 public:
  std::string_view tag() const override { return "sql2nl"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

/// "freeform": deterministic fallback for glue prompts; echoes a summary.
class FreeformSkill : public Skill {
 public:
  std::string_view tag() const override { return "freeform"; }
  common::Result<SkillOutput> Run(const Prompt& prompt,
                                  SkillContext& ctx) override;
};

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_SKILLS_H_
