#ifndef LLMDM_LLM_SIMULATED_H_
#define LLMDM_LLM_SIMULATED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llm/model.h"
#include "llm/skills.h"

namespace llmdm::llm {

/// Deterministic simulated LLM endpoint (the repo's substitute for the
/// OpenAI models the paper calls — see DESIGN.md §2 for why the substitution
/// preserves the experiments' behaviour).
///
/// A completion is produced by routing the prompt to a registered Skill and
/// metering tokens/cost/latency from the rendered prompt and the skill's
/// output. All stochasticity is hashed from
/// (model name, service seed, prompt input, sample_salt), so:
///  - the same call twice returns byte-identical completions (cache-friendly);
///  - different sample_salts are independent draws (self-consistency works);
///  - two model tiers disagree in capability, not in randomness.
class SimulatedLlm : public LlmModel {
 public:
  SimulatedLlm(ModelSpec spec, uint64_t seed)
      : spec_(std::move(spec)), seed_(seed) {}

  const ModelSpec& spec() const override { return spec_; }

  /// Registers a skill; prompts with task_tag == skill->tag() route to it.
  void RegisterSkill(std::unique_ptr<Skill> skill);

  common::Result<Completion> Complete(const Prompt& prompt) override;

  /// Batched completion with a KV-cache cost model: a prefix trie over the
  /// rendered prompts (in batch order) finds, per member, the longest prefix
  /// an earlier member already prefilled. Those tokens bill at
  /// spec().cached_input_price_per_1k and skip prefill latency — text,
  /// confidence and token counts are byte-identical to per-call Complete();
  /// only cost/latency/prefix_cached_tokens change. With the cached price
  /// unset (zero) this degrades to the base loop's pricing exactly.
  std::vector<common::Result<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

 private:
  ModelSpec spec_;
  uint64_t seed_;
  std::map<std::string, std::unique_ptr<Skill>, std::less<>> skills_;
};

/// A ready-to-use ladder of the paper's three model tiers, each equipped
/// with the full skill set. `kb` (may be null) enables the QA skill and must
/// outlive the models.
std::vector<std::shared_ptr<LlmModel>> CreatePaperModelLadder(
    const data::KnowledgeBase* kb, uint64_t seed);

}  // namespace llmdm::llm

#endif  // LLMDM_LLM_SIMULATED_H_
