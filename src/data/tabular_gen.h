#ifndef LLMDM_DATA_TABULAR_GEN_H_
#define LLMDM_DATA_TABULAR_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace llmdm::data {

/// Synthetic healthcare-style tabular data (the paper's running domain for
/// transformation, labeling and privacy: Secs. II-B, III-B.1, III-D).
/// The label ("has_heart_disease") is a noisy logistic function of the
/// features, so ICL-style nearest-neighbour labeling and DP-SGD training
/// both have real signal to find.
struct PatientDataOptions {
  size_t num_rows = 200;
  /// Label noise: probability a label is flipped from its logistic draw.
  double label_noise = 0.05;
};

Table GeneratePatientTable(const PatientDataOptions& options,
                           common::Rng& rng);

/// Blanks out `fraction` of the values in `column` (sets them to NULL);
/// returns the indices of the blanked rows. Used by the missing-field
/// annotation experiments.
std::vector<size_t> InjectMissing(Table* table, const std::string& column,
                                  double fraction, common::Rng& rng);

/// A "dirty" textual rendering of an entity: abbreviations, case damage,
/// token swaps and typos, controlled by `severity` in [0,1]. Used to build
/// entity-resolution workloads where the matcher has to look through noise.
std::string PerturbEntityText(const std::string& text, double severity,
                              common::Rng& rng);

/// One entity-resolution pair: two descriptions plus the gold verdict.
struct ErPair {
  std::string left;
  std::string right;
  bool is_match = false;
};

/// Generates an ER workload over synthetic product entities: matches are
/// dirty variants of the same product, non-matches are distinct products
/// (including hard negatives from the same brand).
std::vector<ErPair> GenerateErWorkload(size_t num_pairs, double dirt,
                                       common::Rng& rng);

/// Column-type-annotation example: a set of cell values and the gold type
/// label, mirroring the paper's CTA prompt (country/person/date/...).
struct CtaExample {
  std::vector<std::string> values;
  std::string label;
};

std::vector<CtaExample> GenerateCtaWorkload(size_t num_examples,
                                            common::Rng& rng);

/// The label vocabulary used by GenerateCtaWorkload.
std::vector<std::string> CtaLabels();

/// label -> known values of that type. This doubles as the simulated LLM's
/// "world knowledge" for column type annotation (a hosted LLM knows that
/// "Basketball" is a sport from pre-training; the simulator knows it from
/// this gazetteer).
const std::vector<std::pair<std::string, std::vector<std::string>>>&
CtaGazetteer();

}  // namespace llmdm::data

#endif  // LLMDM_DATA_TABULAR_GEN_H_
