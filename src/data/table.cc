#include "data/table.h"

#include <algorithm>

#include "common/hash.h"
#include "common/string_util.h"

namespace llmdm::data {
namespace {

bool TypeCompatible(ColumnType column_type, const Value& v) {
  if (v.is_null()) return true;  // nullability checked separately
  switch (column_type) {
    case ColumnType::kBool:
      return v.is_bool();
    case ColumnType::kInt64:
      return v.is_int();
    case ColumnType::kDouble:
      return v.is_numeric();
    case ColumnType::kText:
      return v.is_text();
    case ColumnType::kDate:
      return v.is_date();
    case ColumnType::kNull:
      return v.is_null();
  }
  return false;
}

}  // namespace

common::Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "table %s: row arity %zu != schema arity %zu", name_.c_str(),
        row.size(), schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema_.column(i);
    if (row[i].is_null() && !col.nullable) {
      return common::Status::InvalidArgument(common::StrFormat(
          "table %s: NULL in non-nullable column %s", name_.c_str(),
          col.name.c_str()));
    }
    if (!TypeCompatible(col.type, row[i])) {
      return common::Status::InvalidArgument(common::StrFormat(
          "table %s: column %s expects %s, got %s", name_.c_str(),
          col.name.c_str(), std::string(ColumnTypeName(col.type)).c_str(),
          std::string(ColumnTypeName(row[i].type())).c_str()));
    }
    // Widen int literals stored into DOUBLE columns so the storage is
    // uniformly typed.
    if (col.type == ColumnType::kDouble && row[i].is_int()) {
      row[i] = Value::Real(static_cast<double>(row[i].AsInt()));
    }
  }
  rows_.push_back(std::move(row));
  return common::Status::Ok();
}

common::Result<std::vector<Value>> Table::ColumnValues(
    std::string_view name) const {
  auto idx = schema_.Find(name);
  if (!idx.has_value()) {
    return common::Status::NotFound(
        common::StrFormat("no column named %s", std::string(name).c_str()));
  }
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[*idx]);
  return out;
}

common::Result<Table> Table::Project(
    const std::vector<std::string>& column_names) const {
  std::vector<size_t> indices;
  Schema projected;
  for (const auto& name : column_names) {
    auto idx = schema_.Find(name);
    if (!idx.has_value()) {
      return common::Status::NotFound(
          common::StrFormat("no column named %s", name.c_str()));
    }
    indices.push_back(*idx);
    projected.AddColumn(schema_.column(*idx));
  }
  Table out(name_, std::move(projected));
  for (const Row& r : rows_) {
    Row pr;
    pr.reserve(indices.size());
    for (size_t idx : indices) pr.push_back(r[idx]);
    out.AppendRowUnchecked(std::move(pr));
  }
  return out;
}

bool Table::BagEquals(const Table& other) const {
  if (NumColumns() != other.NumColumns()) return false;
  if (NumRows() != other.NumRows()) return false;
  auto sorted_rows = [](const Table& t) {
    std::vector<Row> rs = t.rows();
    std::sort(rs.begin(), rs.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (a[i] < b[i]) return true;
        if (b[i] < a[i]) return false;
      }
      return a.size() < b.size();
    });
    return rs;
  };
  std::vector<Row> a = sorted_rows(*this);
  std::vector<Row> b = sorted_rows(other);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!(a[i][j] == b[i][j])) return false;
    }
  }
  return true;
}

uint64_t Table::BagHash() const {
  // XOR of per-row hashes is order-insensitive; row hash chains cell hashes.
  uint64_t acc = 0x7461626CULL ^ (NumColumns() * 0x9E3779B97F4A7C15ULL);
  for (const Row& r : rows_) {
    uint64_t rh = 0x726F77ULL;
    for (const Value& v : r) rh = common::HashCombine(rh, v.Hash());
    acc ^= rh * 0xC4CEB9FE1A85EC53ULL;
  }
  return acc;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.size());
  for (size_t i = 0; i < schema_.size(); ++i)
    widths[i] = schema_.column(i).name.size();
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto pad = [](const std::string& s, size_t w) {
    std::string p = s;
    p.resize(w, ' ');
    return p;
  };
  for (size_t c = 0; c < schema_.size(); ++c) {
    out += pad(schema_.column(c).name, widths[c]);
    out += (c + 1 == schema_.size()) ? "\n" : " | ";
  }
  for (size_t c = 0; c < schema_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 == schema_.size()) ? "\n" : "-+-";
  }
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      out += pad(cells[r][c], widths[c]);
      out += (c + 1 == schema_.size()) ? "\n" : " | ";
    }
  }
  if (shown < rows_.size()) {
    out += common::StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

std::string Table::SerializeRowAsText(size_t row_index) const {
  std::string out;
  const Row& r = rows_[row_index];
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) out += "; ";
    out += schema_.column(c).name;
    out += " is ";
    out += r[c].ToString();
  }
  return out;
}

}  // namespace llmdm::data
