#include "data/qa_workload.h"

#include "common/string_util.h"

namespace llmdm::data {
namespace {

const char* const kFirstNames[] = {
    "Alice",  "Bob",    "Carol",  "David",  "Erin",   "Frank",  "Grace",
    "Henry",  "Iris",   "Jack",   "Karen",  "Liam",   "Mona",   "Noah",
    "Olivia", "Peter",  "Quinn",  "Rose",   "Sam",    "Tina",   "Uma",
    "Victor", "Wendy",  "Xander", "Yara",   "Zane",
};
const char* const kLastNames[] = {
    "Adams",   "Baker",  "Chen",    "Diaz",   "Evans",  "Fischer", "Garcia",
    "Hughes",  "Ibrahim","Jones",   "Kim",    "Lopez",  "Miller",  "Nguyen",
    "Olsen",   "Patel",  "Quimby",  "Rossi",  "Smith",  "Tanaka",  "Ueda",
    "Vargas",  "Wong",   "Xu",      "Yilmaz", "Zhang",
};
const char* const kRelations[] = {"advisor", "manager", "coauthor", "mentor",
                                  "neighbor"};

}  // namespace

KnowledgeBase KnowledgeBase::Generate(size_t num_entities, common::Rng& rng) {
  KnowledgeBase kb;
  kb.relations_.assign(std::begin(kRelations), std::end(kRelations));
  // Unique names: first-last pairs, suffixed if the pool is exhausted.
  size_t pool = std::size(kFirstNames) * std::size(kLastNames);
  for (size_t i = 0; i < num_entities; ++i) {
    size_t pick = (i < pool) ? i : i % pool;
    std::string name = std::string(kFirstNames[pick % std::size(kFirstNames)]) +
                       " " + kLastNames[pick / std::size(kFirstNames) %
                                        std::size(kLastNames)];
    if (i >= pool) name += common::StrFormat(" %zu", i / pool + 1);
    kb.entities_.push_back(std::move(name));
  }
  // Total functional relations: relation(subject) -> a random entity.
  for (const std::string& rel : kb.relations_) {
    for (const std::string& subject : kb.entities_) {
      const std::string& object = kb.entities_[rng.NextBelow(kb.entities_.size())];
      kb.facts_[{rel, subject}] = object;
    }
  }
  return kb;
}

common::Result<std::string> KnowledgeBase::Lookup(
    const std::string& relation, const std::string& subject) const {
  auto it = facts_.find({relation, subject});
  if (it == facts_.end()) {
    return common::Status::NotFound("no fact " + relation + "(" + subject +
                                    ")");
  }
  return it->second;
}

common::Result<std::string> KnowledgeBase::AnswerChain(
    const std::vector<std::string>& chain, const std::string& subject) const {
  std::string current = subject;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    LLMDM_ASSIGN_OR_RETURN(current, Lookup(*it, current));
  }
  return current;
}

std::string KnowledgeBase::Describe() const {
  std::string out;
  for (const auto& [key, object] : facts_) {
    out += "The " + key.first + " of " + key.second + " is " + object + ".\n";
  }
  return out;
}

std::string RenderChainQuestion(const std::vector<std::string>& chain,
                                const std::string& subject) {
  std::string out = "Who is";
  for (size_t i = 0; i < chain.size(); ++i) {
    out += " the " + chain[i] + " of";
  }
  out += " " + subject + "?";
  return out;
}

common::Result<std::pair<std::vector<std::string>, std::string>>
ParseChainQuestion(const std::string& question) {
  std::string_view rest = question;
  if (!common::StartsWith(rest, "Who is ")) {
    return common::Status::InvalidArgument("not a chain question: " + question);
  }
  rest.remove_prefix(7);
  std::vector<std::string> chain;
  while (common::StartsWith(rest, "the ")) {
    rest.remove_prefix(4);
    size_t of = rest.find(" of ");
    if (of == std::string_view::npos) {
      return common::Status::InvalidArgument("malformed chain question");
    }
    chain.emplace_back(rest.substr(0, of));
    rest.remove_prefix(of + 4);
  }
  if (chain.empty() || rest.empty() || rest.back() != '?') {
    return common::Status::InvalidArgument("malformed chain question");
  }
  rest.remove_suffix(1);
  return std::make_pair(std::move(chain), std::string(rest));
}

std::vector<QaItem> GenerateQaWorkload(const KnowledgeBase& kb, size_t n,
                                       const std::vector<double>& hop_weights,
                                       common::Rng& rng) {
  std::vector<QaItem> out;
  double total_weight = 0;
  for (double w : hop_weights) total_weight += w;
  for (size_t i = 0; i < n; ++i) {
    // Sample a hop count from the weight vector.
    double u = rng.UniformDouble() * total_weight;
    int hops = 1;
    double acc = 0;
    for (size_t h = 0; h < hop_weights.size(); ++h) {
      acc += hop_weights[h];
      if (u <= acc) {
        hops = static_cast<int>(h) + 1;
        break;
      }
    }
    std::vector<std::string> chain;
    for (int h = 0; h < hops; ++h) {
      chain.push_back(rng.Choice(kb.relations()));
    }
    const std::string& subject = rng.Choice(kb.entities());
    QaItem item;
    item.question = RenderChainQuestion(chain, subject);
    item.answer = kb.AnswerChain(chain, subject).value_or("");
    item.hops = hops;
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace llmdm::data
