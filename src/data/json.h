#ifndef LLMDM_DATA_JSON_H_
#define LLMDM_DATA_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace llmdm::data {

/// Minimal JSON document model. Objects preserve key insertion order (schema
/// extraction from semi-structured documents depends on field order being
/// stable).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& mutable_items() { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue v);
  /// Returns nullptr when absent.
  const JsonValue* Find(std::string_view key) const;

  /// Compact serialization (no whitespace).
  std::string ToString() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Recursive-descent JSON parser (full string escapes, nested
/// structures, numbers with exponents). Rejects trailing garbage.
common::Result<JsonValue> ParseJson(std::string_view text);

}  // namespace llmdm::data

#endif  // LLMDM_DATA_JSON_H_
