#ifndef LLMDM_DATA_VALUE_H_
#define LLMDM_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace llmdm::data {

/// Column types understood by the relational layer and the SQL engine.
enum class ColumnType {
  kNull = 0,  // only appears as the type of a bare NULL literal
  kBool,
  kInt64,
  kDouble,
  kText,
  kDate,
};

std::string_view ColumnTypeName(ColumnType type);

/// Calendar date. Stored as civil fields; ordering is lexicographic on
/// (year, month, day). Used by the column-pattern miner (date reformatting is
/// the paper's running example of a column transformation).
struct Date {
  int32_t year = 1970;
  int32_t month = 1;
  int32_t day = 1;

  auto operator<=>(const Date&) const = default;

  /// ISO "YYYY-MM-DD".
  std::string ToString() const;
};

/// A dynamically typed scalar cell. NULL is modeled as monostate so that SQL
/// three-valued logic can distinguish it from any typed value.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Real(double d) { return Value(Payload(d)); }
  static Value Text(std::string s) { return Value(Payload(std::move(s))); }
  static Value MakeDate(Date d) { return Value(Payload(d)); }
  static Value MakeDate(int32_t y, int32_t m, int32_t day) {
    return Value(Payload(Date{y, m, day}));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }
  bool is_date() const { return std::holds_alternative<Date>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  ColumnType type() const;

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const;  // widens int64 -> double
  const std::string& AsText() const { return std::get<std::string>(v_); }
  const Date& AsDate() const { return std::get<Date>(v_); }

  /// SQL-style rendering: NULL, TRUE/FALSE, numbers, bare text, ISO dates.
  std::string ToString() const;

  /// Equality with NULL == NULL (used for result-set comparison, where the
  /// bag semantics treat NULLs as identical). Numeric int/double compare by
  /// value (1 == 1.0).
  bool operator==(const Value& other) const;

  /// Total order for sorting result sets: NULL first, then by type, then by
  /// value; int/double compare numerically.
  bool operator<(const Value& other) const;

  /// Stable hash consistent with operator==.
  uint64_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;
  explicit Value(Payload v) : v_(std::move(v)) {}

  Payload v_;
};

}  // namespace llmdm::data

#endif  // LLMDM_DATA_VALUE_H_
