#ifndef LLMDM_DATA_CSV_H_
#define LLMDM_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/table.h"

namespace llmdm::data {

struct CsvOptions {
  char delimiter = ',';
  /// First line is a header row.
  bool has_header = true;
  /// Infer INT/DOUBLE/DATE/BOOL column types from the data; otherwise all
  /// columns are TEXT.
  bool infer_types = true;
};

/// Parses RFC-4180-style CSV (quoted fields, embedded quotes doubled,
/// embedded newlines inside quotes) into a Table.
common::Result<Table> ParseCsv(std::string_view text,
                               const CsvOptions& options = CsvOptions{});

/// Serializes a table to CSV with a header row, quoting where needed.
std::string WriteCsv(const Table& table, char delimiter = ',');

/// Parses "YYYY-MM-DD" into a Date.
bool ParseIsoDate(std::string_view text, Date* out);

}  // namespace llmdm::data

#endif  // LLMDM_DATA_CSV_H_
