#ifndef LLMDM_DATA_TXN_WORKLOAD_H_
#define LLMDM_DATA_TXN_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace llmdm::data {

/// One money movement in an NL2Transaction request (the paper's Alice buys a
/// laptop from Bob + freight example, Sec. II-B.1).
struct TransferSpec {
  std::string from;
  std::string to;
  int64_t amount = 0;  // whole dollars

  bool operator==(const TransferSpec&) const = default;
};

/// A multi-step payment request that must execute atomically.
struct TxnRequest {
  std::vector<TransferSpec> transfers;

  bool operator==(const TxnRequest&) const = default;
};

/// Canonical NL: "Transfer 1000 dollars from Alice to Bob. Then transfer 5
/// dollars from Bob to Express.".
std::string RenderTxnRequest(const TxnRequest& request);

/// Inverse of RenderTxnRequest.
common::Result<TxnRequest> ParseTxnRequest(const std::string& text);

/// The SQL statement sequence implementing the request over
/// accounts(owner TEXT, balance INT): debit, credit and a ledger INSERT per
/// transfer. Must run inside one transaction.
std::vector<std::string> TxnToSql(const TxnRequest& request);

/// DDL + seed balances for the accounts schema.
std::string BuildAccountsDatabaseScript(const std::vector<std::string>& owners,
                                        int64_t initial_balance);

/// Random multi-transfer requests over `owners` (1-3 transfers each).
std::vector<TxnRequest> GenerateTxnWorkload(
    size_t n, const std::vector<std::string>& owners, common::Rng& rng);

}  // namespace llmdm::data

#endif  // LLMDM_DATA_TXN_WORKLOAD_H_
