#ifndef LLMDM_DATA_QA_WORKLOAD_H_
#define LLMDM_DATA_QA_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace llmdm::data {

/// A functional fact graph: relation(subject) = object, over generated person
/// entities. Multi-hop questions compose relations, mirroring HotpotQA's
/// multi-hop structure (the Table I workload substitution — see DESIGN.md).
class KnowledgeBase {
 public:
  /// Generates a knowledge base with `num_entities` people and a fixed
  /// relation vocabulary (advisor, manager, coauthor, mentor, neighbor).
  /// Every relation is total and functional so that chain questions have a
  /// unique gold answer.
  static KnowledgeBase Generate(size_t num_entities, common::Rng& rng);

  const std::vector<std::string>& entities() const { return entities_; }
  const std::vector<std::string>& relations() const { return relations_; }

  /// relation(subject), e.g. Lookup("advisor", "Alice Adams").
  common::Result<std::string> Lookup(const std::string& relation,
                                     const std::string& subject) const;

  /// Follows a chain: AnswerChain({"manager","advisor"}, "Alice") =
  /// manager(advisor(Alice)). The chain is applied right-to-left, matching
  /// the phrasing "the manager of the advisor of Alice".
  common::Result<std::string> AnswerChain(
      const std::vector<std::string>& chain, const std::string& subject) const;

  /// All facts rendered one per line ("The advisor of X is Y.") — the
  /// context corpus a retrieval-augmented answerer would consume.
  std::string Describe() const;

  size_t NumFacts() const { return facts_.size(); }

 private:
  std::vector<std::string> entities_;
  std::vector<std::string> relations_;
  // (relation, subject) -> object
  std::map<std::pair<std::string, std::string>, std::string> facts_;
};

/// One QA benchmark item.
struct QaItem {
  std::string question;
  std::string answer;
  int hops = 1;  // difficulty proxy: 1..3
};

/// Renders the canonical question for a relation chain, e.g.
/// {"manager","advisor"} + "Alice" -> "Who is the manager of the advisor of
/// Alice?".
std::string RenderChainQuestion(const std::vector<std::string>& chain,
                                const std::string& subject);

/// Parses a chain question back into (chain, subject); inverse of
/// RenderChainQuestion. This is how the simulated QA skill "understands" the
/// question.
common::Result<std::pair<std::vector<std::string>, std::string>>
ParseChainQuestion(const std::string& question);

/// Generates `n` questions over `kb` with hop counts drawn from
/// `hop_weights` (index i = weight of (i+1)-hop questions).
std::vector<QaItem> GenerateQaWorkload(const KnowledgeBase& kb, size_t n,
                                       const std::vector<double>& hop_weights,
                                       common::Rng& rng);

}  // namespace llmdm::data

#endif  // LLMDM_DATA_QA_WORKLOAD_H_
