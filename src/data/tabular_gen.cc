#include "data/tabular_gen.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace llmdm::data {
namespace {

const char* const kBrands[] = {"Acme",  "Globex", "Initech", "Umbrella",
                               "Stark", "Wayne",  "Hooli",   "Vandelay"};
const char* const kProducts[] = {"Laptop",  "Phone",   "Monitor", "Keyboard",
                                 "Printer", "Router",  "Tablet",  "Camera",
                                 "Speaker", "Charger"};
const char* const kCountries[] = {"USA",    "UK",     "France", "Germany",
                                  "Japan",  "Brazil", "India",  "Canada"};
const char* const kPeople[] = {"Michael Jordan", "Serena Williams",
                               "Lionel Messi",   "Marie Curie",
                               "Alan Turing",    "Grace Hopper"};
const char* const kSports[] = {"Basketball", "Badminton", "Table Tennis",
                               "Soccer",     "Tennis",    "Swimming"};
const char* const kMovies[] = {"Inception",    "Arrival",  "Parasite",
                               "The Matrix",   "Amelie",   "Coco"};
const char* const kCities2[] = {"Paris",  "Tokyo",  "Boston", "Berlin",
                                "Sydney", "Mumbai", "Lagos",  "Quito"};

}  // namespace

Table GeneratePatientTable(const PatientDataOptions& options,
                           common::Rng& rng) {
  Table t("patients", Schema({
                          {"patient_id", ColumnType::kInt64, false},
                          {"age", ColumnType::kInt64, true},
                          {"sex", ColumnType::kText, true},
                          {"bmi", ColumnType::kDouble, true},
                          {"systolic_bp", ColumnType::kInt64, true},
                          {"cholesterol", ColumnType::kInt64, true},
                          {"smoker", ColumnType::kBool, true},
                          {"has_heart_disease", ColumnType::kBool, true},
                      }));
  for (size_t i = 0; i < options.num_rows; ++i) {
    int64_t age = rng.UniformInt(25, 85);
    bool male = rng.Bernoulli(0.5);
    double bmi = std::round(rng.Normal(26.0, 4.0) * 10.0) / 10.0;
    bmi = std::clamp(bmi, 15.0, 45.0);
    int64_t bp = rng.UniformInt(95, 185);
    int64_t chol = rng.UniformInt(140, 300);
    bool smoker = rng.Bernoulli(0.3);
    // Logistic risk model: older, higher BP/cholesterol/BMI and smoking all
    // raise risk. Coefficients are steep enough that the Bayes accuracy is
    // ~0.85 (a learnable problem), with a ~40% positive rate.
    double z = -19.5 + 0.10 * double(age) + 0.04 * double(bp) +
               0.016 * double(chol) + 0.12 * bmi + (smoker ? 1.8 : 0.0) +
               (male ? 0.6 : 0.0);
    double p = 1.0 / (1.0 + std::exp(-z));
    bool label = rng.Bernoulli(p);
    if (rng.Bernoulli(options.label_noise)) label = !label;
    Row row{Value::Int(static_cast<int64_t>(i) + 1),
            Value::Int(age),
            Value::Text(male ? "M" : "F"),
            Value::Real(bmi),
            Value::Int(bp),
            Value::Int(chol),
            Value::Bool(smoker),
            Value::Bool(label)};
    t.AppendRowUnchecked(std::move(row));
  }
  return t;
}

std::vector<size_t> InjectMissing(Table* table, const std::string& column,
                                  double fraction, common::Rng& rng) {
  std::vector<size_t> blanked;
  auto idx = table->schema().Find(column);
  if (!idx.has_value()) return blanked;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    if (rng.Bernoulli(fraction)) {
      (*table->mutable_row(r))[*idx] = Value::Null();
      blanked.push_back(r);
    }
  }
  return blanked;
}

std::string PerturbEntityText(const std::string& text, double severity,
                              common::Rng& rng) {
  std::vector<std::string> tokens = common::SplitWhitespace(text);
  for (std::string& tok : tokens) {
    if (tok.size() > 3 && rng.Bernoulli(severity * 0.5)) {
      tok = tok.substr(0, 3) + ".";  // abbreviate
    } else if (rng.Bernoulli(severity * 0.4)) {
      tok = common::ToLower(tok);  // case damage
    } else if (tok.size() > 2 && rng.Bernoulli(severity * 0.3)) {
      size_t pos = 1 + rng.NextBelow(tok.size() - 2);
      std::swap(tok[pos], tok[pos + 1]);  // transposition typo
    }
  }
  if (tokens.size() > 2 && rng.Bernoulli(severity * 0.3)) {
    size_t pos = rng.NextBelow(tokens.size() - 1);
    std::swap(tokens[pos], tokens[pos + 1]);  // token swap
  }
  return common::Join(tokens, " ");
}

std::vector<ErPair> GenerateErWorkload(size_t num_pairs, double dirt,
                                       common::Rng& rng) {
  // Entity universe: brand + product + model number.
  std::vector<std::string> entities;
  for (const char* brand : kBrands) {
    for (const char* product : kProducts) {
      entities.push_back(common::StrFormat("%s %s Model %lld", brand, product,
                                           (long long)rng.UniformInt(100, 999)));
    }
  }
  std::vector<ErPair> out;
  for (size_t i = 0; i < num_pairs; ++i) {
    ErPair pair;
    if (rng.Bernoulli(0.5)) {
      const std::string& e = rng.Choice(entities);
      pair.left = e;
      pair.right = PerturbEntityText(e, dirt, rng);
      pair.is_match = true;
    } else {
      const std::string& a = rng.Choice(entities);
      std::string b = rng.Choice(entities);
      for (int attempt = 0; attempt < 4 && b == a; ++attempt) {
        b = rng.Choice(entities);
      }
      pair.left = a;
      pair.right = PerturbEntityText(b, dirt * 0.5, rng);
      pair.is_match = (a == b);
    }
    out.push_back(std::move(pair));
  }
  return out;
}

std::vector<std::string> CtaLabels() {
  return {"country", "person", "sports", "movie", "city"};
}

const std::vector<std::pair<std::string, std::vector<std::string>>>&
CtaGazetteer() {
  static const auto& kGazetteer = *new std::vector<
      std::pair<std::string, std::vector<std::string>>>{
      {"country", {std::begin(kCountries), std::end(kCountries)}},
      {"person", {std::begin(kPeople), std::end(kPeople)}},
      {"sports", {std::begin(kSports), std::end(kSports)}},
      {"movie", {std::begin(kMovies), std::end(kMovies)}},
      {"city", {std::begin(kCities2), std::end(kCities2)}},
  };
  return kGazetteer;
}

std::vector<CtaExample> GenerateCtaWorkload(size_t num_examples,
                                            common::Rng& rng) {
  auto pick = [&rng](const char* const* pool, size_t n, size_t want) {
    std::vector<std::string> out;
    for (size_t i = 0; i < want; ++i) out.push_back(pool[rng.NextBelow(n)]);
    return out;
  };
  std::vector<CtaExample> out;
  for (size_t i = 0; i < num_examples; ++i) {
    CtaExample ex;
    switch (rng.NextBelow(5)) {
      case 0:
        ex.values = pick(kCountries, std::size(kCountries), 3);
        ex.label = "country";
        break;
      case 1:
        ex.values = pick(kPeople, std::size(kPeople), 3);
        ex.label = "person";
        break;
      case 2:
        ex.values = pick(kSports, std::size(kSports), 3);
        ex.label = "sports";
        break;
      case 3:
        ex.values = pick(kMovies, std::size(kMovies), 3);
        ex.label = "movie";
        break;
      default:
        ex.values = pick(kCities2, std::size(kCities2), 3);
        ex.label = "city";
        break;
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace llmdm::data
