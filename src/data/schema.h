#ifndef LLMDM_DATA_SCHEMA_H_
#define LLMDM_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

namespace llmdm::data {

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool nullable = true;

  bool operator==(const Column&) const = default;
};

/// Ordered list of columns with case-insensitive name lookup (SQL
/// identifiers are case-insensitive).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Index of the column named `name` (case-insensitive), if present.
  std::optional<size_t> Find(std::string_view name) const;

  /// "name TYPE, name TYPE, ..." — used in prompts that describe schemas.
  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace llmdm::data

#endif  // LLMDM_DATA_SCHEMA_H_
