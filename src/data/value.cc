#include "data/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"

namespace llmdm::data {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNull:
      return "NULL";
    case ColumnType::kBool:
      return "BOOL";
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kText:
      return "TEXT";
    case ColumnType::kDate:
      return "DATE";
  }
  return "?";
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

ColumnType Value::type() const {
  if (is_null()) return ColumnType::kNull;
  if (is_bool()) return ColumnType::kBool;
  if (is_int()) return ColumnType::kInt64;
  if (is_double()) return ColumnType::kDouble;
  if (is_text()) return ColumnType::kText;
  return ColumnType::kDate;
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  return std::get<double>(v_);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    double d = std::get<double>(v_);
    // Render integral doubles without a trailing ".0"-less ambiguity but keep
    // precision for fractional values.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      return common::StrFormat("%.1f", d);
    }
    return common::StrFormat("%.6g", d);
  }
  if (is_text()) return AsText();
  return AsDate().ToString();
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return AsInt() == other.AsInt();
    return AsDouble() == other.AsDouble();
  }
  return v_ == other.v_;
}

bool Value::operator<(const Value& other) const {
  // NULLs sort first.
  if (is_null() != other.is_null()) return is_null();
  if (is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() < other.AsDouble();
  }
  if (v_.index() != other.v_.index()) return v_.index() < other.v_.index();
  return v_ < other.v_;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6E756C6CULL;
  if (is_bool()) return AsBool() ? 0x74727565ULL : 0x66616C73ULL;
  if (is_numeric()) {
    // Hash int-valued doubles identically to ints (consistent with ==).
    double d = AsDouble();
    if (d == std::floor(d) && std::abs(d) < 9.2e18) {
      int64_t i = static_cast<int64_t>(d);
      return common::HashCombine(0x696E74ULL, static_cast<uint64_t>(i));
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return common::HashCombine(0x646F7562ULL, bits);
  }
  if (is_text()) return common::Fnv1a(AsText());
  const Date& dt = AsDate();
  uint64_t h = common::HashCombine(0x64617465ULL, static_cast<uint64_t>(dt.year));
  h = common::HashCombine(h, static_cast<uint64_t>(dt.month));
  return common::HashCombine(h, static_cast<uint64_t>(dt.day));
}

}  // namespace llmdm::data
