#include "data/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace llmdm::data {

const XmlNode* XmlNode::FindChild(std::string_view child_tag) const {
  for (const auto& c : children) {
    if (c->tag == child_tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(
    std::string_view child_tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->tag == child_tag) out.push_back(c.get());
  }
  return out;
}

std::string_view XmlNode::Attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return v;
  }
  return {};
}

namespace {

void EscapeInto(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        *out += "&quot;";
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeInto(const XmlNode& node, std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  *out += node.tag;
  for (const auto& [k, v] : node.attributes) {
    out->push_back(' ');
    *out += k;
    *out += "=\"";
    EscapeInto(v, out);
    out->push_back('"');
  }
  std::string_view trimmed = common::Trim(node.text);
  if (node.children.empty() && trimmed.empty()) {
    *out += "/>\n";
    return;
  }
  out->push_back('>');
  if (!trimmed.empty()) {
    EscapeInto(trimmed, out);
  }
  if (!node.children.empty()) {
    out->push_back('\n');
    for (const auto& c : node.children) SerializeInto(*c, out, depth + 1);
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  *out += "</";
  *out += node.tag;
  *out += ">\n";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<std::unique_ptr<XmlNode>> Parse() {
    SkipProlog();
    LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipWsAndComments();
    if (pos_ != text_.size()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "XML: trailing characters at offset %zu", pos_));
    }
    return root;
  }

 private:
  common::Status Error(const std::string& what) {
    return common::Status::InvalidArgument(common::StrFormat(
        "XML parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool SkipComment() {
    if (text_.substr(pos_, 4) == "<!--") {
      size_t end = text_.find("-->", pos_ + 4);
      pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      return true;
    }
    return false;
  }

  void SkipWsAndComments() {
    for (;;) {
      SkipWs();
      if (!SkipComment()) return;
    }
  }

  void SkipProlog() {
    SkipWs();
    if (text_.substr(pos_, 5) == "<?xml") {
      size_t end = text_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
    }
    SkipWsAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string DecodeEntities(std::string_view s) {
    std::string out;
    for (size_t i = 0; i < s.size();) {
      if (s[i] == '&') {
        if (s.substr(i, 4) == "&lt;") {
          out.push_back('<');
          i += 4;
          continue;
        }
        if (s.substr(i, 4) == "&gt;") {
          out.push_back('>');
          i += 4;
          continue;
        }
        if (s.substr(i, 5) == "&amp;") {
          out.push_back('&');
          i += 5;
          continue;
        }
        if (s.substr(i, 6) == "&quot;") {
          out.push_back('"');
          i += 6;
          continue;
        }
        if (s.substr(i, 6) == "&apos;") {
          out.push_back('\'');
          i += 6;
          continue;
        }
      }
      out.push_back(s[i]);
      ++i;
    }
    return out;
  }

  common::Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Error("expected '<'");
    }
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    node->tag = ParseName();
    if (node->tag.empty()) return Error("empty tag name");
    // Attributes.
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated start tag");
      if (text_[pos_] == '/') {
        if (text_.substr(pos_, 2) != "/>") return Error("bad empty-tag close");
        pos_ += 2;
        return node;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      std::string name = ParseName();
      if (name.empty()) return Error("bad attribute name");
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '=')
        return Error("expected '=' after attribute name");
      ++pos_;
      SkipWs();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\''))
        return Error("expected quoted attribute value");
      char quote = text_[pos_++];
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated attribute value");
      node->attributes.emplace_back(
          std::move(name), DecodeEntities(text_.substr(start, pos_ - start)));
      ++pos_;
    }
    // Content.
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated element");
      if (SkipComment()) continue;
      if (text_[pos_] == '<') {
        if (text_.substr(pos_, 2) == "</") {
          pos_ += 2;
          std::string closing = ParseName();
          if (closing != node->tag) {
            return Error(common::StrFormat("mismatched closing tag %s for %s",
                                           closing.c_str(),
                                           node->tag.c_str()));
          }
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != '>')
            return Error("expected '>' in closing tag");
          ++pos_;
          return node;
        }
        LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->children.push_back(std::move(child));
      } else {
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        node->text += DecodeEntities(text_.substr(start, pos_ - start));
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlNode::ToString() const {
  std::string out;
  SerializeInto(*this, &out, 0);
  return out;
}

common::Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace llmdm::data
