#ifndef LLMDM_DATA_NL2SQL_WORKLOAD_H_
#define LLMDM_DATA_NL2SQL_WORKLOAD_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace llmdm::data {

/// The Spider-inspired stadium/concert/sports_meeting domain used by the
/// paper's Q1–Q5 running example (Sec. III-B.1, Fig. 7). The workload is a
/// family of natural-language questions with known semantics; grading is by
/// executing gold and predicted SQL on the same database.
///
/// Query shape:
///   "names of stadiums that had <event> in <year>
///    [or/and/but-did-not-have <event> in <year>]"
/// plus superlative variants ("the most number of <event> in <year>").

enum class EventKind { kConcert, kSportsMeeting };

std::string_view EventTable(EventKind kind);    // "concert" etc.
std::string_view EventPhrase(EventKind kind);   // "concerts" etc.

/// One event condition: which event table, which year.
struct EventCondition {
  EventKind event = EventKind::kConcert;
  int year = 2014;
  bool superlative = false;  // "the most number of ..."

  bool operator==(const EventCondition&) const = default;

  /// Canonical sub-question text, e.g.
  /// "stadiums that had concerts in 2014" — the decomposition unit of Fig 7.
  std::string ToSubQuestion() const;

  /// SQL returning matching stadium ids (a sub-query body).
  std::string ToIdSubquery() const;
};

/// How two conditions combine in a compound question.
enum class Combiner { kNone, kOr, kAnd, kAndNot };

/// A fully-specified NL2SQL task instance.
struct Nl2SqlQuery {
  EventCondition first;
  Combiner combiner = Combiner::kNone;
  std::optional<EventCondition> second;

  /// Natural-language rendering (the paper's phrasing).
  std::string ToNaturalLanguage() const;

  /// Gold SQL over the stadium schema.
  std::string ToGoldSql() const;

  /// Number of atomic conditions (difficulty proxy: 1 or 2, +1 if any
  /// superlative).
  int Complexity() const;

  bool operator==(const Nl2SqlQuery&) const = default;
};

/// Parses the canonical NL phrasing back into a structured query. This is
/// the "understanding" half of the simulated NL2SQL model; returns an error
/// for text outside the family (the model then reports it cannot translate).
common::Result<Nl2SqlQuery> ParseNl2SqlQuestion(const std::string& question);

/// SQL DDL + INSERTs creating a populated stadium database. `num_stadiums`
/// stadiums, events drawn across `years`.
std::string BuildStadiumDatabaseScript(size_t num_stadiums,
                                       const std::vector<int>& years,
                                       common::Rng& rng);

struct Nl2SqlWorkloadOptions {
  size_t num_queries = 20;
  /// Probability that a query is compound (two conditions).
  double compound_rate = 0.6;
  /// Probability that a condition is superlative.
  double superlative_rate = 0.2;
  /// Controls sub-query sharing across the workload: conditions are drawn
  /// from a pool of `condition_pool` distinct (event, year) pairs; smaller
  /// pool = more shared sub-queries (the lever behind Table II / Fig 7).
  size_t condition_pool = 4;
  std::vector<int> years = {2014, 2015};
};

/// Generates a workload with controllable sub-query sharing.
std::vector<Nl2SqlQuery> GenerateNl2SqlWorkload(
    const Nl2SqlWorkloadOptions& options, common::Rng& rng);

/// The paper's exact Q1–Q5 (Sec. III-B.1).
std::vector<Nl2SqlQuery> PaperQ1ToQ5();

}  // namespace llmdm::data

#endif  // LLMDM_DATA_NL2SQL_WORKLOAD_H_
