#include "data/schema.h"

#include "common/string_util.h"

namespace llmdm::data {

std::optional<size_t> Schema::Find(std::string_view name) const {
  std::string lowered = common::ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (common::ToLower(columns_[i].name) == lowered) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ColumnTypeName(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  return out;
}

}  // namespace llmdm::data
