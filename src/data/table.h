#ifndef LLMDM_DATA_TABLE_H_
#define LLMDM_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace llmdm::data {

using Row = std::vector<Value>;

/// In-memory row-store table. This is the exchange format for everything in
/// the library: the SQL engine's storage and result sets, the transformation
/// targets, the integration inputs, and the ML training sets.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return schema_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  Row* mutable_row(size_t i) { return &rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Appends a row after checking arity, type compatibility (NULLs allowed in
  /// nullable columns, ints accepted in double columns).
  common::Status AppendRow(Row row);

  /// Appends without validation (hot path for the executor, which constructs
  /// well-typed rows by construction).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Clear() { rows_.clear(); }

  /// Column values as a vector (for pattern mining / stats).
  common::Result<std::vector<Value>> ColumnValues(std::string_view name) const;

  /// Projection keeping `column_names` in order.
  common::Result<Table> Project(const std::vector<std::string>& column_names) const;

  /// Bag (multiset) equality of rows, ignoring row order and column names but
  /// not column order. This is the "execution match" criterion used to grade
  /// generated SQL, as in text-to-SQL benchmarks.
  bool BagEquals(const Table& other) const;

  /// Deterministic fingerprint of the row bag (order-insensitive).
  uint64_t BagHash() const;

  /// Pretty-printed grid (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

  /// One row serialized as "col1 is v1; col2 is v2; ..." — the row
  /// serialization the paper describes for feeding tabular data to LLMs.
  std::string SerializeRowAsText(size_t row_index) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace llmdm::data

#endif  // LLMDM_DATA_TABLE_H_
