#include "data/txn_workload.h"

#include "common/string_util.h"

namespace llmdm::data {

std::string RenderTxnRequest(const TxnRequest& request) {
  std::string out;
  for (size_t i = 0; i < request.transfers.size(); ++i) {
    const TransferSpec& t = request.transfers[i];
    if (i > 0) out += " Then transfer ";
    else out += "Transfer ";
    out += common::StrFormat("%lld dollars from %s to %s.",
                             (long long)t.amount, t.from.c_str(),
                             t.to.c_str());
  }
  return out;
}

common::Result<TxnRequest> ParseTxnRequest(const std::string& text) {
  TxnRequest request;
  std::string_view rest = text;
  for (;;) {
    rest = common::Trim(rest);
    if (rest.empty()) break;
    for (std::string_view prefix :
         {std::string_view("Then transfer "), std::string_view("Transfer "),
          std::string_view("transfer ")}) {
      if (common::StartsWith(rest, prefix)) {
        rest.remove_prefix(prefix.size());
        break;
      }
    }
    size_t dollars = rest.find(" dollars from ");
    if (dollars == std::string_view::npos) {
      return common::Status::InvalidArgument("not a transfer request: " +
                                             text);
    }
    TransferSpec t;
    if (!common::ParseInt64(rest.substr(0, dollars), &t.amount)) {
      return common::Status::InvalidArgument("bad amount in: " + text);
    }
    rest.remove_prefix(dollars + std::string_view(" dollars from ").size());
    size_t to = rest.find(" to ");
    if (to == std::string_view::npos) {
      return common::Status::InvalidArgument("missing recipient in: " + text);
    }
    t.from = std::string(rest.substr(0, to));
    rest.remove_prefix(to + 4);
    size_t period = rest.find('.');
    if (period == std::string_view::npos) {
      return common::Status::InvalidArgument("missing '.' in: " + text);
    }
    t.to = std::string(rest.substr(0, period));
    rest.remove_prefix(period + 1);
    request.transfers.push_back(std::move(t));
  }
  if (request.transfers.empty()) {
    return common::Status::InvalidArgument("no transfers found in: " + text);
  }
  return request;
}

std::vector<std::string> TxnToSql(const TxnRequest& request) {
  std::vector<std::string> out;
  for (const TransferSpec& t : request.transfers) {
    out.push_back(common::StrFormat(
        "UPDATE accounts SET balance = balance - %lld WHERE owner = '%s'",
        (long long)t.amount, t.from.c_str()));
    out.push_back(common::StrFormat(
        "UPDATE accounts SET balance = balance + %lld WHERE owner = '%s'",
        (long long)t.amount, t.to.c_str()));
    out.push_back(common::StrFormat(
        "INSERT INTO transfers (sender, receiver, amount) VALUES "
        "('%s', '%s', %lld)",
        t.from.c_str(), t.to.c_str(), (long long)t.amount));
  }
  return out;
}

std::string BuildAccountsDatabaseScript(const std::vector<std::string>& owners,
                                        int64_t initial_balance) {
  std::string sql =
      "CREATE TABLE accounts (owner TEXT PRIMARY KEY, balance INT);\n"
      "CREATE TABLE transfers (sender TEXT, receiver TEXT, amount INT);\n";
  for (const std::string& owner : owners) {
    sql += common::StrFormat("INSERT INTO accounts VALUES ('%s', %lld);\n",
                             owner.c_str(), (long long)initial_balance);
  }
  return sql;
}

std::vector<TxnRequest> GenerateTxnWorkload(
    size_t n, const std::vector<std::string>& owners, common::Rng& rng) {
  std::vector<TxnRequest> out;
  for (size_t i = 0; i < n; ++i) {
    TxnRequest request;
    int64_t transfers = rng.UniformInt(1, 3);
    for (int64_t t = 0; t < transfers; ++t) {
      TransferSpec spec;
      spec.from = owners[rng.NextBelow(owners.size())];
      do {
        spec.to = owners[rng.NextBelow(owners.size())];
      } while (spec.to == spec.from && owners.size() > 1);
      spec.amount = rng.UniformInt(1, 50) * 10;
      request.transfers.push_back(std::move(spec));
    }
    out.push_back(std::move(request));
  }
  return out;
}

}  // namespace llmdm::data
