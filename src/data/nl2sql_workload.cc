#include "data/nl2sql_workload.h"

#include <algorithm>

#include "common/string_util.h"

namespace llmdm::data {
namespace {

const char* const kStadiumNames[] = {
    "Olympic",     "National",   "City Arena",  "River Park", "Sun Dome",
    "North Field", "Lake Court", "Grand Oval",  "West End",   "Harbor Bowl",
    "Summit Hall", "Valley Gym", "Metro Plaza", "Coast Ring", "Union Ground",
};
const char* const kCities[] = {
    "Beijing",  "Singapore", "Boston", "London", "Tokyo",
    "Berlin",   "Madrid",    "Sydney", "Toronto", "Mumbai",
};

}  // namespace

std::string_view EventTable(EventKind kind) {
  return kind == EventKind::kConcert ? "concert" : "sports_meeting";
}

std::string_view EventPhrase(EventKind kind) {
  return kind == EventKind::kConcert ? "concerts" : "sports meetings";
}

std::string EventCondition::ToSubQuestion() const {
  std::string out = "stadiums that had ";
  if (superlative) out += "the most number of ";
  out += EventPhrase(event);
  out += common::StrFormat(" in %d", year);
  return out;
}

std::string EventCondition::ToIdSubquery() const {
  std::string table(EventTable(event));
  if (superlative) {
    return common::StrFormat(
        "SELECT stadium_id FROM %s WHERE year = %d GROUP BY stadium_id "
        "ORDER BY COUNT(*) DESC LIMIT 1",
        table.c_str(), year);
  }
  return common::StrFormat("SELECT stadium_id FROM %s WHERE year = %d",
                           table.c_str(), year);
}

std::string Nl2SqlQuery::ToNaturalLanguage() const {
  std::string out = "What are the names of ";
  out += first.ToSubQuestion();
  if (second.has_value()) {
    switch (combiner) {
      case Combiner::kOr:
        out += " or had ";
        break;
      case Combiner::kAnd:
        out += " and had ";
        break;
      case Combiner::kAndNot:
        out += " but did not have ";
        break;
      case Combiner::kNone:
        break;
    }
    // Reuse the sub-question phrasing minus its leading "stadiums that had ".
    std::string second_text = second->ToSubQuestion();
    constexpr std::string_view kPrefix = "stadiums that had ";
    out += second_text.substr(kPrefix.size());
  }
  out += "?";
  return out;
}

std::string Nl2SqlQuery::ToGoldSql() const {
  std::string sql = "SELECT name FROM stadium WHERE id IN (" +
                    first.ToIdSubquery() + ")";
  if (second.has_value()) {
    switch (combiner) {
      case Combiner::kOr:
        sql += " OR id IN (" + second->ToIdSubquery() + ")";
        break;
      case Combiner::kAnd:
        sql += " AND id IN (" + second->ToIdSubquery() + ")";
        break;
      case Combiner::kAndNot:
        sql += " AND id NOT IN (" + second->ToIdSubquery() + ")";
        break;
      case Combiner::kNone:
        break;
    }
  }
  return sql;
}

int Nl2SqlQuery::Complexity() const {
  int c = 1;
  if (second.has_value()) ++c;
  if (first.superlative || (second.has_value() && second->superlative)) ++c;
  return c;
}

namespace {

// Parses "the most number of concerts in 2014"-style condition text.
common::Result<EventCondition> ParseCondition(std::string_view text) {
  EventCondition cond;
  constexpr std::string_view kSuperlative = "the most number of ";
  if (common::StartsWith(text, kSuperlative)) {
    cond.superlative = true;
    text.remove_prefix(kSuperlative.size());
  }
  if (common::StartsWith(text, "concerts in ")) {
    cond.event = EventKind::kConcert;
    text.remove_prefix(std::string_view("concerts in ").size());
  } else if (common::StartsWith(text, "sports meetings in ")) {
    cond.event = EventKind::kSportsMeeting;
    text.remove_prefix(std::string_view("sports meetings in ").size());
  } else {
    return common::Status::InvalidArgument("unknown event phrase: " +
                                           std::string(text));
  }
  int64_t year = 0;
  if (!common::ParseInt64(text, &year)) {
    return common::Status::InvalidArgument("bad year in condition: " +
                                           std::string(text));
  }
  cond.year = static_cast<int>(year);
  return cond;
}

}  // namespace

common::Result<Nl2SqlQuery> ParseNl2SqlQuestion(const std::string& question) {
  std::string_view rest = question;
  // Accept both "What are the names of ..." and "Show the names of ..."
  for (std::string_view prefix :
       {std::string_view("What are the names of stadiums that had "),
        std::string_view("Show the names of stadiums that had "),
        std::string_view("names of stadiums that had "),
        std::string_view("stadiums that had ")}) {
    if (common::StartsWith(rest, prefix)) {
      rest.remove_prefix(prefix.size());
      break;
    }
  }
  if (rest == question) {
    return common::Status::InvalidArgument("not a stadium question: " +
                                           question);
  }
  if (!rest.empty() && rest.back() == '?') rest.remove_suffix(1);
  rest = common::Trim(rest);

  Nl2SqlQuery query;
  // Find a combiner.
  struct Splitter {
    std::string_view text;
    Combiner combiner;
  };
  constexpr Splitter kSplitters[] = {
      {" or had ", Combiner::kOr},
      {" and had ", Combiner::kAnd},
      {" but did not have ", Combiner::kAndNot},
  };
  for (const Splitter& s : kSplitters) {
    size_t pos = rest.find(s.text);
    if (pos != std::string_view::npos) {
      LLMDM_ASSIGN_OR_RETURN(query.first, ParseCondition(rest.substr(0, pos)));
      LLMDM_ASSIGN_OR_RETURN(
          EventCondition second,
          ParseCondition(rest.substr(pos + s.text.size())));
      query.second = second;
      query.combiner = s.combiner;
      return query;
    }
  }
  LLMDM_ASSIGN_OR_RETURN(query.first, ParseCondition(rest));
  return query;
}

std::string BuildStadiumDatabaseScript(size_t num_stadiums,
                                       const std::vector<int>& years,
                                       common::Rng& rng) {
  std::string sql;
  sql +=
      "CREATE TABLE stadium (id INT PRIMARY KEY, name TEXT, capacity INT, "
      "city TEXT);\n";
  sql += "CREATE TABLE concert (id INT, stadium_id INT, year INT, "
         "attendance INT);\n";
  sql += "CREATE TABLE sports_meeting (id INT, stadium_id INT, year INT);\n";
  num_stadiums = std::min(num_stadiums, std::size(kStadiumNames));
  for (size_t i = 0; i < num_stadiums; ++i) {
    sql += common::StrFormat(
        "INSERT INTO stadium VALUES (%zu, '%s', %lld, '%s');\n", i + 1,
        kStadiumNames[i], (long long)rng.UniformInt(10, 90) * 1000,
        kCities[i % std::size(kCities)]);
  }
  int concert_id = 1, meeting_id = 1;
  for (size_t i = 0; i < num_stadiums; ++i) {
    for (int year : years) {
      // Sparse events (most stadium-years have none): conditional sets stay
      // distinctive, so a wrong year/table/combiner usually changes the
      // answer — grading by execution match then has teeth.
      int64_t concerts = std::max<int64_t>(0, rng.UniformInt(-2, 2));
      for (int64_t c = 0; c < concerts; ++c) {
        sql += common::StrFormat(
            "INSERT INTO concert VALUES (%d, %zu, %d, %lld);\n", concert_id++,
            i + 1, year, (long long)rng.UniformInt(5, 70) * 1000);
      }
      int64_t meetings = std::max<int64_t>(0, rng.UniformInt(-2, 1));
      for (int64_t m = 0; m < meetings; ++m) {
        sql += common::StrFormat(
            "INSERT INTO sports_meeting VALUES (%d, %zu, %d);\n", meeting_id++,
            i + 1, year);
      }
    }
  }
  return sql;
}

std::vector<Nl2SqlQuery> GenerateNl2SqlWorkload(
    const Nl2SqlWorkloadOptions& options, common::Rng& rng) {
  // Build the condition pool first; queries draw conditions from it, which
  // is what makes sub-queries repeat across the workload.
  std::vector<EventCondition> pool;
  for (size_t i = 0; i < options.condition_pool; ++i) {
    EventCondition cond;
    cond.event = rng.Bernoulli(0.5) ? EventKind::kConcert
                                    : EventKind::kSportsMeeting;
    cond.year = options.years[rng.NextBelow(options.years.size())];
    cond.superlative = rng.Bernoulli(options.superlative_rate);
    // Avoid exact duplicates in the pool so the sharing ratio is controlled
    // by the pool size alone.
    bool dup = false;
    for (const auto& existing : pool) dup = dup || existing == cond;
    if (dup) {
      cond.superlative = !cond.superlative;
    }
    pool.push_back(cond);
  }
  std::vector<Nl2SqlQuery> out;
  for (size_t i = 0; i < options.num_queries; ++i) {
    Nl2SqlQuery q;
    q.first = pool[rng.NextBelow(pool.size())];
    if (rng.Bernoulli(options.compound_rate)) {
      EventCondition second = pool[rng.NextBelow(pool.size())];
      // A compound query with two identical conditions is degenerate.
      for (int attempt = 0; attempt < 4 && second == q.first; ++attempt) {
        second = pool[rng.NextBelow(pool.size())];
      }
      if (!(second == q.first)) {
        q.second = second;
        double u = rng.UniformDouble();
        q.combiner = u < 0.4 ? Combiner::kOr
                             : (u < 0.7 ? Combiner::kAnd : Combiner::kAndNot);
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<Nl2SqlQuery> PaperQ1ToQ5() {
  EventCondition c2014{EventKind::kConcert, 2014, false};
  EventCondition m2015{EventKind::kSportsMeeting, 2015, false};
  EventCondition c2014_top{EventKind::kConcert, 2014, true};
  EventCondition m2015_top{EventKind::kSportsMeeting, 2015, true};
  std::vector<Nl2SqlQuery> out;
  // Q1: concerts 2014 OR sports meetings 2015.
  out.push_back(Nl2SqlQuery{c2014, Combiner::kOr, m2015});
  // Q2: most number of concerts in 2014.
  out.push_back(Nl2SqlQuery{c2014_top, Combiner::kNone, std::nullopt});
  // Q3: most number of sports meetings in 2015.
  out.push_back(Nl2SqlQuery{m2015_top, Combiner::kNone, std::nullopt});
  // Q4: concerts 2014 AND sports meetings 2015.
  out.push_back(Nl2SqlQuery{c2014, Combiner::kAnd, m2015});
  // Q5: concerts 2014 but NOT sports meetings 2015.
  out.push_back(Nl2SqlQuery{c2014, Combiner::kAndNot, m2015});
  return out;
}

}  // namespace llmdm::data
