#ifndef LLMDM_DATA_XML_H_
#define LLMDM_DATA_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace llmdm::data {

/// A parsed XML element: tag, attributes, text content (concatenated
/// character data) and child elements in document order.
struct XmlNode {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;
  std::vector<std::unique_ptr<XmlNode>> children;

  /// First child with the given tag, or nullptr.
  const XmlNode* FindChild(std::string_view child_tag) const;
  /// All children with the given tag.
  std::vector<const XmlNode*> FindChildren(std::string_view child_tag) const;
  /// Attribute value, or empty string when absent.
  std::string_view Attribute(std::string_view name) const;

  /// Serializes back to XML (entities escaped).
  std::string ToString() const;
};

/// Parses a well-formed XML document (elements, attributes, character data,
/// comments, XML declaration, entity references &amp; &lt; &gt; &quot;
/// &apos;). No namespaces/DTD — the transformation workloads don't use them.
common::Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view text);

}  // namespace llmdm::data

#endif  // LLMDM_DATA_XML_H_
