#include "data/csv.h"

#include <cctype>

#include "common/string_util.h"

namespace llmdm::data {
namespace {

// One parsed CSV record.
using Record = std::vector<std::string>;

common::Result<std::vector<Record>> ParseRecords(std::string_view text,
                                                 char delimiter) {
  std::vector<Record> records;
  Record current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == delimiter) {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // swallow; \n handles the record break
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return common::Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (!field.empty() || !current.empty() || field_started) end_record();
  return records;
}

bool LooksLikeInt(const std::string& s) {
  int64_t v;
  return common::ParseInt64(s, &v);
}

bool LooksLikeDouble(const std::string& s) {
  double v;
  return common::ParseDouble(s, &v);
}

bool LooksLikeBool(const std::string& s) {
  std::string l = common::ToLower(s);
  return l == "true" || l == "false";
}

}  // namespace

bool ParseIsoDate(std::string_view text, Date* out) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  auto digits = [](std::string_view s) {
    for (char c : s)
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    return true;
  };
  if (!digits(text.substr(0, 4)) || !digits(text.substr(5, 2)) ||
      !digits(text.substr(8, 2)))
    return false;
  int y = std::stoi(std::string(text.substr(0, 4)));
  int m = std::stoi(std::string(text.substr(5, 2)));
  int d = std::stoi(std::string(text.substr(8, 2)));
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *out = Date{y, m, d};
  return true;
}

common::Result<Table> ParseCsv(std::string_view text,
                               const CsvOptions& options) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<Record> records,
                         ParseRecords(text, options.delimiter));
  if (records.empty()) {
    return common::Status::InvalidArgument("empty CSV input");
  }
  size_t width = records[0].size();
  for (const Record& r : records) {
    if (r.size() != width) {
      return common::Status::InvalidArgument(common::StrFormat(
          "ragged CSV: expected %zu fields, found %zu", width, r.size()));
    }
  }
  Schema schema;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const std::string& name : records[0]) {
      schema.AddColumn(Column{std::string(common::Trim(name)),
                              ColumnType::kText, true});
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < width; ++c) {
      schema.AddColumn(
          Column{common::StrFormat("col%zu", c), ColumnType::kText, true});
    }
  }

  // Type inference: a column gets the narrowest type that fits every
  // non-empty cell.
  std::vector<ColumnType> types(width, ColumnType::kText);
  if (options.infer_types) {
    for (size_t c = 0; c < width; ++c) {
      bool all_int = true, all_double = true, all_bool = true, all_date = true;
      bool any = false;
      for (size_t r = first_data_row; r < records.size(); ++r) {
        const std::string& cell = records[r][c];
        if (cell.empty()) continue;
        any = true;
        all_int = all_int && LooksLikeInt(cell);
        all_double = all_double && LooksLikeDouble(cell);
        all_bool = all_bool && LooksLikeBool(cell);
        Date d;
        all_date = all_date && ParseIsoDate(cell, &d);
      }
      if (!any) continue;
      if (all_bool)
        types[c] = ColumnType::kBool;
      else if (all_int)
        types[c] = ColumnType::kInt64;
      else if (all_double)
        types[c] = ColumnType::kDouble;
      else if (all_date)
        types[c] = ColumnType::kDate;
    }
    for (size_t c = 0; c < width; ++c) {
      schema.mutable_column(c)->type = types[c];
    }
  }

  Table table("csv", schema);
  for (size_t r = first_data_row; r < records.size(); ++r) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& cell = records[r][c];
      if (cell.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ColumnType::kBool:
          row.push_back(Value::Bool(common::ToLower(cell) == "true"));
          break;
        case ColumnType::kInt64: {
          int64_t v = 0;
          common::ParseInt64(cell, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case ColumnType::kDouble: {
          double v = 0;
          common::ParseDouble(cell, &v);
          row.push_back(Value::Real(v));
          break;
        }
        case ColumnType::kDate: {
          Date d;
          ParseIsoDate(cell, &d);
          row.push_back(Value::MakeDate(d));
          break;
        }
        default:
          row.push_back(Value::Text(cell));
      }
    }
    LLMDM_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

std::string WriteCsv(const Table& table, char delimiter) {
  auto quote = [delimiter](const std::string& s) {
    bool needs = s.find(delimiter) != std::string::npos ||
                 s.find('"') != std::string::npos ||
                 s.find('\n') != std::string::npos;
    if (!needs) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += '"';
    return out;
  };
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    out += quote(table.schema().column(c).name);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      const Value& v = table.at(r, c);
      if (!v.is_null()) out += quote(v.ToString());
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace llmdm::data
