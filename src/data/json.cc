#include "data/json.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace llmdm::data {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += common::StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void SerializeInto(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      double d = v.AsNumber();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        *out += std::to_string(static_cast<int64_t>(d));
      } else {
        *out += common::StrFormat("%.10g", d);
      }
      break;
    }
    case JsonValue::Kind::kString:
      EscapeInto(v.AsString(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(k, out);
        out->push_back(':');
        SerializeInto(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<JsonValue> Parse() {
    SkipWs();
    LLMDM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return common::Status::InvalidArgument(
          common::StrFormat("trailing characters at offset %zu", pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  common::Status Error(const std::string& what) {
    return common::Status::InvalidArgument(
        common::StrFormat("JSON parse error at offset %zu: %s", pos_,
                          what.c_str()));
  }

  common::Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        LLMDM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::MakeBool(true);
        }
        return Error("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::MakeBool(false);
        }
        return Error("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::MakeNull();
        }
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  common::Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double v = 0;
    if (pos_ == start ||
        !common::ParseDouble(text_.substr(start, pos_ - start), &v)) {
      return Error("invalid number");
    }
    return JsonValue::MakeNumber(v);
  }

  common::Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            int code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else return Error("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as-is; test data stays in the BMP).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  common::Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue arr = JsonValue::MakeArray();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      SkipWs();
      LLMDM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  common::Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue obj = JsonValue::MakeObject();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      LLMDM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      LLMDM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::ToString() const {
  std::string out;
  SerializeInto(*this, &out);
  return out;
}

common::Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace llmdm::data
