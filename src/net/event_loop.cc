#include "net/event_loop.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "common/string_util.h"

namespace llmdm::net {

namespace {
common::Status Errno(const char* what) {
  return common::Status::Internal(
      common::StrFormat("%s: %s", what, strerror(errno)));
}
}  // namespace

common::Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return common::Status::Ok();
}

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ = Errno("epoll_create1");
    return;
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    init_status_ = Errno("eventfd");
    return;
  }
  // The wakeup channel is just another readable fd: drain the counter so
  // level-triggered epoll does not spin, then run the owner's handler.
  init_status_ = Add(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t n = 0;
    while (read(wake_fd_, &n, sizeof(n)) > 0) {
    }
    if (wakeup_handler_) wakeup_handler_();
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

common::Status EventLoop::Add(int fd, uint32_t events, IoHandler handler) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(ADD)");
  }
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  return common::Status::Ok();
}

common::Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return common::Status::Ok();
}

void EventLoop::Remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Wakeup() {
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

int EventLoop::Poll(int timeout_ms) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
  if (n <= 0) return 0;  // timeout, or EINTR — caller just polls again
  for (int i = 0; i < n; ++i) {
    auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    std::shared_ptr<IoHandler> handler = it->second;
    (*handler)(events[i].events);
  }
  return n;
}

Listener::~Listener() { Close(); }

common::Status Listener::Open(const std::string& address, uint16_t port) {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  int on = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    Close();
    return common::Status::InvalidArgument("bad bind address: " + address);
  }
  if (bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    common::Status s = Errno("bind");
    Close();
    return s;
  }
  if (listen(fd_, SOMAXCONN) < 0) {
    common::Status s = Errno("listen");
    Close();
    return s;
  }
  LLMDM_RETURN_IF_ERROR(SetNonBlocking(fd_));
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    common::Status s = Errno("getsockname");
    Close();
    return s;
  }
  port_ = ntohs(addr.sin_port);
  return common::Status::Ok();
}

void Listener::AcceptAll(const std::function<void(int fd)>& on_accept) {
  for (;;) {
    int conn = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) return;  // EAGAIN (drained) or transient accept failure
    int on = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    on_accept(conn);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace llmdm::net
