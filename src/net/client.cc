#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace llmdm::net {

namespace {
common::Status Errno(const char* what) {
  return common::Status::Unavailable(
      common::StrFormat("%s: %s", what, strerror(errno)));
}
}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

common::Status Client::Connect(const Options& options) {
  if (fd_ >= 0) return common::Status::FailedPrecondition("already connected");
  options_ = options;
  FrameDecoder::Options dec;
  dec.max_frame_bytes = options.max_frame_bytes;
  decoder_ = FrameDecoder(dec);

  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  int on = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  if (options.recv_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return common::Status::InvalidArgument("bad host address: " +
                                           options.host);
  }
  if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    common::Status s = Errno("connect");
    Close();
    return s;
  }
  return common::Status::Ok();
}

common::Status Client::Send(const WireRequest& request) {
  if (fd_ < 0) return common::Status::FailedPrecondition("not connected");
  std::string frame = EncodeRequestFrame(request);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = write(fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return common::Status::Ok();
}

common::Status Client::ReadMore() {
  char buf[65536];
  for (;;) {
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      return decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
    if (n == 0) {
      return common::Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return common::Status::Timeout("receive timed out");
    }
    return Errno("read");
  }
}

common::Status Client::NextFrame(Frame* out) {
  for (;;) {
    if (decoder_.Next(out)) return common::Status::Ok();
    LLMDM_RETURN_IF_ERROR(ReadMore());
  }
}

void Client::AccumulateChunk(const WireChunk& chunk) {
  auto& slot = partial_[chunk.id];
  slot.first += chunk.data;
  slot.second += 1;
}

common::Result<ClientResult> Client::MakeResult(const Frame& frame) {
  ClientResult result;
  if (frame.type == FrameType::kError) {
    auto error = DecodeError(frame.payload);
    if (!error.ok()) return error.status();
    result.id = error->id;
    result.status = common::Status(
        static_cast<common::StatusCode>(error->status_code), error->message);
    result.shed_cause = static_cast<serve::ShedCause>(error->shed_cause);
    result.shed = result.shed_cause != serve::ShedCause::kNone;
    result.retry_after_vms = error->retry_after_vms;
    partial_.erase(result.id);
    return result;
  }
  auto response = DecodeResponse(frame.payload);
  if (!response.ok()) return response.status();
  result.id = response->id;
  result.status =
      response->status_code == 0
          ? common::Status::Ok()
          : common::Status(
                static_cast<common::StatusCode>(response->status_code),
                response->status_message);
  result.model = response->model;
  result.cost = common::Money::FromMicros(response->cost_micros);
  result.queue_wait_vms = response->queue_wait_vms;
  result.service_vms = response->service_vms;
  result.latency_vms = response->latency_vms;
  result.deadline_missed = response->deadline_missed;
  result.hedged = response->hedged;
  result.hedge_won = response->hedge_won;
  result.coalesced = response->coalesced;
  if ((frame.flags & kFlagStreamed) != 0) {
    auto it = partial_.find(result.id);
    if (it != partial_.end()) {
      result.text = std::move(it->second.first);
      result.chunks = it->second.second;
      partial_.erase(it);
    }
    result.streamed = true;
  } else {
    result.text = response->text;
  }
  return result;
}

common::Result<ClientResult> Client::ReceiveFromWire() {
  for (;;) {
    Frame frame;
    LLMDM_RETURN_IF_ERROR(NextFrame(&frame));
    if (frame.type == FrameType::kStreamChunk) {
      auto chunk = DecodeChunk(frame.payload);
      if (!chunk.ok()) return chunk.status();
      AccumulateChunk(*chunk);
      continue;
    }
    return MakeResult(frame);
  }
}

common::Result<ClientResult> Client::Receive() {
  if (!completed_.empty()) {
    ClientResult r = std::move(completed_.front());
    completed_.erase(completed_.begin());
    return r;
  }
  return ReceiveFromWire();
}

common::Result<ClientResult> Client::Call(const WireRequest& request) {
  LLMDM_RETURN_IF_ERROR(Send(request));
  // Pipelined results for other ids may land first; park them for the next
  // Receive() instead of dropping them.
  for (size_t i = 0; i < completed_.size(); ++i) {
    if (completed_[i].id == request.id) {
      ClientResult r = std::move(completed_[i]);
      completed_.erase(completed_.begin() + static_cast<ptrdiff_t>(i));
      return r;
    }
  }
  for (;;) {
    auto result = ReceiveFromWire();
    if (!result.ok()) return result.status();
    if (result->id == request.id) return std::move(*result);
    completed_.push_back(std::move(*result));
  }
}

common::Result<ClientResult> Client::CallWithRetry(
    WireRequest request, const RetryOptions& options) {
  // Strictly-after margin: the server's hint is the instant the bucket
  // refills / the slot frees, so arriving exactly then can still lose to
  // floating-point rounding at the admission boundary.
  constexpr double kEpsilonVms = 1e-3;
  const size_t max_attempts = std::max<size_t>(1, options.max_attempts);
  for (size_t attempt = 1;; ++attempt) {
    auto result = Call(request);
    if (!result.ok()) return result.status();
    result->attempts = attempt;
    const bool retryable =
        result->shed && (result->shed_cause == serve::ShedCause::kQueue ||
                         result->shed_cause == serve::ShedCause::kQuota);
    if (!retryable || attempt >= max_attempts) return result;
    const double wait = result->retry_after_vms > 0.0
                            ? result->retry_after_vms
                            : options.backoff_without_hint_vms;
    // The hint is relative to the shed attempt's arrival, so advance from
    // the arrival the server just judged, not from zero.
    request.arrival_vms += wait + kEpsilonVms;
  }
}

common::Result<std::vector<ClientResult>> Client::CallBatch(
    const std::vector<WireRequest>& requests) {
  for (const WireRequest& request : requests) {
    LLMDM_RETURN_IF_ERROR(Send(request));
  }
  std::unordered_set<uint64_t> wanted;
  for (const WireRequest& request : requests) wanted.insert(request.id);
  std::map<uint64_t, ClientResult> by_id;
  // Results already parked from earlier pipelining count too.
  for (size_t i = 0; i < completed_.size();) {
    if (wanted.count(completed_[i].id) != 0) {
      by_id[completed_[i].id] = std::move(completed_[i]);
      completed_.erase(completed_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  while (by_id.size() < wanted.size()) {
    auto result = ReceiveFromWire();
    if (!result.ok()) return result.status();
    if (wanted.count(result->id) != 0) {
      by_id[result->id] = std::move(*result);
    } else {
      completed_.push_back(std::move(*result));
    }
  }
  std::vector<ClientResult> out;
  out.reserve(requests.size());
  for (const WireRequest& request : requests) {
    out.push_back(std::move(by_id[request.id]));
  }
  return out;
}

common::Result<Client::StreamHandle> Client::CallStreaming(
    const WireRequest& request) {
  LLMDM_RETURN_IF_ERROR(Send(request));
  return StreamHandle(this, request.id);
}

bool Client::StreamHandle::Next(std::string* chunk) {
  if (done_ || !error_.ok()) return false;
  for (;;) {
    Frame frame;
    common::Status st = client_->NextFrame(&frame);
    if (!st.ok()) {
      error_ = st;
      done_ = true;
      return false;
    }
    if (frame.type == FrameType::kStreamChunk) {
      auto decoded = DecodeChunk(frame.payload);
      if (!decoded.ok()) {
        error_ = decoded.status();
        done_ = true;
        return false;
      }
      if (decoded->id == id_) {
        text_ += decoded->data;
        ++chunks_;
        if (chunk != nullptr) *chunk = decoded->data;
        return true;
      }
      client_->AccumulateChunk(*decoded);
      continue;
    }
    auto result = client_->MakeResult(frame);
    if (!result.ok()) {
      error_ = result.status();
      done_ = true;
      return false;
    }
    if (result->id != id_) {
      client_->completed_.push_back(std::move(*result));
      continue;
    }
    final_ = std::move(*result);
    if (final_.streamed) {
      // Our own chunks were consumed by Next() rather than the client's
      // reassembly buffer; attach them here.
      final_.text = text_;
      final_.chunks = chunks_;
    }
    done_ = true;
    return false;
  }
}

common::Result<ClientResult> Client::StreamHandle::Finish() {
  std::string sink;
  while (!done_ && Next(&sink)) {
  }
  if (!error_.ok()) return error_;
  return final_;
}

}  // namespace llmdm::net
