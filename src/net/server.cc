#include "net/server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace llmdm::net {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock service bounds (µs): the socket path is measured in real
/// microseconds, unlike the virtual-ms ladders everywhere else.
std::vector<double> RequestWallBoundsUs() {
  return {50,    100,   250,    500,    1000,   2500,    5000,
          10000, 25000, 50000, 100000, 250000, 1000000};
}

}  // namespace

NetServer::NetServer(serve::Server* backend, const Options& options)
    : backend_(backend), options_(options) {
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  metrics_.connections_accepted =
      registry_->GetCounter("llmdm_net_connections_accepted_total");
  metrics_.connections_closed =
      registry_->GetCounter("llmdm_net_connections_closed_total");
  metrics_.frames_rx = registry_->GetCounter("llmdm_net_frames_rx_total");
  metrics_.frames_tx = registry_->GetCounter("llmdm_net_frames_tx_total");
  metrics_.bytes_rx = registry_->GetCounter("llmdm_net_bytes_rx_total");
  metrics_.bytes_tx = registry_->GetCounter("llmdm_net_bytes_tx_total");
  metrics_.requests_rx = registry_->GetCounter("llmdm_net_requests_rx_total");
  metrics_.responses_tx = registry_->GetCounter("llmdm_net_responses_tx_total");
  metrics_.chunks_tx =
      registry_->GetCounter("llmdm_net_stream_chunks_tx_total");
  metrics_.errors_tx = registry_->GetCounter("llmdm_net_errors_tx_total");
  metrics_.shed_tx = registry_->GetCounter("llmdm_net_shed_tx_total");
  metrics_.protocol_errors =
      registry_->GetCounter("llmdm_net_protocol_errors_total");
  metrics_.responses_dropped =
      registry_->GetCounter("llmdm_net_responses_dropped_total");
  metrics_.backpressure_pauses =
      registry_->GetCounter("llmdm_net_backpressure_pauses_total");
  metrics_.drain_forced_closes =
      registry_->GetCounter("llmdm_net_drain_forced_closes_total");
  metrics_.open_connections =
      registry_->GetGauge("llmdm_net_open_connections");
  metrics_.inflight_requests =
      registry_->GetGauge("llmdm_net_inflight_requests");
  metrics_.request_wall_us = registry_->GetHistogram(
      "llmdm_net_request_wall_us", {}, RequestWallBoundsUs());
}

NetServer::~NetServer() { Shutdown(); }

common::Status NetServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return common::Status::FailedPrecondition("already started");
  LLMDM_RETURN_IF_ERROR(loop_.status());
  LLMDM_RETURN_IF_ERROR(listener_.Open(options_.bind_address, options_.port));
  LLMDM_RETURN_IF_ERROR(loop_.Add(listener_.fd(), EPOLLIN, [this](uint32_t) {
    listener_.AcceptAll([this](int fd) { OnAccept(fd); });
  }));
  loop_.set_wakeup_handler([this] { DrainCompletions(); });
  // The sink runs on serve worker threads (or the loop thread itself for
  // synchronous sheds): copy into the queue, kick the loop, nothing else.
  backend_->set_response_sink([this](const serve::Response& response) {
    {
      std::lock_guard<std::mutex> l(completions_mu_);
      completions_.push_back(response);
    }
    loop_.Wakeup();
  });
  started_ = true;
  thread_ = std::thread([this] { LoopThread(); });
  return common::Status::Ok();
}

void NetServer::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || stopped_) return;
  shutdown_requested_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (thread_.joinable()) thread_.join();
  // Detach the sink so late completions (only possible after a forced
  // drain) stop referencing this object.
  backend_->set_response_sink(nullptr);
  stopped_ = true;
}

void NetServer::LoopThread() {
  for (;;) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_deadline_us_ =
          NowUs() + static_cast<int64_t>(options_.drain_deadline_ms * 1000.0);
      loop_.Remove(listener_.fd());
      listener_.Close();
    }
    DrainCompletions();
    if (draining_) {
      if (DrainComplete()) break;
      int64_t remain_us = drain_deadline_us_ - NowUs();
      if (remain_us <= 0) {
        // Deadline: give up on wedged peers. Every connection still holding
        // unflushed bytes (or awaiting a response) is force-closed.
        uint64_t forced = routes_.empty() ? 0 : 1;
        for (const auto& [fd, conn] : conns_) {
          if (conn->pending() > 0) ++forced;
        }
        if (forced > 0) metrics_.drain_forced_closes->Add(forced);
        break;
      }
      loop_.Poll(static_cast<int>(
          std::min<int64_t>(remain_us / 1000 + 1, 100)));
    } else {
      // 200ms heartbeat: Wakeup() covers the common paths; the timeout is a
      // belt-and-braces bound on noticing a shutdown request.
      loop_.Poll(200);
    }
  }
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(fd);
  listener_.Close();
}

void NetServer::OnAccept(int fd) {
  if (options_.sndbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
               sizeof(options_.sndbuf_bytes));
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->conn_id = next_conn_id_++;
  conn->interest = EPOLLIN;
  FrameDecoder::Options dec;
  dec.max_frame_bytes = options_.max_frame_bytes;
  conn->decoder = FrameDecoder(dec);
  Conn* raw = conn.get();
  common::Status added =
      loop_.Add(fd, EPOLLIN, [this, fd](uint32_t ev) { OnConnEvent(fd, ev); });
  if (!added.ok()) {
    close(fd);
    return;
  }
  conn_by_id_[raw->conn_id] = raw;
  conns_[fd] = std::move(conn);
  metrics_.connections_accepted->Add(1);
  metrics_.open_connections->Set(static_cast<int64_t>(conns_.size()));
}

void NetServer::OnConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn);
    it = conns_.find(fd);
    if (it == conns_.end()) return;  // flush hit a dead peer
    UpdateInterest(conn);
  }
  if ((events & EPOLLIN) == 0) return;

  char buf[65536];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      metrics_.bytes_rx->Add(static_cast<uint64_t>(n));
      common::Status fed =
          conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (!fed.ok()) {
        // A corrupted stream cannot be trusted for framing any more: tell
        // the peer once (best effort) and hang up.
        metrics_.protocol_errors->Add(1);
        WireError err;
        err.status_code = static_cast<uint8_t>(fed.code());
        err.message = fed.message();
        SendError(conn, err);
        CloseConn(fd);
        return;
      }
      Frame frame;
      while (conn->decoder.Next(&frame)) {
        metrics_.frames_rx->Add(1);
        HandleFrame(conn, frame);
        if (conns_.find(fd) == conns_.end()) return;  // frame closed us
      }
      continue;
    }
    if (n == 0) {  // orderly peer close
      CloseConn(fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(fd);
    return;
  }
  UpdateInterest(conn);
}

void NetServer::HandleFrame(Conn* conn, const Frame& frame) {
  if (frame.type != FrameType::kRequest) {
    // Clients only send requests; anything else is a protocol violation.
    metrics_.protocol_errors->Add(1);
    WireError err;
    err.status_code =
        static_cast<uint8_t>(common::StatusCode::kInvalidArgument);
    err.message = "unexpected frame type from client";
    SendError(conn, err);
    CloseConn(conn->fd);
    return;
  }
  auto request = DecodeRequest(frame.payload);
  if (!request.ok()) {
    metrics_.protocol_errors->Add(1);
    WireError err;
    err.status_code = static_cast<uint8_t>(request.status().code());
    err.message = request.status().message();
    SendError(conn, err);
    CloseConn(conn->fd);
    return;
  }
  HandleRequest(conn, *request);
}

void NetServer::HandleRequest(Conn* conn, const WireRequest& request) {
  if (draining_) {
    WireError err;
    err.id = request.id;
    err.status_code = static_cast<uint8_t>(common::StatusCode::kUnavailable);
    err.message = "server draining";
    SendError(conn, err);
    return;
  }
  if (routes_.count(request.id) != 0) {
    WireError err;
    err.id = request.id;
    err.status_code =
        static_cast<uint8_t>(common::StatusCode::kInvalidArgument);
    err.message = "request id already in flight";
    SendError(conn, err);
    return;
  }

  metrics_.requests_rx->Add(1);
  Route route;
  route.conn_id = conn->conn_id;
  route.stream_chunk_bytes = request.stream_chunk_bytes;
  route.accepted_us = NowUs();
  routes_.emplace(request.id, route);
  metrics_.inflight_requests->Set(static_cast<int64_t>(routes_.size()));

  serve::Request req;
  req.id = request.id;
  req.tenant = request.tenant;
  req.skill = request.skill;
  req.input = request.input;
  req.priority = static_cast<serve::Priority>(request.priority);
  req.deadline_ms = request.deadline_ms;
  // The wire carries the workload's virtual clock; the serve layer requires
  // a non-decreasing submission order, so clock skew between connections is
  // clamped forward rather than rejected.
  last_arrival_vms_ = std::max(last_arrival_vms_, request.arrival_vms);
  req.arrival_vms = last_arrival_vms_;
  backend_->Submit(req);
}

void NetServer::DeliverResponse(const serve::Response& response) {
  auto rit = routes_.find(response.id);
  if (rit == routes_.end()) {
    metrics_.responses_dropped->Add(1);
    return;
  }
  Route route = rit->second;
  routes_.erase(rit);
  metrics_.inflight_requests->Set(static_cast<int64_t>(routes_.size()));
  metrics_.request_wall_us->Observe(
      static_cast<double>(NowUs() - route.accepted_us));

  auto cit = conn_by_id_.find(route.conn_id);
  if (cit == conn_by_id_.end()) {
    metrics_.responses_dropped->Add(1);
    return;
  }
  Conn* conn = cit->second;

  if (response.shed) {
    // The QoS hint survives the wire: cause + cause-specific retry-after
    // ride the error frame so a remote client can back off exactly as an
    // in-process caller would.
    WireError err;
    err.id = response.id;
    err.status_code = static_cast<uint8_t>(response.status.code());
    err.shed_cause = static_cast<uint8_t>(response.shed_cause);
    err.retry_after_vms = response.retry_after_vms;
    err.message = response.status.message();
    metrics_.shed_tx->Add(1);
    SendError(conn, err);
    return;
  }

  WireResponse wire;
  wire.id = response.id;
  wire.status_code = static_cast<uint8_t>(response.status.code());
  wire.status_message = response.status.message();
  wire.model = response.model;
  wire.cost_micros = response.cost.micros();
  wire.queue_wait_vms = response.queue_wait_vms;
  wire.service_vms = response.service_vms;
  wire.latency_vms = response.latency_vms;
  wire.deadline_missed = response.deadline_missed;
  wire.hedged = response.hedged;
  wire.hedge_won = response.hedge_won;
  wire.coalesced = response.coalesced;

  const bool stream = route.stream_chunk_bytes > 0 && response.status.ok() &&
                      !response.text.empty();
  if (stream) {
    uint32_t seq = 0;
    for (size_t off = 0; off < response.text.size();
         off += route.stream_chunk_bytes) {
      WireChunk chunk;
      chunk.id = response.id;
      chunk.seq = seq++;
      chunk.data =
          response.text.substr(off, route.stream_chunk_bytes);
      metrics_.chunks_tx->Add(1);
      AppendFrame(conn, EncodeChunkFrame(chunk));
      // AppendFrame may close a dead peer; stop touching the conn then.
      if (conn_by_id_.find(route.conn_id) == conn_by_id_.end()) return;
    }
  } else {
    wire.text = response.text;
  }
  metrics_.responses_tx->Add(1);
  AppendFrame(conn, EncodeResponseFrame(wire, stream));
}

void NetServer::SendError(Conn* conn, const WireError& error) {
  metrics_.errors_tx->Add(1);
  AppendFrame(conn, EncodeErrorFrame(error));
}

void NetServer::AppendFrame(Conn* conn, std::string frame) {
  metrics_.frames_tx->Add(1);
  conn->outbuf.append(frame);
  int fd = conn->fd;
  FlushConn(conn);
  if (conns_.find(fd) == conns_.end()) return;  // flush closed it
  UpdateInterest(conn);
}

void NetServer::FlushConn(Conn* conn) {
  while (conn->pending() > 0) {
    ssize_t n = write(conn->fd, conn->outbuf.data() + conn->out_off,
                      conn->pending());
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      metrics_.bytes_tx->Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn->fd);  // EPIPE/ECONNRESET: the peer is gone
    return;
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (1u << 20)) {
    conn->outbuf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
}

void NetServer::UpdateInterest(Conn* conn) {
  // Watermark backpressure: past the high mark, stop reading this
  // connection — requests queue in the kernel and push back on the peer's
  // send() — until the buffer drains below the low mark.
  if (!conn->read_paused && conn->pending() > options_.high_watermark) {
    conn->read_paused = true;
    metrics_.backpressure_pauses->Add(1);
  } else if (conn->read_paused && conn->pending() < options_.low_watermark) {
    conn->read_paused = false;
  }
  uint32_t desired = 0;
  if (!conn->read_paused) desired |= EPOLLIN;
  if (conn->pending() > 0) desired |= EPOLLOUT;
  if (desired != conn->interest) {
    if (loop_.Modify(conn->fd, desired).ok()) conn->interest = desired;
  }
}

void NetServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  conn_by_id_.erase(it->second->conn_id);
  loop_.Remove(fd);
  close(fd);
  conns_.erase(it);
  metrics_.connections_closed->Add(1);
  metrics_.open_connections->Set(static_cast<int64_t>(conns_.size()));
}

void NetServer::DrainCompletions() {
  std::vector<serve::Response> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (const serve::Response& response : batch) DeliverResponse(response);
}

bool NetServer::DrainComplete() const {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    if (!completions_.empty()) return false;
  }
  if (!routes_.empty()) return false;
  for (const auto& [fd, conn] : conns_) {
    if (conn->pending() > 0) return false;
  }
  return true;
}

NetStats NetServer::stats() const {
  NetStats s;
  s.connections_accepted = metrics_.connections_accepted->value();
  s.connections_closed = metrics_.connections_closed->value();
  s.frames_rx = metrics_.frames_rx->value();
  s.frames_tx = metrics_.frames_tx->value();
  s.bytes_rx = metrics_.bytes_rx->value();
  s.bytes_tx = metrics_.bytes_tx->value();
  s.requests_rx = metrics_.requests_rx->value();
  s.responses_tx = metrics_.responses_tx->value();
  s.chunks_tx = metrics_.chunks_tx->value();
  s.errors_tx = metrics_.errors_tx->value();
  s.shed_tx = metrics_.shed_tx->value();
  s.protocol_errors = metrics_.protocol_errors->value();
  s.responses_dropped = metrics_.responses_dropped->value();
  s.backpressure_pauses = metrics_.backpressure_pauses->value();
  s.drain_forced_closes = metrics_.drain_forced_closes->value();
  return s;
}

}  // namespace llmdm::net
