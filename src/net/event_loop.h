#ifndef LLMDM_NET_EVENT_LOOP_H_
#define LLMDM_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"

namespace llmdm::net {

/// A minimal epoll reactor. Single-threaded by contract: every handler runs
/// on the thread inside Poll()/Run(), which therefore owns all connection
/// state without locks. The only cross-thread entry point is Wakeup(),
/// backed by an eventfd, which other threads (serve::Server workers
/// publishing completions, a Shutdown() caller) use to kick the loop out of
/// epoll_wait; the loop then runs the wakeup handler on its own thread.
class EventLoop {
 public:
  /// `events` is the epoll event bitset (EPOLLIN/EPOLLOUT/...) active when
  /// the handler fired.
  using IoHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  common::Status status() const { return init_status_; }

  /// Registers `fd` for `events`; the handler fires on every readiness.
  common::Status Add(int fd, uint32_t events, IoHandler handler);
  /// Changes the interest set of a registered fd.
  common::Status Modify(int fd, uint32_t events);
  /// Unregisters; the fd itself is not closed (the owner closes it).
  void Remove(int fd);

  /// Thread-safe: makes the current (or next) Poll() return promptly and
  /// run the wakeup handler. Coalesces: N wakeups may produce one callback.
  void Wakeup();
  void set_wakeup_handler(std::function<void()> handler) {
    wakeup_handler_ = std::move(handler);
  }

  /// One epoll_wait + dispatch pass. `timeout_ms` < 0 blocks until an event
  /// or Wakeup(). Returns the number of fds dispatched (0 on timeout).
  int Poll(int timeout_ms);

  size_t registered_fds() const { return handlers_.size(); }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd, registered with epoll like any other fd
  common::Status init_status_;
  std::function<void()> wakeup_handler_;
  /// shared_ptr so a handler that Remove()s its own fd (or another fd whose
  /// event is pending in the same batch) never frees a callback mid-call.
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
};

/// A non-blocking listening socket. Binds to `address:port` (port 0 picks an
/// ephemeral port, readable via port() after Open) and hands accepted,
/// already-non-blocking connection fds to the callback.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  common::Status Open(const std::string& address, uint16_t port);
  /// Accepts every pending connection (edge-agnostic: loops until EAGAIN).
  void AcceptAll(const std::function<void(int fd)>& on_accept);
  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Sets O_NONBLOCK on `fd`.
common::Status SetNonBlocking(int fd);

}  // namespace llmdm::net

#endif  // LLMDM_NET_EVENT_LOOP_H_
