#ifndef LLMDM_NET_WIRE_H_
#define LLMDM_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace llmdm::net {

/// The llmdm wire protocol: length-prefixed binary frames over a byte
/// stream. Every frame is
///
///   offset  size  field
///   0       4     magic    "LDMN" (little-endian u32)
///   4       1     version  kWireVersion
///   5       1     type     FrameType
///   6       2     flags    FrameFlags bitset
///   8       4     length   payload bytes (u32, little-endian)
///   12      8     checksum FNV-1a over the payload, seeded with the FNV-1a
///                          of header bytes [0, 12) — one checksum covers
///                          both header and payload, so a corrupted length
///                          or type fails the same check a corrupted body
///                          does
///   20      len   payload  explicit little-endian fields (durability codec)
///
/// The payload encoding reuses the durability byte codec (fixed-width
/// little-endian, u32-length-prefixed strings, IEEE-754 bit patterns for
/// doubles), so two encodings of the same message are byte-identical on
/// every platform — the property the loopback byte-identity tests and the
/// torn-frame sweep rest on.
///
/// A conversation is: client writes kRequest frames (pipelining allowed);
/// the server answers each with either
///   - zero or more kStreamChunk frames followed by one kResponse frame
///     carrying kFlagStreamed and an empty text (the client reassembles), or
///   - one kResponse frame with the full completion text, or
///   - one kError frame (shed, draining, or protocol violation) carrying the
///     shed cause and the QoS retry_after_vms hint.
/// Responses come back in completion order, not request order; the `id`
/// field is the correlation key. Chunk frames for one id are contiguous.

inline constexpr uint32_t kWireMagic = 0x4E4D444Cu;  // "LDMN" on the wire
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kStreamChunk = 3,
  kError = 4,
};

/// Frame-level flags (u16 on the wire).
enum FrameFlags : uint16_t {
  /// On a kResponse: the completion text travelled as kStreamChunk frames
  /// and the response's own text field is empty.
  kFlagStreamed = 1u << 0,
};

/// One submitted request. Mirrors serve::Request plus the client's streaming
/// preference. `arrival_vms` rides the wire so a network workload replays
/// the exact admission sequence a direct Submit() of the same requests
/// would — the virtual clock is the workload's, not the transport's.
struct WireRequest {
  uint64_t id = 0;
  std::string tenant;
  std::string skill = "freeform";
  std::string input;
  uint8_t priority = 1;  // serve::Priority, kNormal
  double deadline_ms = 0.0;
  double arrival_vms = 0.0;
  /// 0 = whole completion in the kResponse frame; >0 = stream the text back
  /// as kStreamChunk frames of at most this many bytes.
  uint32_t stream_chunk_bytes = 0;

  bool operator==(const WireRequest&) const = default;
};

/// One completed request. Mirrors the non-shed serve::Response fields; shed
/// outcomes travel as WireError frames instead so the error path carries
/// exactly the refusal metadata (cause + retry hint) and nothing else.
struct WireResponse {
  uint64_t id = 0;
  uint8_t status_code = 0;  // common::StatusCode
  std::string status_message;
  std::string text;
  std::string model;
  int64_t cost_micros = 0;
  double queue_wait_vms = 0.0;
  double service_vms = 0.0;
  double latency_vms = 0.0;
  bool deadline_missed = false;
  bool hedged = false;
  bool hedge_won = false;
  bool coalesced = false;

  bool operator==(const WireResponse&) const = default;
};

/// One piece of a streamed completion text. Chunks for an id arrive in
/// `seq` order, contiguously, and are followed by the final kResponse frame.
struct WireChunk {
  uint64_t id = 0;
  uint32_t seq = 0;
  std::string data;

  bool operator==(const WireChunk&) const = default;
};

/// A refusal: admission shed (kResourceExhausted + shed cause + the
/// cause-specific retry_after_vms hint from serve), server draining
/// (kUnavailable), or a protocol violation (kInvalidArgument). id = 0 when
/// the error is not attributable to a specific request.
struct WireError {
  uint64_t id = 0;
  uint8_t status_code = 0;  // common::StatusCode
  uint8_t shed_cause = 0;   // serve::ShedCause
  double retry_after_vms = 0.0;
  std::string message;

  bool operator==(const WireError&) const = default;
};

/// A decoded frame: type + flags + raw payload bytes (checksum already
/// verified by the decoder).
struct Frame {
  FrameType type = FrameType::kRequest;
  uint16_t flags = 0;
  std::string payload;
};

// ---- Frame encoding (header + checksum + payload) ----

/// Wraps `payload` in a checksummed frame header. The only way bytes reach
/// the wire.
std::string EncodeFrame(FrameType type, uint16_t flags,
                        std::string_view payload);

std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeResponseFrame(const WireResponse& response, bool streamed);
std::string EncodeChunkFrame(const WireChunk& chunk);
std::string EncodeErrorFrame(const WireError& error);

// ---- Payload decoding (bounds-checked; kOutOfRange on truncation,
//      kInvalidArgument on trailing garbage) ----

common::Result<WireRequest> DecodeRequest(std::string_view payload);
common::Result<WireResponse> DecodeResponse(std::string_view payload);
common::Result<WireChunk> DecodeChunk(std::string_view payload);
common::Result<WireError> DecodeError(std::string_view payload);

/// Incremental frame decoder over an arbitrary chunking of the byte stream.
/// Feed() whatever read(2) produced — a frame torn at any byte boundary
/// across any number of reads reassembles to exactly the frames a one-shot
/// decode would yield (the torn-frame sweep asserts this at every split
/// point). A malformed header (bad magic / version / unknown type /
/// oversized length) or checksum mismatch poisons the decoder: Feed()
/// returns the error, keeps returning it, and Next() yields nothing more —
/// a corrupted stream is rejected cleanly, never resynchronized into
/// garbage frames. The transport should close the connection.
class FrameDecoder {
 public:
  struct Options {
    /// A single corrupted length prefix must not become a multi-gigabyte
    /// buffered allocation.
    size_t max_frame_bytes = 64u << 20;
  };

  FrameDecoder() : FrameDecoder(Options{}) {}
  explicit FrameDecoder(const Options& options) : options_(options) {}

  /// Buffers `data` and decodes every complete frame in it onto the ready
  /// queue. Returns the first protocol error encountered (sticky).
  common::Status Feed(std::string_view data);

  /// Pops the next fully decoded frame; false when none is ready.
  bool Next(Frame* frame);

  /// Bytes buffered waiting for the rest of a frame (flow-control input).
  size_t buffered_bytes() const { return buffer_.size(); }
  const common::Status& error() const { return error_; }

 private:
  Options options_;
  std::string buffer_;
  std::deque<Frame> ready_;
  common::Status error_;
};

}  // namespace llmdm::net

#endif  // LLMDM_NET_WIRE_H_
