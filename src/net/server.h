#ifndef LLMDM_NET_SERVER_H_
#define LLMDM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace llmdm::net {

/// Aggregate transport metrics — a read-time view over the llmdm_net_*
/// registry counters, so a Prometheus export and this struct always agree.
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_rx = 0;
  uint64_t frames_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t requests_rx = 0;
  uint64_t responses_tx = 0;
  uint64_t chunks_tx = 0;
  uint64_t errors_tx = 0;
  uint64_t shed_tx = 0;  // subset of errors_tx that are admission sheds
  uint64_t protocol_errors = 0;
  uint64_t responses_dropped = 0;  // completion arrived after its conn died
  uint64_t backpressure_pauses = 0;
  uint64_t drain_forced_closes = 0;
};

/// The network front door: an epoll event loop accepting llmdm wire-protocol
/// connections and feeding decoded request frames into a serve::Server.
///
/// Threading: one loop thread owns every connection, buffer, and route;
/// serve workers publish completions through the server's response_sink,
/// which only appends to a mutex-guarded completion queue and kicks the
/// loop's eventfd — the loop then encodes and writes the frames on its own
/// thread. Submit() is therefore always called from the loop thread, in
/// frame-arrival order, satisfying the serve layer's single-submitter
/// ordering contract (arrival_vms from the wire is clamped monotonic
/// non-decreasing across connections).
///
/// Correlation: the wire `id` is used as the serve request id directly, so a
/// network workload is byte-identical to the same requests Submit()ted
/// in-process (the completion text is salted by request id). Ids must be
/// unique among in-flight requests across all connections; a duplicate is
/// refused with a kInvalidArgument error frame. The llmdm client library
/// and loadgen partition the id space per connection.
///
/// Backpressure: each connection has an outbound buffer. When it exceeds
/// Options::high_watermark the server stops reading that connection (its
/// EPOLLIN interest is dropped — new requests queue in the kernel and
/// eventually push back on the client's send()), resuming once the buffer
/// drains below Options::low_watermark.
///
/// Graceful drain (Shutdown()): close the listener, refuse new request
/// frames with kUnavailable error frames, let every already-accepted
/// request complete and flush its response, then close. Bounded by
/// Options::drain_deadline_ms of wall time; connections still wedged at the
/// deadline are force-closed (counted in drain_forced_closes).
class NetServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
    /// Outbound-buffer watermarks driving per-connection read backpressure.
    size_t high_watermark = 1u << 20;
    size_t low_watermark = 256u << 10;
    /// Frame-size cap enforced by the decoder (memory bound per connection).
    size_t max_frame_bytes = 16u << 20;
    /// Wall-clock bound on the graceful-drain phase of Shutdown().
    double drain_deadline_ms = 10000.0;
    /// SO_SNDBUF for accepted connections; 0 keeps the kernel default.
    /// Tests shrink it to force the userspace outbound buffer (and the
    /// watermark machinery) to actually engage.
    int sndbuf_bytes = 0;
    /// Registry for llmdm_net_* instruments; null = private registry.
    obs::Registry* registry = nullptr;
  };

  /// `backend` must outlive this server. Start() installs this server as
  /// the backend's response sink; the backend should be configured with
  /// retain_responses = false for long-running use.
  NetServer(serve::Server* backend, const Options& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, installs the response sink, and starts the loop
  /// thread. On error nothing is running and the error is returned.
  common::Status Start();

  /// The bound port (valid after Start(), useful with Options::port = 0).
  uint16_t port() const { return listener_.port(); }

  /// Graceful drain, then stops and joins the loop thread. Idempotent.
  void Shutdown();

  NetStats stats() const;
  obs::Registry* registry() const { return registry_; }

 private:
  struct Conn {
    int fd = -1;
    uint64_t conn_id = 0;
    FrameDecoder decoder;
    std::string outbuf;
    size_t out_off = 0;
    uint32_t interest = 0;  // current epoll interest set
    bool read_paused = false;

    size_t pending() const { return outbuf.size() - out_off; }
  };

  /// Where a completed request's frames go, plus how to render them.
  struct Route {
    uint64_t conn_id = 0;
    uint32_t stream_chunk_bytes = 0;
    int64_t accepted_us = 0;  // wall clock, for the service histogram
  };

  struct Metrics {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* frames_rx = nullptr;
    obs::Counter* frames_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* requests_rx = nullptr;
    obs::Counter* responses_tx = nullptr;
    obs::Counter* chunks_tx = nullptr;
    obs::Counter* errors_tx = nullptr;
    obs::Counter* shed_tx = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* responses_dropped = nullptr;
    obs::Counter* backpressure_pauses = nullptr;
    obs::Counter* drain_forced_closes = nullptr;
    obs::Gauge* open_connections = nullptr;
    obs::Gauge* inflight_requests = nullptr;
    obs::Histogram* request_wall_us = nullptr;
  };

  void LoopThread();
  void OnAccept(int fd);
  void OnConnEvent(int fd, uint32_t events);
  void HandleFrame(Conn* conn, const Frame& frame);
  void HandleRequest(Conn* conn, const WireRequest& request);
  /// Encodes one serve outcome into response/chunk/error frames on its
  /// connection's outbound buffer (dropping it if the connection is gone).
  void DeliverResponse(const serve::Response& response);
  void SendError(Conn* conn, const WireError& error);
  void AppendFrame(Conn* conn, std::string frame);
  void FlushConn(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(int fd);
  void DrainCompletions();
  bool DrainComplete() const;

  serve::Server* backend_;
  Options options_;

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;

  EventLoop loop_;
  Listener listener_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};
  bool stopped_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;

  // Loop-thread-owned state (no locks).
  uint64_t next_conn_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;        // by fd
  std::unordered_map<uint64_t, Conn*> conn_by_id_;
  std::unordered_map<uint64_t, Route> routes_;                  // by request id
  double last_arrival_vms_ = 0.0;
  bool draining_ = false;
  int64_t drain_deadline_us_ = 0;

  // Completion queue: serve workers (and the submitting thread, for sheds)
  // push; the loop thread drains after a Wakeup().
  mutable std::mutex completions_mu_;
  std::vector<serve::Response> completions_;
};

}  // namespace llmdm::net

#endif  // LLMDM_NET_SERVER_H_
