#ifndef LLMDM_NET_CLIENT_H_
#define LLMDM_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/money.h"
#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"
#include "serve/server.h"

namespace llmdm::net {

/// One request's outcome as seen by a network client: the serve::Response
/// fields that survive the wire, plus the shed/refusal metadata from error
/// frames. `status` is reconstructed from the frame's code + message, so a
/// remote caller branches on exactly the codes an in-process caller would.
struct ClientResult {
  uint64_t id = 0;
  common::Status status;
  std::string text;
  std::string model;
  common::Money cost;
  double queue_wait_vms = 0.0;
  double service_vms = 0.0;
  double latency_vms = 0.0;
  bool shed = false;
  serve::ShedCause shed_cause = serve::ShedCause::kNone;
  /// When shed: the server's cause-specific retry hint (virtual ms after
  /// this request's arrival at which retrying has a chance).
  double retry_after_vms = 0.0;
  bool deadline_missed = false;
  bool hedged = false;
  bool hedge_won = false;
  bool coalesced = false;
  bool streamed = false;  // text was reassembled from stream chunks
  size_t chunks = 0;      // chunk frames that carried it
  /// Wire round trips this result took (1 = no retry). Only CallWithRetry
  /// ever sets it above 1.
  size_t attempts = 1;
};

/// Blocking client for the llmdm wire protocol.
///
/// Three usage levels, from convenient to manual:
///   - Call(request): one round trip, returns the result (streaming
///     requests are reassembled transparently).
///   - CallBatch(requests): writes the whole batch pipelined, then collects
///     every result; returned in request order.
///   - Send()/Receive(): raw pipelining for loadgen-style callers. Send()
///     and Receive() touch disjoint state, so one thread may Send while
///     another Receives on the same connection (full-duplex open-loop
///     driving); neither call is itself safe to race with a same-direction
///     call.
///
/// Streaming: pass stream_chunk_bytes > 0 on the request and either let
/// Call()/Receive() reassemble, or use CallStreaming() to observe chunks as
/// they arrive through StreamHandle::Next().
class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Receive timeout (SO_RCVTIMEO) in ms; 0 blocks forever.
    int recv_timeout_ms = 30000;
    size_t max_frame_bytes = 64u << 20;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  common::Status Connect(const Options& options);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Writes one request frame. Does not wait for the response.
  common::Status Send(const WireRequest& request);

  /// Blocks for the next completed result in server completion order,
  /// reassembling any stream chunks that precede it. Interleaved chunk
  /// frames for other ids (pipelined streaming) are accumulated and
  /// attached to their own results when those arrive.
  common::Result<ClientResult> Receive();

  /// Send + Receive-until-this-id. With no pipelining in flight, this is
  /// one round trip.
  common::Result<ClientResult> Call(const WireRequest& request);

  struct RetryOptions {
    /// Total wire attempts, first try included. 1 degenerates to Call().
    size_t max_attempts = 3;
    /// Virtual-ms backoff when a shed carries no usable hint
    /// (retry_after_vms <= 0).
    double backoff_without_hint_vms = 1.0;
  };

  /// Call() that honors the server's shed metadata: a refusal whose cause
  /// is retryable (queue full, quota exhausted) is re-sent with
  /// `arrival_vms` advanced just past the shed's `retry_after_vms` hint —
  /// in virtual time the client waits exactly as long as the server said a
  /// retry needs (bucket refilled / queue slot free), instead of hammering
  /// an exhausted quota and burning admission work. Deadline sheds are
  /// terminal (the estimated wait already exceeded the request's own
  /// budget; arriving later cannot help), as is any transport error.
  /// `attempts` on the returned result counts the round trips taken.
  common::Result<ClientResult> CallWithRetry(WireRequest request,
                                             const RetryOptions& options);
  common::Result<ClientResult> CallWithRetry(WireRequest request) {
    return CallWithRetry(std::move(request), RetryOptions());
  }

  /// Pipelined batch: every request frame is written back to back, then
  /// results are collected (they arrive in completion order) and returned
  /// in request order. Partial failure is total failure: any transport
  /// error aborts the batch.
  common::Result<std::vector<ClientResult>> CallBatch(
      const std::vector<WireRequest>& requests);

  /// Incremental view of one streamed call. Next() yields each chunk as it
  /// arrives; Finish() returns the final result (with the reassembled
  /// text). Only valid while no other Receive()-side call interleaves.
  class StreamHandle {
   public:
    /// True and fills `chunk` while chunks keep arriving; false once the
    /// final response (or an error frame) has been consumed.
    bool Next(std::string* chunk);
    /// The final result; call after Next() returns false.
    common::Result<ClientResult> Finish();

   private:
    friend class Client;
    explicit StreamHandle(Client* client, uint64_t id)
        : client_(client), id_(id) {}
    Client* client_;
    uint64_t id_;
    bool done_ = false;
    std::string text_;
    size_t chunks_ = 0;
    ClientResult final_;
    common::Status error_;
  };

  /// Sends `request` (stream_chunk_bytes must be > 0 for chunks to appear)
  /// and returns a handle iterating the response stream.
  common::Result<StreamHandle> CallStreaming(const WireRequest& request);

 private:
  /// Reads frames until one *final* frame (response or error) is decoded;
  /// chunk frames feed the per-id reassembly buffers.
  common::Result<ClientResult> ReceiveFromWire();
  /// Blocks for the next whole frame (reads more bytes as needed).
  common::Status NextFrame(Frame* out);
  common::Status ReadMore();
  /// Builds a ClientResult from a final (response/error) frame, consuming
  /// any reassembly buffer accumulated for its id.
  common::Result<ClientResult> MakeResult(const Frame& frame);
  void AccumulateChunk(const WireChunk& chunk);

  int fd_ = -1;
  Options options_;
  // Receive-side state (owned by whichever single thread is receiving).
  FrameDecoder decoder_;
  std::map<uint64_t, std::pair<std::string, size_t>> partial_;  // id -> text
  std::vector<ClientResult> completed_;  // decoded while awaiting another id
};

}  // namespace llmdm::net

#endif  // LLMDM_NET_CLIENT_H_
