#include "net/wire.h"

#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"
#include "durability/format.h"

namespace llmdm::net {

namespace {

using durability::AppendF64;
using durability::AppendString;
using durability::AppendU32;
using durability::AppendU64;
using durability::AppendU8;
using durability::ByteReader;
using durability::AppendI64;

/// Checksum contract: FNV-1a over the payload, seeded with the FNV-1a of the
/// first 12 header bytes (magic..length). Computed identically by encoder
/// and decoder; a flipped bit anywhere in the frame fails the comparison.
uint64_t FrameChecksum(std::string_view header12, std::string_view payload) {
  return common::Fnv1a(payload, common::Fnv1a(header12));
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kRequest) &&
         t <= static_cast<uint8_t>(FrameType::kError);
}

/// All payload decoders must consume the payload exactly: trailing bytes
/// mean the peer speaks a different (newer?) dialect and silently ignoring
/// them would mask that.
common::Status CheckFullyConsumed(const ByteReader& reader,
                                  const char* what) {
  if (!reader.empty()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "%s payload has %zu trailing bytes", what, reader.remaining()));
  }
  return common::Status::Ok();
}

}  // namespace

std::string EncodeFrame(FrameType type, uint16_t flags,
                        std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&frame, kWireMagic);
  AppendU8(&frame, kWireVersion);
  AppendU8(&frame, static_cast<uint8_t>(type));
  AppendU8(&frame, static_cast<uint8_t>(flags & 0xFF));
  AppendU8(&frame, static_cast<uint8_t>((flags >> 8) & 0xFF));
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU64(&frame, FrameChecksum(std::string_view(frame.data(), 12), payload));
  frame.append(payload.data(), payload.size());
  return frame;
}

std::string EncodeRequestFrame(const WireRequest& request) {
  std::string payload;
  AppendU64(&payload, request.id);
  AppendString(&payload, request.tenant);
  AppendString(&payload, request.skill);
  AppendString(&payload, request.input);
  AppendU8(&payload, request.priority);
  AppendF64(&payload, request.deadline_ms);
  AppendF64(&payload, request.arrival_vms);
  AppendU32(&payload, request.stream_chunk_bytes);
  return EncodeFrame(FrameType::kRequest, 0, payload);
}

std::string EncodeResponseFrame(const WireResponse& response, bool streamed) {
  std::string payload;
  AppendU64(&payload, response.id);
  AppendU8(&payload, response.status_code);
  AppendString(&payload, response.status_message);
  AppendString(&payload, response.text);
  AppendString(&payload, response.model);
  AppendI64(&payload, response.cost_micros);
  AppendF64(&payload, response.queue_wait_vms);
  AppendF64(&payload, response.service_vms);
  AppendF64(&payload, response.latency_vms);
  uint8_t bits = 0;
  if (response.deadline_missed) bits |= 1u << 0;
  if (response.hedged) bits |= 1u << 1;
  if (response.hedge_won) bits |= 1u << 2;
  if (response.coalesced) bits |= 1u << 3;
  AppendU8(&payload, bits);
  return EncodeFrame(FrameType::kResponse, streamed ? kFlagStreamed : 0,
                     payload);
}

std::string EncodeChunkFrame(const WireChunk& chunk) {
  std::string payload;
  AppendU64(&payload, chunk.id);
  AppendU32(&payload, chunk.seq);
  AppendString(&payload, chunk.data);
  return EncodeFrame(FrameType::kStreamChunk, 0, payload);
}

std::string EncodeErrorFrame(const WireError& error) {
  std::string payload;
  AppendU64(&payload, error.id);
  AppendU8(&payload, error.status_code);
  AppendU8(&payload, error.shed_cause);
  AppendF64(&payload, error.retry_after_vms);
  AppendString(&payload, error.message);
  return EncodeFrame(FrameType::kError, 0, payload);
}

common::Result<WireRequest> DecodeRequest(std::string_view payload) {
  ByteReader reader(payload);
  WireRequest r;
  LLMDM_RETURN_IF_ERROR(reader.ReadU64(&r.id));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.tenant));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.skill));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.input));
  LLMDM_RETURN_IF_ERROR(reader.ReadU8(&r.priority));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&r.deadline_ms));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&r.arrival_vms));
  LLMDM_RETURN_IF_ERROR(reader.ReadU32(&r.stream_chunk_bytes));
  LLMDM_RETURN_IF_ERROR(CheckFullyConsumed(reader, "request"));
  if (r.priority > 2) {
    return common::Status::InvalidArgument(
        common::StrFormat("request priority %u out of range", r.priority));
  }
  return r;
}

common::Result<WireResponse> DecodeResponse(std::string_view payload) {
  ByteReader reader(payload);
  WireResponse r;
  uint8_t bits = 0;
  LLMDM_RETURN_IF_ERROR(reader.ReadU64(&r.id));
  LLMDM_RETURN_IF_ERROR(reader.ReadU8(&r.status_code));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.status_message));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.text));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&r.model));
  LLMDM_RETURN_IF_ERROR(reader.ReadI64(&r.cost_micros));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&r.queue_wait_vms));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&r.service_vms));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&r.latency_vms));
  LLMDM_RETURN_IF_ERROR(reader.ReadU8(&bits));
  LLMDM_RETURN_IF_ERROR(CheckFullyConsumed(reader, "response"));
  r.deadline_missed = (bits & (1u << 0)) != 0;
  r.hedged = (bits & (1u << 1)) != 0;
  r.hedge_won = (bits & (1u << 2)) != 0;
  r.coalesced = (bits & (1u << 3)) != 0;
  return r;
}

common::Result<WireChunk> DecodeChunk(std::string_view payload) {
  ByteReader reader(payload);
  WireChunk c;
  LLMDM_RETURN_IF_ERROR(reader.ReadU64(&c.id));
  LLMDM_RETURN_IF_ERROR(reader.ReadU32(&c.seq));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&c.data));
  LLMDM_RETURN_IF_ERROR(CheckFullyConsumed(reader, "chunk"));
  return c;
}

common::Result<WireError> DecodeError(std::string_view payload) {
  ByteReader reader(payload);
  WireError e;
  LLMDM_RETURN_IF_ERROR(reader.ReadU64(&e.id));
  LLMDM_RETURN_IF_ERROR(reader.ReadU8(&e.status_code));
  LLMDM_RETURN_IF_ERROR(reader.ReadU8(&e.shed_cause));
  LLMDM_RETURN_IF_ERROR(reader.ReadF64(&e.retry_after_vms));
  LLMDM_RETURN_IF_ERROR(reader.ReadString(&e.message));
  LLMDM_RETURN_IF_ERROR(CheckFullyConsumed(reader, "error"));
  return e;
}

common::Status FrameDecoder::Feed(std::string_view data) {
  if (!error_.ok()) return error_;
  buffer_.append(data.data(), data.size());
  for (;;) {
    if (buffer_.size() < kFrameHeaderBytes) return common::Status::Ok();
    ByteReader header(std::string_view(buffer_.data(), kFrameHeaderBytes));
    uint32_t magic = 0, length = 0;
    uint8_t version = 0, type = 0, flags_lo = 0, flags_hi = 0;
    uint64_t checksum = 0;
    // Header reads over a 20-byte view cannot fail; statuses are asserted
    // away by construction but still checked to honour [[nodiscard]].
    common::Status hs = header.ReadU32(&magic);
    if (hs.ok()) hs = header.ReadU8(&version);
    if (hs.ok()) hs = header.ReadU8(&type);
    if (hs.ok()) hs = header.ReadU8(&flags_lo);
    if (hs.ok()) hs = header.ReadU8(&flags_hi);
    if (hs.ok()) hs = header.ReadU32(&length);
    if (hs.ok()) hs = header.ReadU64(&checksum);
    if (!hs.ok()) {
      error_ = hs;
      return error_;
    }
    if (magic != kWireMagic) {
      error_ = common::Status::InvalidArgument(
          common::StrFormat("bad frame magic 0x%08x", magic));
      return error_;
    }
    if (version != kWireVersion) {
      error_ = common::Status::InvalidArgument(
          common::StrFormat("unsupported wire version %u", version));
      return error_;
    }
    if (!ValidFrameType(type)) {
      error_ = common::Status::InvalidArgument(
          common::StrFormat("unknown frame type %u", type));
      return error_;
    }
    if (length > options_.max_frame_bytes) {
      error_ = common::Status::InvalidArgument(common::StrFormat(
          "frame length %u exceeds cap %zu", length, options_.max_frame_bytes));
      return error_;
    }
    if (buffer_.size() < kFrameHeaderBytes + length) {
      return common::Status::Ok();  // torn frame: wait for the next read
    }
    std::string_view payload(buffer_.data() + kFrameHeaderBytes, length);
    uint64_t expect =
        common::Fnv1a(payload, common::Fnv1a(std::string_view(buffer_.data(), 12)));
    if (expect != checksum) {
      error_ = common::Status::InvalidArgument(common::StrFormat(
          "frame checksum mismatch (expected %016llx, header says %016llx)",
          static_cast<unsigned long long>(expect),
          static_cast<unsigned long long>(checksum)));
      return error_;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.flags = static_cast<uint16_t>(flags_lo) |
                  (static_cast<uint16_t>(flags_hi) << 8);
    frame.payload.assign(payload.data(), payload.size());
    ready_.push_back(std::move(frame));
    buffer_.erase(0, kFrameHeaderBytes + length);
  }
}

bool FrameDecoder::Next(Frame* frame) {
  if (ready_.empty()) return false;
  *frame = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace llmdm::net
