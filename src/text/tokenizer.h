#ifndef LLMDM_TEXT_TOKENIZER_H_
#define LLMDM_TEXT_TOKENIZER_H_

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llmdm::text {

/// A byte that belongs to a word token (vs punctuation/whitespace).
inline bool IsWordByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Deterministic sub-word tokenizer used for (a) metering simulated LLM API
/// costs and (b) producing bag-of-token features for embeddings.
///
/// The scheme approximates BPE statistics without a learned merge table:
/// words and punctuation are split lexically, then words longer than
/// `max_piece_len` are chunked. On English-like text this yields roughly
/// 1.3 tokens per word, matching the ~4 chars/token rule of thumb that the
/// paper's quoted per-1k-token prices assume.
class Tokenizer {
 public:
  struct Options {
    /// Maximum characters per word piece before chunking.
    size_t max_piece_len = 6;
    /// Lowercase pieces (embedding features want case folding; cost metering
    /// does not care).
    bool lowercase = false;
  };

  Tokenizer() : Tokenizer(Options{}) {}
  explicit Tokenizer(const Options& options) : options_(options) {}

  /// Splits `input` into word pieces and punctuation tokens.
  std::vector<std::string> Tokenize(std::string_view input) const;

  /// Token count without materializing the pieces (fast path for metering).
  size_t CountTokens(std::string_view input) const;

  /// Visits every token as a `string_view` into `input`, in Tokenize()
  /// order, without allocating. Word pieces are NOT case-folded (they alias
  /// the input bytes); callers that need `lowercase` semantics fold bytes as
  /// they consume them (see HashingEmbedder::EmbedInto). `visitor` is
  /// invoked as `visitor(piece, is_word)`.
  template <typename Visitor>
  void VisitTokens(std::string_view input, Visitor&& visitor) const {
    size_t i = 0;
    while (i < input.size()) {
      char c = input[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsWordByte(c)) {
        size_t start = i;
        while (i < input.size() && IsWordByte(input[i])) ++i;
        std::string_view word = input.substr(start, i - start);
        for (size_t off = 0; off < word.size(); off += options_.max_piece_len) {
          visitor(word.substr(off, options_.max_piece_len), true);
        }
      } else {
        visitor(input.substr(i, 1), false);
        ++i;
      }
    }
  }

 private:
  Options options_;
};

/// Counts tokens with the default tokenizer; convenience for cost metering.
size_t CountTokens(std::string_view input);

/// Process-wide memo for token counts of recurring text, keyed by a
/// caller-computed 64-bit hash. The metering boundary counts the same
/// system/few-shot prompt prefix on every call; hashing the parts is much
/// cheaper than re-rendering and re-counting them, so Prompt::
/// CountInputTokens caches the prefix count here. Direct-mapped and
/// fixed-size (a hot prefix set is small); thread-safe. The full 64-bit key
/// is stored and verified, so two texts only alias if their hashes collide.
std::optional<size_t> LookupTokenCount(uint64_t key);
void StoreTokenCount(uint64_t key, size_t count);

/// Memo statistics for tests and the perf bench (hits, misses since start).
struct TokenCountCacheStats {
  size_t hits = 0;
  size_t misses = 0;
};
TokenCountCacheStats GetTokenCountCacheStats();

/// Character n-grams of length n (with boundary markers). Used by the
/// embedder for robustness to small rewordings.
std::vector<std::string> CharNgrams(std::string_view input, size_t n);

}  // namespace llmdm::text

#endif  // LLMDM_TEXT_TOKENIZER_H_
