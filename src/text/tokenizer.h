#ifndef LLMDM_TEXT_TOKENIZER_H_
#define LLMDM_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace llmdm::text {

/// Deterministic sub-word tokenizer used for (a) metering simulated LLM API
/// costs and (b) producing bag-of-token features for embeddings.
///
/// The scheme approximates BPE statistics without a learned merge table:
/// words and punctuation are split lexically, then words longer than
/// `max_piece_len` are chunked. On English-like text this yields roughly
/// 1.3 tokens per word, matching the ~4 chars/token rule of thumb that the
/// paper's quoted per-1k-token prices assume.
class Tokenizer {
 public:
  struct Options {
    /// Maximum characters per word piece before chunking.
    size_t max_piece_len = 6;
    /// Lowercase pieces (embedding features want case folding; cost metering
    /// does not care).
    bool lowercase = false;
  };

  Tokenizer() : Tokenizer(Options{}) {}
  explicit Tokenizer(const Options& options) : options_(options) {}

  /// Splits `input` into word pieces and punctuation tokens.
  std::vector<std::string> Tokenize(std::string_view input) const;

  /// Token count without materializing the pieces (fast path for metering).
  size_t CountTokens(std::string_view input) const;

 private:
  Options options_;
};

/// Counts tokens with the default tokenizer; convenience for cost metering.
size_t CountTokens(std::string_view input);

/// Character n-grams of length n (with boundary markers). Used by the
/// embedder for robustness to small rewordings.
std::vector<std::string> CharNgrams(std::string_view input, size_t n);

}  // namespace llmdm::text

#endif  // LLMDM_TEXT_TOKENIZER_H_
