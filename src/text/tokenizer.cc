#include "text/tokenizer.h"

#include <array>
#include <cctype>
#include <mutex>
#include <shared_mutex>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace llmdm::text {
namespace {

bool IsWordChar(char c) { return IsWordByte(c); }

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < input.size() && IsWordChar(input[i])) ++i;
      std::string_view word = input.substr(start, i - start);
      // Chunk long words into fixed-size pieces, approximating how BPE breaks
      // rare words into several sub-words.
      for (size_t off = 0; off < word.size(); off += options_.max_piece_len) {
        std::string piece(word.substr(off, options_.max_piece_len));
        if (options_.lowercase) piece = common::ToLower(piece);
        out.push_back(std::move(piece));
      }
    } else {
      out.emplace_back(1, c);
      ++i;
    }
  }
  return out;
}

size_t Tokenizer::CountTokens(std::string_view input) const {
  size_t count = 0;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < input.size() && IsWordChar(input[i])) ++i;
      size_t len = i - start;
      count += (len + options_.max_piece_len - 1) / options_.max_piece_len;
    } else {
      ++count;
      ++i;
    }
  }
  return count;
}

size_t CountTokens(std::string_view input) {
  static const Tokenizer kDefault{};
  return kDefault.CountTokens(input);
}

namespace {

struct CountSlot {
  uint64_t key = 0;
  size_t count = 0;
  bool valid = false;
};

// Direct-mapped: a slot per low-bits bucket, overwritten on conflict. The
// working set (distinct prompt prefixes alive at once) is tiny compared to
// 1024, so conflict evictions are rare; reads take the shared lock.
constexpr size_t kCountCacheSlots = 1024;
static_assert((kCountCacheSlots & (kCountCacheSlots - 1)) == 0);

struct CountCache {
  std::shared_mutex mu;
  std::array<CountSlot, kCountCacheSlots> slots;
  // The memo is process-wide, so its counters live in the global registry —
  // the one subsystem that reports through obs::Registry::Global() rather
  // than an injectable per-instance registry.
  obs::Counter* hits =
      obs::Registry::Global().GetCounter("llmdm_text_token_cache_hits_total");
  obs::Counter* misses =
      obs::Registry::Global().GetCounter("llmdm_text_token_cache_misses_total");
};

CountCache& GlobalCountCache() {
  static CountCache* cache = new CountCache();  // leaked: process lifetime
  return *cache;
}

}  // namespace

std::optional<size_t> LookupTokenCount(uint64_t key) {
  CountCache& cache = GlobalCountCache();
  {
    std::shared_lock<std::shared_mutex> lock(cache.mu);
    const CountSlot& slot = cache.slots[key & (kCountCacheSlots - 1)];
    if (slot.valid && slot.key == key) {
      cache.hits->Add(1);
      return slot.count;
    }
  }
  cache.misses->Add(1);
  return std::nullopt;
}

void StoreTokenCount(uint64_t key, size_t count) {
  CountCache& cache = GlobalCountCache();
  std::unique_lock<std::shared_mutex> lock(cache.mu);
  cache.slots[key & (kCountCacheSlots - 1)] = CountSlot{key, count, true};
}

TokenCountCacheStats GetTokenCountCacheStats() {
  CountCache& cache = GlobalCountCache();
  return TokenCountCacheStats{static_cast<size_t>(cache.hits->value()),
                              static_cast<size_t>(cache.misses->value())};
}

std::vector<std::string> CharNgrams(std::string_view input, size_t n) {
  std::vector<std::string> out;
  if (n == 0) return out;
  std::string padded = "^";
  padded.append(common::ToLower(input));
  padded.push_back('$');
  if (padded.size() < n) return out;
  out.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    out.emplace_back(padded.substr(i, n));
  }
  return out;
}

}  // namespace llmdm::text
