#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace llmdm::text {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < input.size() && IsWordChar(input[i])) ++i;
      std::string_view word = input.substr(start, i - start);
      // Chunk long words into fixed-size pieces, approximating how BPE breaks
      // rare words into several sub-words.
      for (size_t off = 0; off < word.size(); off += options_.max_piece_len) {
        std::string piece(word.substr(off, options_.max_piece_len));
        if (options_.lowercase) piece = common::ToLower(piece);
        out.push_back(std::move(piece));
      }
    } else {
      out.emplace_back(1, c);
      ++i;
    }
  }
  return out;
}

size_t Tokenizer::CountTokens(std::string_view input) const {
  size_t count = 0;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < input.size() && IsWordChar(input[i])) ++i;
      size_t len = i - start;
      count += (len + options_.max_piece_len - 1) / options_.max_piece_len;
    } else {
      ++count;
      ++i;
    }
  }
  return count;
}

size_t CountTokens(std::string_view input) {
  static const Tokenizer kDefault{};
  return kDefault.CountTokens(input);
}

std::vector<std::string> CharNgrams(std::string_view input, size_t n) {
  std::vector<std::string> out;
  if (n == 0) return out;
  std::string padded = "^";
  padded.append(common::ToLower(input));
  padded.push_back('$');
  if (padded.size() < n) return out;
  out.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    out.emplace_back(padded.substr(i, n));
  }
  return out;
}

}  // namespace llmdm::text
