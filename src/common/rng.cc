#include "common/rng.h"

#include <cmath>

namespace llmdm::common {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::UniformDouble() {
  // 53 random bits -> double in [0, 1).
  return (Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-12);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * M_PI * u2;
  spare_normal_ = mag * std::sin(two_pi_u2);
  has_spare_normal_ = true;
  return mean + stddev * mag * std::cos(two_pi_u2);
}

double Rng::Exponential(double lambda) {
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-12);
  return -std::log(u) / lambda;
}

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return NextBelow(n);
  // Inverse-CDF over the (small) rank space; n in our workloads is modest so
  // the O(n) normalization is fine and keeps the draw exact.
  double norm = 0.0;
  for (size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * norm;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t mix = Next() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(mix);
}

}  // namespace llmdm::common
