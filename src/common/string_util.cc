#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace llmdm::common {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double TokenJaccard(std::string_view a, std::string_view b) {
  auto ta = SplitWhitespace(ToLower(a));
  auto tb = SplitWhitespace(ToLower(b));
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string s(Trim(text));
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string s(Trim(text));
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace llmdm::common
