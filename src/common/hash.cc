#include "common/hash.h"

namespace llmdm::common {

uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

double HashToUnit(uint64_t h) {
  // Final avalanche then take 53 bits.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return (h >> 11) * 0x1.0p-53;
}

}  // namespace llmdm::common
