#ifndef LLMDM_COMMON_LOGGING_H_
#define LLMDM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace llmdm::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed. Defaults to
/// kWarning so library internals stay quiet in benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));
}  // namespace internal_logging

}  // namespace llmdm::common

#define LLMDM_LOG(level, ...)                                               \
  ::llmdm::common::internal_logging::LogMessage(                            \
      ::llmdm::common::LogLevel::k##level, __FILE__, __LINE__, __VA_ARGS__)

// Invariant check: aborts with a message. Used for programmer errors only;
// recoverable conditions go through Status.
#define LLMDM_CHECK(cond, ...)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::llmdm::common::internal_logging::LogMessage(                 \
          ::llmdm::common::LogLevel::kError, __FILE__, __LINE__,     \
          "CHECK failed: %s", #cond);                                \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#endif  // LLMDM_COMMON_LOGGING_H_
