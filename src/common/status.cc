#include "common/status.h"

namespace llmdm::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kRateLimited:
      return "RateLimited";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool IsTransientError(StatusCode code) {
  switch (code) {
    case StatusCode::kRateLimited:
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace llmdm::common
