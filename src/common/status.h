#ifndef LLMDM_COMMON_STATUS_H_
#define LLMDM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace llmdm::common {

// Error codes used across the library. Mirrors the usual
// absl::StatusCode / rocksdb::Status vocabulary; library code never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kAborted,
  // Transient endpoint failures (remote LLM services under load). Kept
  // distinct from kResourceExhausted/kInternal so retry policies can tell
  // "try again" apart from "this request can never succeed".
  kRateLimited,
  kTimeout,
  kUnavailable,
};

/// True for codes a retry can plausibly cure (rate limits, timeouts,
/// outages). Permanent errors (bad arguments, missing skills) return false
/// so retry layers fail fast instead of burning their attempt budget.
bool IsTransientError(StatusCode code);

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error value. Cheap to copy when OK (no message
/// allocation); carries a message only on error. [[nodiscard]]: silently
/// dropping a Status is how partial failures go unnoticed — call sites that
/// genuinely do not care must say so with `.ok()` or a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(StatusCode::kRateLimited, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace llmdm::common

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or Result<T> (Result is constructible from Status).
#define LLMDM_RETURN_IF_ERROR(expr)                      \
  do {                                                   \
    ::llmdm::common::Status _llmdm_status = (expr);      \
    if (!_llmdm_status.ok()) return _llmdm_status;       \
  } while (0)

#endif  // LLMDM_COMMON_STATUS_H_
