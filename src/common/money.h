#ifndef LLMDM_COMMON_MONEY_H_
#define LLMDM_COMMON_MONEY_H_

#include <cstdint>
#include <string>

namespace llmdm::common {

/// Exact dollar amount stored in micro-dollars. LLM API prices are quoted in
/// fractions of a cent per 1k tokens, so floating-point accumulation across
/// thousands of calls would drift; integer micro-dollars keeps the benchmark
/// cost columns exact and comparison-stable.
class Money {
 public:
  constexpr Money() : micros_(0) {}

  static constexpr Money FromMicros(int64_t micros) { return Money(micros); }
  static constexpr Money FromDollars(double dollars) {
    return Money(static_cast<int64_t>(dollars * 1e6 + (dollars >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Money Zero() { return Money(0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double dollars() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Money operator+(Money other) const {
    return Money(micros_ + other.micros_);
  }
  constexpr Money operator-(Money other) const {
    return Money(micros_ - other.micros_);
  }
  Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }
  constexpr Money operator*(int64_t k) const { return Money(micros_ * k); }
  constexpr bool operator==(Money other) const { return micros_ == other.micros_; }
  constexpr bool operator<(Money other) const { return micros_ < other.micros_; }
  constexpr bool operator<=(Money other) const { return micros_ <= other.micros_; }
  constexpr bool operator>(Money other) const { return micros_ > other.micros_; }
  constexpr bool operator>=(Money other) const { return micros_ >= other.micros_; }

  /// "$1.234" style rendering with `decimals` fractional digits.
  std::string ToString(int decimals = 3) const;

 private:
  explicit constexpr Money(int64_t micros) : micros_(micros) {}

  int64_t micros_;
};

}  // namespace llmdm::common

#endif  // LLMDM_COMMON_MONEY_H_
