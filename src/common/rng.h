#ifndef LLMDM_COMMON_RNG_H_
#define LLMDM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace llmdm::common {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded through
/// splitmix64). Every stochastic component in the library draws from an Rng
/// with an explicit seed so that all experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Zipf-distributed rank in [0, n) with exponent s (>= 0). Used to model
  /// skewed query popularity for cache workloads.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = NextBelow(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Uniformly chosen element. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// Derives an independent child generator; hashing in `salt` lets callers
  /// create per-item streams that do not perturb each other.
  Rng Fork(uint64_t salt);

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace llmdm::common

#endif  // LLMDM_COMMON_RNG_H_
