#ifndef LLMDM_COMMON_RESULT_H_
#define LLMDM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace llmdm::common {

/// A value-or-error holder in the spirit of absl::StatusOr<T>. A Result is
/// either OK and holds a T, or holds a non-OK Status. Accessing the value of
/// an error Result is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from an error status and from a value keeps call
  // sites readable: `return Status::NotFound(...)` / `return value;`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value; use Result(T)");
  }
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace llmdm::common

// Evaluates `rexpr` (a Result<T>), propagating errors; on success assigns the
// value to `lhs`. `lhs` may include a declaration, e.g.
//   LLMDM_ASSIGN_OR_RETURN(auto table, db.Find("t"));
#define LLMDM_ASSIGN_OR_RETURN(lhs, rexpr)                \
  LLMDM_ASSIGN_OR_RETURN_IMPL_(                           \
      LLMDM_RESULT_CONCAT_(_llmdm_result, __LINE__), lhs, rexpr)

#define LLMDM_RESULT_CONCAT_INNER_(a, b) a##b
#define LLMDM_RESULT_CONCAT_(a, b) LLMDM_RESULT_CONCAT_INNER_(a, b)
#define LLMDM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // LLMDM_COMMON_RESULT_H_
