#include "common/money.h"

#include <cmath>
#include <cstdio>

namespace llmdm::common {

std::string Money::ToString(int decimals) const {
  if (decimals < 0) decimals = 0;
  if (decimals > 6) decimals = 6;
  double value = dollars();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "$%.*f", decimals, value);
  return buf;
}

}  // namespace llmdm::common
