#ifndef LLMDM_COMMON_HASH_H_
#define LLMDM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace llmdm::common {

/// FNV-1a over bytes. Stable across platforms/runs; used wherever a hash
/// participates in deterministic behaviour (feature hashing, error
/// injection), so std::hash (implementation-defined) is deliberately avoided.
uint64_t Fnv1a(std::string_view data, uint64_t seed = 0xCBF29CE484222325ULL);

/// One FNV-1a step. Because FNV-1a is byte-sequential,
/// `Fnv1a(b, Fnv1a(a, seed)) == Fnv1a(a + b, seed)`: a hash of a
/// concatenation can be built incrementally from pieces (or transformed
/// bytes, e.g. lowercased on the fly) without materializing the joined
/// string. The embedder's hot path depends on this identity.
inline uint64_t Fnv1aByte(uint64_t state, unsigned char byte) {
  state ^= byte;
  state *= 0x100000001B3ULL;
  return state;
}

/// Mixes two 64-bit hashes (boost::hash_combine style, 64-bit constants).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Maps a hash to the unit interval [0, 1). Used for deterministic
/// per-item "randomness" (e.g. does the simulated model err on this input).
double HashToUnit(uint64_t h);

}  // namespace llmdm::common

#endif  // LLMDM_COMMON_HASH_H_
