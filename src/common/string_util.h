#ifndef LLMDM_COMMON_STRING_UTIL_H_
#define LLMDM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace llmdm::common {

/// Splits on `sep`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance (O(len_a * len_b)).
size_t EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity between the whitespace-token sets of two strings.
double TokenJaccard(std::string_view a, std::string_view b);

/// Parses a full string as int64/double; returns false on trailing junk.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace llmdm::common

#endif  // LLMDM_COMMON_STRING_UTIL_H_
