#include "common/logging.h"

#include <cstdarg>

namespace llmdm::common {
namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), file, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace internal_logging
}  // namespace llmdm::common
