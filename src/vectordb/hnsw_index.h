#ifndef LLMDM_VECTORDB_HNSW_INDEX_H_
#define LLMDM_VECTORDB_HNSW_INDEX_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "vectordb/index.h"

namespace llmdm::vectordb {

/// Hierarchical Navigable Small World graph index (Malkov & Yashunin).
/// Approximate search in O(log n) hops; the standard engine behind the
/// vector databases the paper builds on (Sec. I, III-B.2).
///
/// Deletions are tombstoned: the node stays in the graph as a routing point
/// but is filtered from results (the approach HNSW-based stores actually
/// ship, since unlinking would degrade graph connectivity).
class HnswIndex : public VectorIndex {
 public:
  struct Options {
    size_t m = 16;                // out-degree target at levels > 0
    size_t ef_construction = 100; // beam width at insert time
    size_t ef_search = 64;        // beam width at query time
    uint64_t seed = 7;            // level assignment seed
    /// Run graph traversal on int8 codes (exact integer dots, ~4x less
    /// memory traffic per hop) and rescore the ef-wide level-0 beam with
    /// exact float32 before returning — result scores are always exact,
    /// only the routing is approximate. Changes which graph gets built
    /// (construction sims are quantized too), so flip it at index creation,
    /// not on a live index.
    bool quantize = false;
  };

  HnswIndex() : HnswIndex(Options{}) {}
  explicit HnswIndex(const Options& options)
      : options_(options), rng_(options.seed) {}

  common::Status Add(uint64_t id, Vector vector) override;
  common::Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  size_t Size() const override;

  std::vector<SearchResult> Search(const Vector& query,
                                   size_t k) const override;

  /// Live (non-tombstoned) vectors only, ascending external id.
  void ForEach(const std::function<void(uint64_t, const Vector&)>& fn)
      const override;

  size_t ef_search() const { return options_.ef_search; }
  void set_ef_search(size_t ef) { options_.ef_search = ef; }

 private:
  struct Node {
    Vector vector;
    // neighbors[level] = adjacency list at that level.
    std::vector<std::vector<uint32_t>> neighbors;
    uint64_t external_id = 0;
    bool deleted = false;
    // Quantized view of `vector` (Options::quantize only).
    std::vector<int8_t> codes;
    float scale = 0.0f;
    float norm = 0.0f;
  };

  /// A query prepared for traversal: the float vector plus (under
  /// Options::quantize) its int8 codes, built once per public operation so
  /// every hop is a code-vs-code integer dot.
  struct Probe {
    const Vector* vec = nullptr;
    std::vector<int8_t> codes;
    float scale = 0.0f;
    float norm = 0.0f;
  };

  int RandomLevel();
  Probe MakeProbe(const Vector& v) const;
  float Sim(const Probe& probe, uint32_t node) const;
  float SimNodes(uint32_t a, uint32_t b) const;
  // Greedy beam search at one level; returns up to `ef` closest nodes.
  std::vector<std::pair<float, uint32_t>> SearchLayer(const Probe& query,
                                                      uint32_t entry,
                                                      size_t ef,
                                                      size_t level) const;
  void Connect(uint32_t node, uint32_t peer, size_t level);
  size_t MaxDegree(size_t level) const {
    return level == 0 ? options_.m * 2 : options_.m;
  }

  Options options_;
  common::Rng rng_;
  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, uint32_t> id_to_node_;
  int top_level_ = -1;
  uint32_t entry_point_ = 0;
  size_t live_count_ = 0;
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_HNSW_INDEX_H_
