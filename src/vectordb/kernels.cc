#include "vectordb/kernels.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#define LLMDM_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define LLMDM_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace llmdm::vectordb::kernels {

namespace {

// ---------------------------------------------------------------------------
// Portable scalar kernels: the reference implementation of the 16-lane
// reduction contract. The inner loops carry 16 independent accumulators, so
// the auto-vectorizer may legally turn them into SIMD without reassociating
// anything — the result is the same bit pattern either way.
// ---------------------------------------------------------------------------

float DotScalar(const float* a, const float* b, size_t n) {
  float s[16] = {0.0f};
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t j = 0; j < 16; ++j) s[j] += a[i + j] * b[i + j];
  }
  float t[8];
  for (size_t j = 0; j < 8; ++j) t[j] = s[j] + s[j + 8];
  float u[4];
  for (size_t m = 0; m < 4; ++m) u[m] = t[m] + t[m + 4];
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) total += a[i] * b[i];
  return total;
}

float L2SqScalar(const float* a, const float* b, size_t n) {
  float s[16] = {0.0f};
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t j = 0; j < 16; ++j) {
      float d = a[i + j] - b[i + j];
      s[j] += d * d;
    }
  }
  float t[8];
  for (size_t j = 0; j < 8; ++j) t[j] = s[j] + s[j + 8];
  float u[4];
  for (size_t m = 0; m < 4; ++m) u[m] = t[m] + t[m + 4];
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a function-level target attribute so the rest
// of the library keeps the baseline ISA; only ever called after
// __builtin_cpu_supports("avx2") succeeded. Multiply and add stay separate
// instructions (no FMA) to preserve the per-lane rounding the scalar
// fallback performs.
// ---------------------------------------------------------------------------

#if LLMDM_KERNELS_X86

__attribute__((target("avx2"))) float DotAvx2(const float* a, const float* b,
                                              size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                             _mm256_loadu_ps(b + i + 8)));
  }
  // Reduction tree per the contract: t[j] = s[j] + s[j+8], u[m] = t[m] +
  // t[m+4], total = (u0+u2) + (u1+u3).
  __m256 t = _mm256_add_ps(acc0, acc1);
  __m128 w = _mm_add_ps(_mm256_castps256_ps128(t),
                        _mm256_extractf128_ps(t, 1));
  alignas(16) float u[4];
  _mm_store_ps(u, w);
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2"))) float L2SqAvx2(const float* a, const float* b,
                                               size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
  }
  __m256 t = _mm256_add_ps(acc0, acc1);
  __m128 w = _mm_add_ps(_mm256_castps256_ps128(t),
                        _mm256_extractf128_ps(t, 1));
  alignas(16) float u[4];
  _mm_store_ps(u, w);
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2"))) int32_t DotI8Avx2(const int8_t* a,
                                                  const int8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t total = _mm_cvtsi128_si32(s);
  for (size_t i = n16; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

#endif  // LLMDM_KERNELS_X86

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 baseline — no runtime probe needed).
// ---------------------------------------------------------------------------

#if LLMDM_KERNELS_NEON

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0), acc1 = vdupq_n_f32(0);
  float32x4_t acc2 = vdupq_n_f32(0), acc3 = vdupq_n_f32(0);
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc1 = vaddq_f32(acc1,
                     vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
    acc2 = vaddq_f32(acc2,
                     vmulq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8)));
    acc3 = vaddq_f32(acc3,
                     vmulq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12)));
  }
  // acc0 holds lanes s[0..3], acc1 s[4..7], acc2 s[8..11], acc3 s[12..15]:
  // t[0..3] = acc0+acc2, t[4..7] = acc1+acc3, u = (acc0+acc2)+(acc1+acc3).
  float32x4_t w = vaddq_f32(vaddq_f32(acc0, acc2), vaddq_f32(acc1, acc3));
  float u[4];
  vst1q_f32(u, w);
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) total += a[i] * b[i];
  return total;
}

float L2SqNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0), acc1 = vdupq_n_f32(0);
  float32x4_t acc2 = vdupq_n_f32(0), acc3 = vdupq_n_f32(0);
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    float32x4_t d2 = vsubq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    float32x4_t d3 = vsubq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
    acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
    acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
    acc2 = vaddq_f32(acc2, vmulq_f32(d2, d2));
    acc3 = vaddq_f32(acc3, vmulq_f32(d3, d3));
  }
  float32x4_t w = vaddq_f32(vaddq_f32(acc0, acc2), vaddq_f32(acc1, acc3));
  float u[4];
  vst1q_f32(u, w);
  float total = (u[0] + u[2]) + (u[1] + u[3]);
  for (size_t i = n16; i < n; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

int32_t DotI8Neon(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  const size_t n16 = n & ~static_cast<size_t>(15);
  for (size_t i = 0; i < n16; i += 16) {
    int8x16_t va = vld1q_s8(a + i);
    int8x16_t vb = vld1q_s8(b + i);
    int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    acc = vpadalq_s16(acc, lo);
    acc = vpadalq_s16(acc, hi);
  }
  int32_t total = vaddvq_s32(acc);
  for (size_t i = n16; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

#endif  // LLMDM_KERNELS_NEON

DispatchLevel DetectDispatch() {
#if defined(LLMDM_FORCE_SCALAR)
  return DispatchLevel::kScalar;
#elif LLMDM_KERNELS_X86
  return __builtin_cpu_supports("avx2") ? DispatchLevel::kAvx2
                                        : DispatchLevel::kScalar;
#elif LLMDM_KERNELS_NEON
  return DispatchLevel::kNeon;
#else
  return DispatchLevel::kScalar;
#endif
}

std::atomic<int> g_pinned{-1};

using DotFn = float (*)(const float*, const float*, size_t);
using L2Fn = float (*)(const float*, const float*, size_t);
using DotI8Fn = int32_t (*)(const int8_t*, const int8_t*, size_t);

DotFn ResolveDot(DispatchLevel level) {
  switch (level) {
#if LLMDM_KERNELS_X86
    case DispatchLevel::kAvx2:
      return DotAvx2;
#endif
#if LLMDM_KERNELS_NEON
    case DispatchLevel::kNeon:
      return DotNeon;
#endif
    default:
      return DotScalar;
  }
}

L2Fn ResolveL2(DispatchLevel level) {
  switch (level) {
#if LLMDM_KERNELS_X86
    case DispatchLevel::kAvx2:
      return L2SqAvx2;
#endif
#if LLMDM_KERNELS_NEON
    case DispatchLevel::kNeon:
      return L2SqNeon;
#endif
    default:
      return L2SqScalar;
  }
}

DotI8Fn ResolveDotI8(DispatchLevel level) {
  switch (level) {
#if LLMDM_KERNELS_X86
    case DispatchLevel::kAvx2:
      return DotI8Avx2;
#endif
#if LLMDM_KERNELS_NEON
    case DispatchLevel::kNeon:
      return DotI8Neon;
#endif
    default:
      return DotI8Scalar;
  }
}

}  // namespace

DispatchLevel ActiveDispatch() {
  int pinned = g_pinned.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<DispatchLevel>(pinned);
  static const DispatchLevel detected = DetectDispatch();
  return detected;
}

bool SupportsDispatch(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kAvx2:
#if LLMDM_KERNELS_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DispatchLevel::kNeon:
#if LLMDM_KERNELS_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

const char* DispatchName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

void PinDispatchForTesting(DispatchLevel level) {
  if (!SupportsDispatch(level)) return;
  g_pinned.store(static_cast<int>(level), std::memory_order_relaxed);
}

void UnpinDispatchForTesting() {
  g_pinned.store(-1, std::memory_order_relaxed);
}

void ExportDispatchMetrics(obs::Registry* registry) {
  const DispatchLevel active = ActiveDispatch();
  for (DispatchLevel level : {DispatchLevel::kScalar, DispatchLevel::kAvx2,
                              DispatchLevel::kNeon}) {
    registry
        ->GetGauge("llmdm_kernel_dispatch_level",
                   {{"level", DispatchName(level)}})
        ->Set(level == active ? 1 : 0);
  }
}

float Dot(const float* a, const float* b, size_t n) {
  return ResolveDot(ActiveDispatch())(a, b, n);
}

float L2Sq(const float* a, const float* b, size_t n) {
  return ResolveL2(ActiveDispatch())(a, b, n);
}

void DotBatch(const float* query, const float* base, size_t count, size_t dim,
              float* out) {
  DotFn fn = ResolveDot(ActiveDispatch());
  for (size_t r = 0; r < count; ++r) {
    out[r] = fn(query, base + r * dim, dim);
  }
}

void QuantizeSymmetric(const float* v, size_t n, int8_t* codes, float* scale) {
  float max_abs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    float mag = std::fabs(v[i]);
    if (mag > max_abs) max_abs = mag;
  }
  if (max_abs == 0.0f) {
    if (n > 0) std::memset(codes, 0, n);
    *scale = 0.0f;
    return;
  }
  *scale = max_abs / 127.0f;
  const float inv = 127.0f / max_abs;
  for (size_t i = 0; i < n; ++i) {
    // lrintf under the default rounding mode is round-to-nearest-even:
    // deterministic and identical on every platform we dispatch to.
    long r = std::lrintf(v[i] * inv);
    if (r > 127) r = 127;
    if (r < -127) r = -127;
    codes[i] = static_cast<int8_t>(r);
  }
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return ResolveDotI8(ActiveDispatch())(a, b, n);
}

void DotBatchI8(const int8_t* query, const int8_t* base, size_t count,
                size_t dim, int32_t* out) {
  DotI8Fn fn = ResolveDotI8(ActiveDispatch());
  for (size_t r = 0; r < count; ++r) {
    out[r] = fn(query, base + r * dim, dim);
  }
}

}  // namespace llmdm::vectordb::kernels
