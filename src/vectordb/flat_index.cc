#include "vectordb/flat_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace llmdm::vectordb {

void FlatIndex::GrowDim(size_t new_dim) {
  const size_t slots = ids_.size();
  std::vector<float> base(slots * new_dim, 0.0f);
  for (size_t s = 0; s < slots; ++s) {
    std::memcpy(base.data() + s * new_dim, base_.data() + s * dim_,
                dim_ * sizeof(float));
  }
  base_.swap(base);
  if (options_.quantize) {
    std::vector<int8_t> codes(slots * new_dim, 0);
    for (size_t s = 0; s < slots; ++s) {
      std::memcpy(codes.data() + s * new_dim, codes_.data() + s * dim_, dim_);
    }
    codes_.swap(codes);
  }
  dim_ = new_dim;
}

void FlatIndex::PackRow(size_t slot, const Vector& v) {
  float* row = base_.data() + slot * dim_;
  std::memcpy(row, v.data(), v.size() * sizeof(float));
  std::fill(row + v.size(), row + dim_, 0.0f);
  if (options_.quantize) {
    kernels::QuantizeSymmetric(row, dim_, codes_.data() + slot * dim_,
                               &scales_[slot]);
  }
}

common::Status FlatIndex::Add(uint64_t id, Vector vector) {
  if (vector.size() > dim_) GrowDim(vector.size());
  size_t slot;
  auto it = id_to_slot_.find(id);
  if (it != id_to_slot_.end()) {
    slot = it->second;
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    id_to_slot_[id] = slot;
  } else {
    slot = ids_.size();
    base_.resize((slot + 1) * dim_, 0.0f);
    if (options_.quantize) codes_.resize((slot + 1) * dim_, 0);
    scales_.push_back(0.0f);
    norms_.push_back(0.0f);
    lens_.push_back(0);
    ids_.push_back(0);
    live_.push_back(0);
    id_to_slot_[id] = slot;
  }
  ids_[slot] = id;
  live_[slot] = 1;
  lens_[slot] = static_cast<uint32_t>(vector.size());
  // Norm over the *original* length: bit-matches what CosineSimilarity
  // computes for this vector, so arena scores equal the brute-force path.
  norms_[slot] =
      std::sqrt(kernels::Dot(vector.data(), vector.data(), vector.size()));
  PackRow(slot, vector);
  return common::Status::Ok();
}

common::Status FlatIndex::Remove(uint64_t id) {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return common::Status::NotFound("no vector with id " + std::to_string(id));
  }
  live_[it->second] = 0;
  free_slots_.push_back(it->second);
  id_to_slot_.erase(it);
  return common::Status::Ok();
}

bool FlatIndex::Contains(uint64_t id) const {
  return id_to_slot_.count(id) > 0;
}

std::vector<SearchResult> FlatIndex::Search(const Vector& query,
                                            size_t k) const {
  if (id_to_slot_.empty() || k == 0) return {};
  const size_t slots = ids_.size();
  const size_t n = std::min(query.size(), dim_);
  const float qnorm =
      std::sqrt(kernels::Dot(query.data(), query.data(), query.size()));

  kernels::TopKSelector selected(k);
  if (!options_.quantize) {
    std::vector<float> dots(slots);
    if (n == dim_) {
      kernels::DotBatch(query.data(), base_.data(), slots, dim_, dots.data());
    } else {
      for (size_t s = 0; s < slots; ++s) {
        dots[s] = kernels::Dot(query.data(), base_.data() + s * dim_, n);
      }
    }
    for (size_t s = 0; s < slots; ++s) {
      if (!live_[s]) continue;
      float score = (norms_[s] == 0.0f || qnorm == 0.0f)
                        ? 0.0f
                        : dots[s] / (qnorm * norms_[s]);
      selected.Offer(score, ids_[s]);
    }
  } else {
    // int8 sweep: exact integer dots against the quantized query, then exact
    // float32 rescoring of a bounded short list. The short list order is
    // deterministic (integer dots, id-ascending tie-break), so results are
    // reproducible across runs and dispatch levels.
    std::vector<int8_t> qcodes(dim_);
    float qscale = 0.0f;
    if (query.size() >= dim_) {
      kernels::QuantizeSymmetric(query.data(), dim_, qcodes.data(), &qscale);
    } else {
      std::vector<float> padded(dim_, 0.0f);
      std::memcpy(padded.data(), query.data(), query.size() * sizeof(float));
      kernels::QuantizeSymmetric(padded.data(), dim_, qcodes.data(), &qscale);
    }
    std::vector<int32_t> idots(slots);
    kernels::DotBatchI8(qcodes.data(), codes_.data(), slots, dim_,
                        idots.data());
    kernels::TopKSelector shortlist(k * options_.rescore_factor + 8);
    for (size_t s = 0; s < slots; ++s) {
      if (!live_[s]) continue;
      float approx = (norms_[s] == 0.0f || qnorm == 0.0f)
                         ? 0.0f
                         : static_cast<float>(idots[s]) *
                               (scales_[s] * qscale) / (qnorm * norms_[s]);
      shortlist.Offer(approx, ids_[s]);
    }
    for (const kernels::ScoredId& c : shortlist.TakeSorted()) {
      size_t s = id_to_slot_.at(c.id);
      float dot = kernels::Dot(query.data(), base_.data() + s * dim_, n);
      float score = (norms_[s] == 0.0f || qnorm == 0.0f)
                        ? 0.0f
                        : dot / (qnorm * norms_[s]);
      selected.Offer(score, c.id);
    }
  }

  std::vector<kernels::ScoredId> top = selected.TakeSorted();
  std::vector<SearchResult> out;
  out.reserve(top.size());
  for (const kernels::ScoredId& r : top) {
    out.push_back(SearchResult{r.id, r.score});
  }
  return out;
}

void FlatIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(id_to_slot_.size());
  for (const auto& [id, slot] : id_to_slot_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  Vector row;
  for (uint64_t id : ids) {
    size_t slot = id_to_slot_.at(id);
    const float* data = base_.data() + slot * dim_;
    row.assign(data, data + lens_[slot]);
    fn(id, row);
  }
}

}  // namespace llmdm::vectordb
