#include "vectordb/flat_index.h"

#include <algorithm>

namespace llmdm::vectordb {

common::Status FlatIndex::Add(uint64_t id, Vector vector) {
  vectors_[id] = std::move(vector);
  return common::Status::Ok();
}

common::Status FlatIndex::Remove(uint64_t id) {
  if (vectors_.erase(id) == 0) {
    return common::Status::NotFound("no vector with id " + std::to_string(id));
  }
  return common::Status::Ok();
}

bool FlatIndex::Contains(uint64_t id) const { return vectors_.count(id) > 0; }

std::vector<SearchResult> FlatIndex::Search(const Vector& query,
                                            size_t k) const {
  std::vector<SearchResult> all;
  all.reserve(vectors_.size());
  for (const auto& [id, v] : vectors_) {
    all.push_back(SearchResult{id, embed::CosineSimilarity(query, v)});
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;  // deterministic tie-break
                    });
  all.resize(take);
  return all;
}

void FlatIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, vector] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) fn(id, vectors_.at(id));
}

}  // namespace llmdm::vectordb
