#ifndef LLMDM_VECTORDB_FLAT_INDEX_H_
#define LLMDM_VECTORDB_FLAT_INDEX_H_

#include <unordered_map>

#include "vectordb/index.h"
#include "vectordb/kernels.h"

namespace llmdm::vectordb {

/// Exact brute-force index. O(n·d) per query; the recall oracle against
/// which IVF/HNSW are measured, and the right choice for small collections
/// (the semantic cache and the prompt store both default to it).
///
/// Vectors live in one contiguous row-major arena so a query is a single
/// kernels::DotBatch sweep plus a bounded top-k selection — no per-row
/// virtual calls, no scoring vector, no full sort. With Options::quantize
/// the arena additionally holds int8 codes (symmetric per-vector scale); the
/// sweep then runs over the codes and only the top k·rescore_factor
/// candidates are rescored with exact float32, so returned scores are always
/// exact while the O(n·d) inner loop is 4-byte→1-byte.
class FlatIndex : public VectorIndex {
 public:
  struct Options {
    /// Scan int8 codes and rescore the short list in float32. Returned
    /// scores are exact; only *which* rows make the short list is
    /// approximate (recall gate: ≥0.99 on the Table III workload).
    bool quantize = false;
    /// Short-list size = k * rescore_factor + 8.
    size_t rescore_factor = 3;
  };

  FlatIndex() = default;
  explicit FlatIndex(const Options& options) : options_(options) {}

  common::Status Add(uint64_t id, Vector vector) override;
  common::Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  size_t Size() const override { return id_to_slot_.size(); }

  std::vector<SearchResult> Search(const Vector& query,
                                   size_t k) const override;

  void ForEach(const std::function<void(uint64_t, const Vector&)>& fn)
      const override;

 private:
  // Grows the row stride to `new_dim`, zero-padding existing rows in place
  // (zero padding never changes a dot product or a norm).
  void GrowDim(size_t new_dim);
  void PackRow(size_t slot, const Vector& v);

  Options options_;
  size_t dim_ = 0;  // row stride; set by the first Add, grows as needed

  // Parallel per-slot arrays. Dead slots stay in the arena (scanned but
  // filtered) until reused via free_slots_.
  std::vector<float> base_;     // slot-major rows, stride dim_
  std::vector<int8_t> codes_;   // int8 rows, stride dim_ (quantize only)
  std::vector<float> scales_;   // per-slot quantization scale
  std::vector<float> norms_;    // per-slot L2 norm of the original vector
  std::vector<uint32_t> lens_;  // original (pre-padding) vector length
  std::vector<uint64_t> ids_;
  std::vector<uint8_t> live_;

  std::unordered_map<uint64_t, size_t> id_to_slot_;
  std::vector<size_t> free_slots_;
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_FLAT_INDEX_H_
