#ifndef LLMDM_VECTORDB_FLAT_INDEX_H_
#define LLMDM_VECTORDB_FLAT_INDEX_H_

#include <unordered_map>

#include "vectordb/index.h"

namespace llmdm::vectordb {

/// Exact brute-force index. O(n·d) per query; the recall oracle against
/// which IVF/HNSW are measured, and the right choice for small collections
/// (the semantic cache and the prompt store both default to it).
class FlatIndex : public VectorIndex {
 public:
  FlatIndex() = default;

  common::Status Add(uint64_t id, Vector vector) override;
  common::Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  size_t Size() const override { return vectors_.size(); }

  std::vector<SearchResult> Search(const Vector& query,
                                   size_t k) const override;

  void ForEach(const std::function<void(uint64_t, const Vector&)>& fn)
      const override;

 private:
  std::unordered_map<uint64_t, Vector> vectors_;
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_FLAT_INDEX_H_
