#include "vectordb/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "vectordb/kernels.h"

namespace llmdm::vectordb {

int HnswIndex::RandomLevel() {
  // Geometric level distribution with normalization 1/ln(M).
  double ml = 1.0 / std::log(static_cast<double>(options_.m));
  double u = rng_.UniformDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<int>(-std::log(u) * ml);
}

HnswIndex::Probe HnswIndex::MakeProbe(const Vector& v) const {
  Probe probe;
  probe.vec = &v;
  if (options_.quantize) {
    probe.norm = std::sqrt(kernels::Dot(v.data(), v.data(), v.size()));
    probe.codes.resize(v.size());
    kernels::QuantizeSymmetric(v.data(), v.size(), probe.codes.data(),
                               &probe.scale);
  }
  return probe;
}

float HnswIndex::Sim(const Probe& probe, uint32_t node) const {
  const Node& nd = nodes_[node];
  if (!options_.quantize) return embed::CosineSimilarity(*probe.vec, nd.vector);
  size_t n = std::min(probe.codes.size(), nd.codes.size());
  int32_t idot = kernels::DotI8(probe.codes.data(), nd.codes.data(), n);
  if (probe.norm == 0.0f || nd.norm == 0.0f) return 0.0f;
  return static_cast<float>(idot) * (probe.scale * nd.scale) /
         (probe.norm * nd.norm);
}

float HnswIndex::SimNodes(uint32_t a, uint32_t b) const {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (!options_.quantize) return embed::CosineSimilarity(na.vector, nb.vector);
  size_t n = std::min(na.codes.size(), nb.codes.size());
  int32_t idot = kernels::DotI8(na.codes.data(), nb.codes.data(), n);
  if (na.norm == 0.0f || nb.norm == 0.0f) return 0.0f;
  return static_cast<float>(idot) * (na.scale * nb.scale) /
         (na.norm * nb.norm);
}

std::vector<std::pair<float, uint32_t>> HnswIndex::SearchLayer(
    const Probe& query, uint32_t entry, size_t ef, size_t level) const {
  // Max-heap of candidates to expand, min-heap of current best `ef`.
  using Scored = std::pair<float, uint32_t>;
  std::priority_queue<Scored> candidates;              // best first
  std::priority_queue<Scored, std::vector<Scored>, std::greater<>> best;
  std::unordered_set<uint32_t> visited;

  float entry_sim = Sim(query, entry);
  candidates.emplace(entry_sim, entry);
  best.emplace(entry_sim, entry);
  visited.insert(entry);

  while (!candidates.empty()) {
    auto [sim, node] = candidates.top();
    candidates.pop();
    if (best.size() >= ef && sim < best.top().first) break;
    if (level < nodes_[node].neighbors.size()) {
      for (uint32_t peer : nodes_[node].neighbors[level]) {
        if (!visited.insert(peer).second) continue;
        float peer_sim = Sim(query, peer);
        if (best.size() < ef || peer_sim > best.top().first) {
          candidates.emplace(peer_sim, peer);
          best.emplace(peer_sim, peer);
          if (best.size() > ef) best.pop();
        }
      }
    }
  }
  std::vector<Scored> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // best first
  return out;
}

void HnswIndex::Connect(uint32_t node, uint32_t peer, size_t level) {
  auto& adj = nodes_[node].neighbors[level];
  adj.push_back(peer);
  size_t cap = MaxDegree(level);
  if (adj.size() <= cap) return;
  // Prune to the `cap` most similar neighbors (simple selection heuristic).
  std::partial_sort(adj.begin(), adj.begin() + cap, adj.end(),
                    [&](uint32_t a, uint32_t b) {
                      return SimNodes(node, a) > SimNodes(node, b);
                    });
  adj.resize(cap);
}

common::Status HnswIndex::Add(uint64_t id, Vector vector) {
  auto existing = id_to_node_.find(id);
  if (existing != id_to_node_.end()) {
    // Replace: tombstone the old node and insert fresh (keeps graph sane).
    if (!nodes_[existing->second].deleted) {
      nodes_[existing->second].deleted = true;
      --live_count_;
    }
    id_to_node_.erase(existing);
  }

  int level = RandomLevel();
  uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.vector = std::move(vector);
  node.external_id = id;
  node.neighbors.resize(static_cast<size_t>(level) + 1);
  if (options_.quantize) {
    const Vector& v = node.vector;
    node.norm = std::sqrt(kernels::Dot(v.data(), v.data(), v.size()));
    node.codes.resize(v.size());
    kernels::QuantizeSymmetric(v.data(), v.size(), node.codes.data(),
                               &node.scale);
  }
  nodes_.push_back(std::move(node));
  id_to_node_[id] = node_index;
  ++live_count_;

  if (top_level_ < 0) {
    top_level_ = level;
    entry_point_ = node_index;
    return common::Status::Ok();
  }

  const Probe q = MakeProbe(nodes_[node_index].vector);
  uint32_t entry = entry_point_;
  // Greedy descent through levels above the new node's level.
  for (int l = top_level_; l > level; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (static_cast<size_t>(l) < nodes_[entry].neighbors.size()) {
        for (uint32_t peer : nodes_[entry].neighbors[static_cast<size_t>(l)]) {
          if (Sim(q, peer) > Sim(q, entry)) {
            entry = peer;
            improved = true;
          }
        }
      }
    }
  }
  // Insert with beam search at each level from min(level, top) down to 0.
  for (int l = std::min(level, top_level_); l >= 0; --l) {
    auto found = SearchLayer(q, entry, options_.ef_construction,
                             static_cast<size_t>(l));
    size_t links = std::min(options_.m, found.size());
    for (size_t i = 0; i < links; ++i) {
      uint32_t peer = found[i].second;
      if (peer == node_index) continue;
      Connect(node_index, peer, static_cast<size_t>(l));
      Connect(peer, node_index, static_cast<size_t>(l));
    }
    if (!found.empty()) entry = found[0].second;
  }
  if (level > top_level_) {
    top_level_ = level;
    entry_point_ = node_index;
  }
  return common::Status::Ok();
}

common::Status HnswIndex::Remove(uint64_t id) {
  auto it = id_to_node_.find(id);
  if (it == id_to_node_.end() || nodes_[it->second].deleted) {
    return common::Status::NotFound("no vector with id " + std::to_string(id));
  }
  nodes_[it->second].deleted = true;
  id_to_node_.erase(it);
  --live_count_;
  return common::Status::Ok();
}

bool HnswIndex::Contains(uint64_t id) const {
  auto it = id_to_node_.find(id);
  return it != id_to_node_.end() && !nodes_[it->second].deleted;
}

size_t HnswIndex::Size() const { return live_count_; }

std::vector<SearchResult> HnswIndex::Search(const Vector& query,
                                            size_t k) const {
  if (top_level_ < 0 || live_count_ == 0) return {};
  const Probe probe = MakeProbe(query);
  uint32_t entry = entry_point_;
  for (int l = top_level_; l > 0; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (static_cast<size_t>(l) < nodes_[entry].neighbors.size()) {
        for (uint32_t peer : nodes_[entry].neighbors[static_cast<size_t>(l)]) {
          if (Sim(probe, peer) > Sim(probe, entry)) {
            entry = peer;
            improved = true;
          }
        }
      }
    }
  }
  size_t ef = std::max(options_.ef_search, k);
  auto found = SearchLayer(probe, entry, ef, 0);
  if (!options_.quantize) {
    std::vector<SearchResult> out;
    for (const auto& [sim, node] : found) {
      if (nodes_[node].deleted) continue;
      out.push_back(SearchResult{nodes_[node].external_id, sim});
      if (out.size() == k) break;
    }
    return out;
  }
  // Quantized traversal found the beam; rescore it with exact float32 so the
  // caller sees exact scores (threshold decisions depend on them).
  kernels::TopKSelector selected(k);
  for (const auto& [sim, node] : found) {
    if (nodes_[node].deleted) continue;
    selected.Offer(embed::CosineSimilarity(query, nodes_[node].vector),
                   nodes_[node].external_id);
  }
  std::vector<kernels::ScoredId> top = selected.TakeSorted();
  std::vector<SearchResult> out;
  out.reserve(top.size());
  for (const kernels::ScoredId& r : top) {
    out.push_back(SearchResult{r.id, r.score});
  }
  return out;
}

void HnswIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(live_count_);
  for (const auto& [id, node] : id_to_node_) {
    if (!nodes_[node].deleted) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) fn(id, nodes_[id_to_node_.at(id)].vector);
}

}  // namespace llmdm::vectordb
