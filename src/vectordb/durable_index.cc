#include "vectordb/durable_index.h"

#include <utility>

#include "durability/format.h"
#include "durability/store.h"
#include "vectordb/flat_index.h"

namespace llmdm::vectordb {

DurableVectorIndex::DurableVectorIndex(const Options& options)
    : options_(options), inner_(MakeInner()) {}

std::unique_ptr<VectorIndex> DurableVectorIndex::MakeInner() const {
  // Quantized codes are derived state: recovery re-quantizes from the float
  // vectors in the durable image, so the snapshot/WAL format is unchanged.
  switch (options_.kind) {
    case Kind::kFlat:
      return std::make_unique<FlatIndex>(options_.flat);
    case Kind::kHnsw:
      return std::make_unique<HnswIndex>(options_.hnsw);
  }
  return std::make_unique<FlatIndex>(options_.flat);
}

common::Status DurableVectorIndex::Add(uint64_t id, Vector vector) {
  durability::MutationGuard guard = durable_ != nullptr
                                        ? durable_->BeginMutation()
                                        : durability::MutationGuard();
  // Log from the argument before the inner index consumes it by move.
  std::string rec;
  if (durable_ != nullptr) {
    durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kAdd));
    durability::AppendU64(&rec, id);
    durability::AppendFloats(&rec, vector);
  }
  LLMDM_RETURN_IF_ERROR(inner_->Add(id, std::move(vector)));
  if (durable_ != nullptr) durable_->Append(guard, rec).ok();
  return common::Status::Ok();
}

common::Status DurableVectorIndex::Remove(uint64_t id) {
  durability::MutationGuard guard = durable_ != nullptr
                                        ? durable_->BeginMutation()
                                        : durability::MutationGuard();
  LLMDM_RETURN_IF_ERROR(inner_->Remove(id));
  if (durable_ != nullptr) {
    std::string rec;
    durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kRemove));
    durability::AppendU64(&rec, id);
    durable_->Append(guard, rec).ok();
  }
  return common::Status::Ok();
}

bool DurableVectorIndex::Contains(uint64_t id) const {
  return inner_->Contains(id);
}

size_t DurableVectorIndex::Size() const { return inner_->Size(); }

std::vector<SearchResult> DurableVectorIndex::Search(const Vector& query,
                                                     size_t k) const {
  return inner_->Search(query, k);
}

void DurableVectorIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  inner_->ForEach(fn);
}

void DurableVectorIndex::AttachDurability(durability::DurableStore* store) {
  durable_ = store;
}

void DurableVectorIndex::ResetToEmpty() { inner_ = MakeInner(); }

common::Status DurableVectorIndex::SaveSnapshot(std::string* out) const {
  durability::AppendU64(out, inner_->Size());
  inner_->ForEach([out](uint64_t id, const Vector& vector) {
    durability::AppendU64(out, id);
    durability::AppendFloats(out, vector);
  });
  return common::Status::Ok();
}

common::Status DurableVectorIndex::LoadSnapshot(durability::ByteReader& in) {
  uint64_t count = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    Vector vector;
    LLMDM_RETURN_IF_ERROR(in.ReadU64(&id));
    LLMDM_RETURN_IF_ERROR(in.ReadFloats(&vector));
    LLMDM_RETURN_IF_ERROR(inner_->Add(id, std::move(vector)));
  }
  return common::Status::Ok();
}

common::Status DurableVectorIndex::ApplyWalRecord(std::string_view payload) {
  durability::ByteReader in(payload);
  uint8_t op = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU8(&op));
  switch (static_cast<WalOp>(op)) {
    case WalOp::kAdd: {
      uint64_t id = 0;
      Vector vector;
      LLMDM_RETURN_IF_ERROR(in.ReadU64(&id));
      LLMDM_RETURN_IF_ERROR(in.ReadFloats(&vector));
      return inner_->Add(id, std::move(vector));
    }
    case WalOp::kRemove: {
      uint64_t id = 0;
      LLMDM_RETURN_IF_ERROR(in.ReadU64(&id));
      return inner_->Remove(id);
    }
  }
  return common::Status::InvalidArgument("unknown index WAL op " +
                                         std::to_string(op));
}

}  // namespace llmdm::vectordb
