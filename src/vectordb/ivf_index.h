#ifndef LLMDM_VECTORDB_IVF_INDEX_H_
#define LLMDM_VECTORDB_IVF_INDEX_H_

#include <unordered_map>
#include <vector>

#include "vectordb/index.h"
#include "vectordb/kernels.h"

namespace llmdm::vectordb {

/// Inverted-file index: a k-means coarse quantizer partitions the collection
/// into `nlist` cells; a query scans only the `nprobe` cells whose centroids
/// are closest. Classic recall/speed dial for mid-size collections.
///
/// The cell assignment is (re)built lazily on the first search after a
/// mutation, so interleaved add/search workloads stay correct. The build
/// also packs each cell's members into a contiguous row-major arena (plus
/// int8 codes under Options::quantize), so the probe loop is a
/// kernels::DotBatch sweep per cell feeding a bounded top-k selection
/// instead of per-id hash lookups and a full candidate sort.
class IvfIndex : public VectorIndex {
 public:
  struct Options {
    size_t nlist = 16;            // number of k-means cells
    size_t nprobe = 4;            // cells scanned per query
    size_t kmeans_iterations = 8;
    uint64_t seed = 42;           // k-means init seed
    /// Scan int8 codes in the probed cells and rescore the short list in
    /// float32 (see FlatIndex::Options::quantize for the contract).
    bool quantize = false;
    size_t rescore_factor = 3;
  };

  IvfIndex() : IvfIndex(Options{}) {}
  explicit IvfIndex(const Options& options) : options_(options) {}

  common::Status Add(uint64_t id, Vector vector) override;
  common::Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  size_t Size() const override { return vectors_.size(); }

  std::vector<SearchResult> Search(const Vector& query,
                                   size_t k) const override;

  void ForEach(const std::function<void(uint64_t, const Vector&)>& fn)
      const override;

  /// Forces a (re)build of the coarse quantizer; otherwise it happens lazily.
  void Build();

  size_t nprobe() const { return options_.nprobe; }
  void set_nprobe(size_t nprobe) { options_.nprobe = nprobe; }

 private:
  void BuildIfStale() const;

  Options options_;
  std::unordered_map<uint64_t, Vector> vectors_;

  // Built state (mutable: rebuilt lazily from const Search).
  mutable bool stale_ = true;
  mutable std::vector<Vector> centroids_;
  mutable std::vector<std::vector<uint64_t>> cells_;

  // Packed per-cell arenas, rebuilt alongside the cells: rows of cell c live
  // at [cell_begin_[c], cell_begin_[c + 1]) with stride dim_.
  mutable size_t dim_ = 0;
  mutable std::vector<float> packed_;
  mutable std::vector<uint64_t> packed_ids_;
  mutable std::vector<float> packed_norms_;
  mutable std::vector<uint32_t> cell_begin_;
  mutable std::vector<int8_t> packed_codes_;    // quantize only
  mutable std::vector<float> packed_scales_;    // quantize only
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_IVF_INDEX_H_
