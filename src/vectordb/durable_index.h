#ifndef LLMDM_VECTORDB_DURABLE_INDEX_H_
#define LLMDM_VECTORDB_DURABLE_INDEX_H_

#include <memory>
#include <string_view>

#include "durability/durable.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/index.h"

namespace llmdm::durability {
class DurableStore;
}  // namespace llmdm::durability

namespace llmdm::vectordb {

/// A VectorIndex with durable state: wraps a flat or HNSW index and logs
/// every Add/Remove as a physical WAL record once a DurableStore is
/// attached.
///
/// The durable image is the *vector set* — the sorted live (id, vector)
/// pairs — never the index structure. A flat index restores trivially; an
/// HNSW index is rebuilt by re-inserting the pairs in ascending id order
/// with a fresh level rng. The rebuilt graph is therefore a function of the
/// surviving vectors alone (deterministic across recoveries of the same
/// files) but not bit-identical to the pre-crash graph, whose shape depended
/// on the original insert/remove interleaving: an approximate index promises
/// equivalent *contents*, not an identical search path. Exact results (the
/// flat kind) are unaffected.
class DurableVectorIndex : public VectorIndex, public durability::DurableState {
 public:
  enum class Kind { kFlat, kHnsw };

  struct Options {
    Kind kind = Kind::kFlat;
    HnswIndex::Options hnsw;  // used when kind == kHnsw
    FlatIndex::Options flat;  // used when kind == kFlat
  };

  explicit DurableVectorIndex(const Options& options);

  // VectorIndex. Not internally synchronized (same contract as the other
  // indexes — callers own the locking); mutations are logged under the
  // attached store's commit gate.
  common::Status Add(uint64_t id, Vector vector) override;
  common::Status Remove(uint64_t id) override;
  bool Contains(uint64_t id) const override;
  size_t Size() const override;
  std::vector<SearchResult> Search(const Vector& query,
                                   size_t k) const override;
  void ForEach(const std::function<void(uint64_t, const Vector&)>& fn)
      const override;

  /// See SemanticCache::AttachDurability for the setup contract.
  void AttachDurability(durability::DurableStore* store);

  // DurableState.
  void ResetToEmpty() override;
  common::Status SaveSnapshot(std::string* out) const override;
  common::Status LoadSnapshot(durability::ByteReader& in) override;
  common::Status ApplyWalRecord(std::string_view payload) override;

 private:
  enum class WalOp : uint8_t {
    kAdd = 1,     // id, floats -> insert/replace
    kRemove = 2,  // id         -> delete (tombstone under HNSW)
  };

  std::unique_ptr<VectorIndex> MakeInner() const;

  Options options_;
  std::unique_ptr<VectorIndex> inner_;
  durability::DurableStore* durable_ = nullptr;  // not owned; may be null
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_DURABLE_INDEX_H_
