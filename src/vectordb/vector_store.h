#ifndef LLMDM_VECTORDB_VECTOR_STORE_H_
#define LLMDM_VECTORDB_VECTOR_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "data/value.h"
#include "vectordb/index.h"

namespace llmdm::vectordb {

/// An item in the store: a vector plus the payload it represents and a bag of
/// scalar attributes for hybrid (filtered) search — the "attribute filtering"
/// setting of Sec. III-B.2.
struct StoredItem {
  uint64_t id = 0;
  Vector vector;
  std::string payload;
  std::map<std::string, data::Value> attributes;
};

/// Predicts how much to over-fetch in "vector search first" hybrid queries.
/// The paper notes that production systems hard-code a large k and proposes
/// learning it; this predictor tracks the realized filter pass-rate with an
/// exponential moving average and sizes the fetch as k / pass_rate plus
/// safety margin.
class AdaptiveKPredictor {
 public:
  explicit AdaptiveKPredictor(double initial_pass_rate = 0.5,
                              double safety_factor = 1.5)
      : pass_rate_(initial_pass_rate), safety_(safety_factor) {}

  /// The k to request from the vector index to end up with `want` survivors.
  size_t PredictFetchK(size_t want) const;

  /// Feeds back one query's outcome: `fetched` candidates, `passed` of them
  /// survived the attribute filter.
  void Observe(size_t fetched, size_t passed);

  double pass_rate() const { return pass_rate_; }

 private:
  double pass_rate_;
  double safety_;
};

/// Vector collection with attribute metadata and hybrid search. Wraps any
/// VectorIndex (flat/IVF/HNSW) for the vector side; the attribute side is an
/// in-memory scan (sufficient at library scale, and what the filter-ordering
/// trade-off actually compares against).
class VectorStore {
 public:
  enum class FilterStrategy { kPreFilter, kPostFilter, kAdaptive };

  using AttributePredicate =
      std::function<bool(const std::map<std::string, data::Value>&)>;

  /// Diagnostics from one hybrid query (which path ran, how much work).
  struct HybridStats {
    FilterStrategy executed = FilterStrategy::kPreFilter;
    size_t candidates_examined = 0;  // items whose similarity was computed
    size_t fetch_k = 0;              // k requested from the index (post-filter)
    double estimated_selectivity = 0.0;
  };

  explicit VectorStore(std::unique_ptr<VectorIndex> index)
      : index_(std::move(index)) {}

  common::Status Insert(StoredItem item);
  common::Status Remove(uint64_t id);
  const StoredItem* Get(uint64_t id) const;
  size_t Size() const { return items_.size(); }

  /// Pure vector top-k.
  std::vector<SearchResult> Search(const Vector& query, size_t k) const;

  /// Top-k among items satisfying `predicate`.
  ///
  /// kPreFilter scans attributes first and ranks survivors exactly — right
  /// when the filter is selective. kPostFilter asks the index for an
  /// over-fetched candidate list (sized by the adaptive-k predictor) and
  /// filters it — right when most items pass. kAdaptive estimates the
  /// selectivity from a sample and picks a side.
  std::vector<SearchResult> HybridSearch(const Vector& query, size_t k,
                                         const AttributePredicate& predicate,
                                         FilterStrategy strategy,
                                         HybridStats* stats = nullptr);

  /// Fraction of (sampled) items passing the predicate.
  double EstimateSelectivity(const AttributePredicate& predicate,
                             size_t sample_size = 256) const;

  AdaptiveKPredictor& k_predictor() { return k_predictor_; }

 private:
  std::unique_ptr<VectorIndex> index_;
  std::unordered_map<uint64_t, StoredItem> items_;
  AdaptiveKPredictor k_predictor_;
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_VECTOR_STORE_H_
