#ifndef LLMDM_VECTORDB_INDEX_H_
#define LLMDM_VECTORDB_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "embed/embedder.h"

namespace llmdm::vectordb {

using embed::Vector;

/// One nearest-neighbour hit. `score` is cosine similarity (higher = closer);
/// all library embeddings are unit-normalized so this equals the dot product.
struct SearchResult {
  uint64_t id = 0;
  float score = 0.0f;

  bool operator==(const SearchResult&) const = default;
};

/// Common interface for the vector indexes (flat / IVF / HNSW). Vectors are
/// keyed by caller-chosen 64-bit ids; adding an existing id replaces it.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual common::Status Add(uint64_t id, Vector vector) = 0;
  virtual common::Status Remove(uint64_t id) = 0;
  virtual bool Contains(uint64_t id) const = 0;
  virtual size_t Size() const = 0;

  /// Top-k by cosine similarity, best first. May return fewer than k.
  virtual std::vector<SearchResult> Search(const Vector& query,
                                           size_t k) const = 0;

  /// Invokes `fn(id, vector)` once per *live* vector, in ascending id order.
  /// The ordering is part of the contract: durability snapshots and
  /// rebuild-by-reinsertion both consume this iteration, and they need two
  /// indexes holding the same vectors to enumerate them identically.
  virtual void ForEach(
      const std::function<void(uint64_t, const Vector&)>& fn) const = 0;
};

}  // namespace llmdm::vectordb

#endif  // LLMDM_VECTORDB_INDEX_H_
