#include "vectordb/vector_store.h"

#include <algorithm>
#include <cmath>

#include "vectordb/kernels.h"

namespace llmdm::vectordb {

size_t AdaptiveKPredictor::PredictFetchK(size_t want) const {
  double rate = std::max(pass_rate_, 0.01);
  double k = static_cast<double>(want) / rate * safety_;
  return static_cast<size_t>(std::ceil(k));
}

void AdaptiveKPredictor::Observe(size_t fetched, size_t passed) {
  if (fetched == 0) return;
  double observed = static_cast<double>(passed) / static_cast<double>(fetched);
  constexpr double kAlpha = 0.3;
  pass_rate_ = (1.0 - kAlpha) * pass_rate_ + kAlpha * observed;
  pass_rate_ = std::clamp(pass_rate_, 0.01, 1.0);
}

common::Status VectorStore::Insert(StoredItem item) {
  uint64_t id = item.id;
  LLMDM_RETURN_IF_ERROR(index_->Add(id, item.vector));
  items_[id] = std::move(item);
  return common::Status::Ok();
}

common::Status VectorStore::Remove(uint64_t id) {
  if (items_.erase(id) == 0) {
    return common::Status::NotFound("no item with id " + std::to_string(id));
  }
  return index_->Remove(id);
}

const StoredItem* VectorStore::Get(uint64_t id) const {
  auto it = items_.find(id);
  return it == items_.end() ? nullptr : &it->second;
}

std::vector<SearchResult> VectorStore::Search(const Vector& query,
                                              size_t k) const {
  return index_->Search(query, k);
}

double VectorStore::EstimateSelectivity(const AttributePredicate& predicate,
                                        size_t sample_size) const {
  if (items_.empty()) return 0.0;
  // A strided sample across the whole container: hash-map iteration order is
  // correlated with the key, so a prefix would be a badly biased sample
  // (e.g. all ids from one range); striding decorrelates it.
  size_t stride = std::max<size_t>(1, items_.size() / sample_size);
  size_t index = 0, sampled = 0, passed = 0;
  for (const auto& [id, item] : items_) {
    if (index++ % stride != 0) continue;
    ++sampled;
    if (predicate(item.attributes)) ++passed;
    if (sampled >= sample_size) break;
  }
  return sampled == 0
             ? 0.0
             : static_cast<double>(passed) / static_cast<double>(sampled);
}

std::vector<SearchResult> VectorStore::HybridSearch(
    const Vector& query, size_t k, const AttributePredicate& predicate,
    FilterStrategy strategy, HybridStats* stats) {
  HybridStats local;
  if (strategy == FilterStrategy::kAdaptive) {
    double selectivity = EstimateSelectivity(predicate);
    local.estimated_selectivity = selectivity;
    // With few expected survivors, exact ranking over the filtered set is
    // cheaper than over-fetching k/selectivity candidates from the index.
    double expected_survivors = selectivity * static_cast<double>(items_.size());
    strategy = (expected_survivors <= 8.0 * static_cast<double>(k))
                   ? FilterStrategy::kPreFilter
                   : FilterStrategy::kPostFilter;
  }
  local.executed = strategy;

  std::vector<SearchResult> out;
  if (strategy == FilterStrategy::kPreFilter) {
    // Bounded selection: survivors stream through a top-k heap instead of
    // being materialized and partially sorted (same result order: score
    // desc, id asc).
    kernels::TopKSelector selected(k);
    for (const auto& [id, item] : items_) {
      if (!predicate(item.attributes)) continue;
      ++local.candidates_examined;
      selected.Offer(embed::CosineSimilarity(query, item.vector), id);
    }
    for (const kernels::ScoredId& r : selected.TakeSorted()) {
      out.push_back(SearchResult{r.id, r.score});
    }
  } else {
    // Post-filter: over-fetch, filter, grow on shortfall.
    size_t fetch_k = k_predictor_.PredictFetchK(k);
    for (int attempt = 0; attempt < 4; ++attempt) {
      fetch_k = std::min(fetch_k, items_.size());
      local.fetch_k = fetch_k;
      std::vector<SearchResult> candidates = index_->Search(query, fetch_k);
      local.candidates_examined = candidates.size();
      out.clear();
      for (const SearchResult& c : candidates) {
        const StoredItem* item = Get(c.id);
        if (item != nullptr && predicate(item->attributes)) {
          out.push_back(c);
          if (out.size() == k) break;
        }
      }
      k_predictor_.Observe(candidates.size(), out.size());
      if (out.size() >= k || fetch_k >= items_.size()) break;
      fetch_k *= 4;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace llmdm::vectordb
