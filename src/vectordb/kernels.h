#ifndef LLMDM_VECTORDB_KERNELS_H_
#define LLMDM_VECTORDB_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace llmdm::obs {
class Registry;
}  // namespace llmdm::obs

namespace llmdm::vectordb::kernels {

// ---------------------------------------------------------------------------
// Dispatch
//
// One implementation level is detected at startup (AVX2 on x86-64, NEON on
// aarch64, portable scalar otherwise or under -DLLMDM_FORCE_SCALAR=ON) and
// every kernel routes through it. All float kernels obey a *lane-equivalent
// reduction contract*: elements are accumulated into 16 independent partial
// sums (lane j takes elements i with i % 16 == j over the full 16-element
// blocks), reduced through a fixed tree — (s[j]+s[j+8]), then (t[m]+t[m+4]),
// then (u0+u2)+(u1+u3) — with the ragged tail added sequentially last. The
// scalar fallback performs the same operations in the same order, so results
// are bit-identical across dispatch levels on any one input. This is what
// lets the byte-equality suites (Tables I–III, determinism tests) hold
// regardless of the host ISA. Kernels never use FMA: fused multiply-add
// rounds once instead of twice and would break the contract.
// ---------------------------------------------------------------------------

enum class DispatchLevel : int {
  kScalar = 0,  // portable 16-lane fallback (auto-vectorizes safely)
  kAvx2 = 1,    // x86-64 AVX2 (no FMA, see contract above)
  kNeon = 2,    // aarch64 NEON baseline
};

/// The level all kernels currently route through (detected once, or the
/// pinned override).
DispatchLevel ActiveDispatch();

/// True if `level` can execute on this host/build.
bool SupportsDispatch(DispatchLevel level);

/// "scalar" / "avx2" / "neon".
const char* DispatchName(DispatchLevel level);

/// Pins every kernel to `level` until Unpin. Test-only: parity suites pin
/// kScalar and compare against the auto-detected level. Pinning an
/// unsupported level is ignored (kernels would fault); check
/// SupportsDispatch first.
void PinDispatchForTesting(DispatchLevel level);
void UnpinDispatchForTesting();

/// Exports the active dispatch level into `registry` as the gauge
/// `llmdm_kernel_dispatch_level{level=...}` (1 on the active level, 0 on the
/// others), so perf exports record which code path produced them.
void ExportDispatchMetrics(obs::Registry* registry);

// ---------------------------------------------------------------------------
// float32 kernels
// ---------------------------------------------------------------------------

/// Dot product of a[0..n) · b[0..n) under the lane-equivalent contract.
float Dot(const float* a, const float* b, size_t n);

/// Squared L2 distance of a[0..n) vs b[0..n), same contract.
float L2Sq(const float* a, const float* b, size_t n);

/// out[r] = Dot(query, base + r*dim, dim) for r in [0, count). `base` is a
/// contiguous row-major matrix. The dispatch branch is resolved once for the
/// whole batch — this is the hot entry point for flat/IVF scans.
void DotBatch(const float* query, const float* base, size_t count, size_t dim,
              float* out);

// ---------------------------------------------------------------------------
// int8 symmetric scalar quantization
//
// code[i] = round_to_nearest_even(v[i] * 127 / max_abs) clamped to
// [-127, 127], scale = max_abs / 127 (scale 0 for the zero vector; codes all
// zero). Reconstruction error per element is at most scale/2. Integer dot
// accumulation is exact, so quantized scores are bit-identical across every
// dispatch level by construction (integer addition is associative).
// approx_dot(a, b) = DotI8(codes_a, codes_b, n) * scale_a * scale_b.
// ---------------------------------------------------------------------------

/// Quantizes v[0..n) into codes[0..n) and writes the per-vector scale.
void QuantizeSymmetric(const float* v, size_t n, int8_t* codes, float* scale);

/// Exact int32 dot of two int8 code vectors.
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

/// out[r] = DotI8(query, base + r*dim, dim) for r in [0, count). Raw integer
/// accumulators — the caller applies the scales.
void DotBatchI8(const int8_t* query, const int8_t* base, size_t count,
                size_t dim, int32_t* out);

// ---------------------------------------------------------------------------
// Bounded top-k selection
// ---------------------------------------------------------------------------

struct ScoredId {
  float score = 0.0f;
  uint64_t id = 0;
};

/// Streaming top-k under the library-wide result order (score desc, id asc):
/// selects exactly what partial_sort over the full candidate list would,
/// without materializing it. O(1) rejection once the heap is warm — a
/// candidate no better than the current k-th is a single compare — so a scan
/// over N rows costs O(N + k log k) in the typical sorted-ish case instead
/// of the old score-all + sort.
class TopKSelector {
 public:
  explicit TopKSelector(size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(float score, uint64_t id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(ScoredId{score, id});
      std::push_heap(heap_.begin(), heap_.end(), BestFirst);
      return;
    }
    // Heap front is the worst retained candidate (BestFirst as heap
    // comparator puts the least element on top of a max-heap of "badness").
    const ScoredId& worst = heap_.front();
    if (score < worst.score ||
        (score == worst.score && id > worst.id)) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), BestFirst);
    heap_.back() = ScoredId{score, id};
    std::push_heap(heap_.begin(), heap_.end(), BestFirst);
  }

  /// Returns the retained candidates best-first and leaves the selector
  /// empty.
  std::vector<ScoredId> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), BestFirst);
    return std::move(heap_);
  }

  size_t size() const { return heap_.size(); }

 private:
  static bool BestFirst(const ScoredId& a, const ScoredId& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  size_t k_;
  std::vector<ScoredId> heap_;
};

}  // namespace llmdm::vectordb::kernels

#endif  // LLMDM_VECTORDB_KERNELS_H_
