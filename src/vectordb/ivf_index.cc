#include "vectordb/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace llmdm::vectordb {

common::Status IvfIndex::Add(uint64_t id, Vector vector) {
  vectors_[id] = std::move(vector);
  stale_ = true;
  return common::Status::Ok();
}

common::Status IvfIndex::Remove(uint64_t id) {
  if (vectors_.erase(id) == 0) {
    return common::Status::NotFound("no vector with id " + std::to_string(id));
  }
  stale_ = true;
  return common::Status::Ok();
}

bool IvfIndex::Contains(uint64_t id) const { return vectors_.count(id) > 0; }

void IvfIndex::Build() {
  stale_ = true;
  BuildIfStale();
}

void IvfIndex::BuildIfStale() const {
  if (!stale_) return;
  stale_ = false;
  centroids_.clear();
  cells_.clear();
  if (vectors_.empty()) return;

  // Deterministic iteration order for reproducible clustering.
  std::vector<uint64_t> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, v] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  size_t nlist = std::min(options_.nlist, ids.size());
  common::Rng rng(options_.seed);

  // k-means++ style seeding would be overkill here; random distinct picks
  // followed by Lloyd iterations converge fine on normalized embeddings.
  std::vector<uint64_t> shuffled = ids;
  rng.Shuffle(shuffled);
  centroids_.assign(nlist, Vector{});
  for (size_t c = 0; c < nlist; ++c) centroids_[c] = vectors_.at(shuffled[c]);

  std::vector<size_t> assignment(ids.size(), 0);
  for (size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      const Vector& v = vectors_.at(ids[i]);
      size_t best = 0;
      float best_sim = -2.0f;
      for (size_t c = 0; c < nlist; ++c) {
        float sim = embed::CosineSimilarity(v, centroids_[c]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids as the (renormalized) means of their members.
    std::vector<Vector> sums(nlist);
    std::vector<size_t> counts(nlist, 0);
    for (size_t i = 0; i < ids.size(); ++i) {
      const Vector& v = vectors_.at(ids[i]);
      Vector& s = sums[assignment[i]];
      if (s.empty()) s.assign(v.size(), 0.0f);
      for (size_t d = 0; d < v.size(); ++d) s[d] += v[d];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its old centroid
      embed::L2Normalize(&sums[c]);
      centroids_[c] = std::move(sums[c]);
    }
  }

  cells_.assign(nlist, {});
  for (size_t i = 0; i < ids.size(); ++i) {
    cells_[assignment[i]].push_back(ids[i]);
  }
}

std::vector<SearchResult> IvfIndex::Search(const Vector& query,
                                           size_t k) const {
  BuildIfStale();
  if (centroids_.empty()) return {};

  // Rank cells by centroid similarity.
  std::vector<std::pair<float, size_t>> cell_scores;
  cell_scores.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    cell_scores.emplace_back(embed::CosineSimilarity(query, centroids_[c]), c);
  }
  size_t probe = std::min(options_.nprobe, cell_scores.size());
  std::partial_sort(cell_scores.begin(), cell_scores.begin() + probe,
                    cell_scores.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<SearchResult> candidates;
  for (size_t p = 0; p < probe; ++p) {
    for (uint64_t id : cells_[cell_scores[p].second]) {
      candidates.push_back(
          SearchResult{id, embed::CosineSimilarity(query, vectors_.at(id))});
    }
  }
  size_t take = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  candidates.resize(take);
  return candidates;
}

void IvfIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, vector] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) fn(id, vectors_.at(id));
}

}  // namespace llmdm::vectordb
