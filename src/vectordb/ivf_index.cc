#include "vectordb/ivf_index.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace llmdm::vectordb {

common::Status IvfIndex::Add(uint64_t id, Vector vector) {
  vectors_[id] = std::move(vector);
  stale_ = true;
  return common::Status::Ok();
}

common::Status IvfIndex::Remove(uint64_t id) {
  if (vectors_.erase(id) == 0) {
    return common::Status::NotFound("no vector with id " + std::to_string(id));
  }
  stale_ = true;
  return common::Status::Ok();
}

bool IvfIndex::Contains(uint64_t id) const { return vectors_.count(id) > 0; }

void IvfIndex::Build() {
  stale_ = true;
  BuildIfStale();
}

void IvfIndex::BuildIfStale() const {
  if (!stale_) return;
  stale_ = false;
  centroids_.clear();
  cells_.clear();
  if (vectors_.empty()) return;

  // Deterministic iteration order for reproducible clustering.
  std::vector<uint64_t> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, v] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  size_t nlist = std::min(options_.nlist, ids.size());
  common::Rng rng(options_.seed);

  // k-means++ style seeding would be overkill here; random distinct picks
  // followed by Lloyd iterations converge fine on normalized embeddings.
  std::vector<uint64_t> shuffled = ids;
  rng.Shuffle(shuffled);
  centroids_.assign(nlist, Vector{});
  for (size_t c = 0; c < nlist; ++c) centroids_[c] = vectors_.at(shuffled[c]);

  std::vector<size_t> assignment(ids.size(), 0);
  for (size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      const Vector& v = vectors_.at(ids[i]);
      size_t best = 0;
      float best_sim = -2.0f;
      for (size_t c = 0; c < nlist; ++c) {
        float sim = embed::CosineSimilarity(v, centroids_[c]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids as the (renormalized) means of their members.
    std::vector<Vector> sums(nlist);
    std::vector<size_t> counts(nlist, 0);
    for (size_t i = 0; i < ids.size(); ++i) {
      const Vector& v = vectors_.at(ids[i]);
      Vector& s = sums[assignment[i]];
      if (s.empty()) s.assign(v.size(), 0.0f);
      for (size_t d = 0; d < v.size(); ++d) s[d] += v[d];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its old centroid
      embed::L2Normalize(&sums[c]);
      centroids_[c] = std::move(sums[c]);
    }
  }

  cells_.assign(nlist, {});
  for (size_t i = 0; i < ids.size(); ++i) {
    cells_[assignment[i]].push_back(ids[i]);
  }

  // Pack the cells into contiguous arenas for the batched probe sweep.
  dim_ = 0;
  for (const auto& [id, v] : vectors_) dim_ = std::max(dim_, v.size());
  const size_t rows = ids.size();
  packed_.assign(rows * dim_, 0.0f);
  packed_ids_.resize(rows);
  packed_norms_.resize(rows);
  cell_begin_.assign(nlist + 1, 0);
  if (options_.quantize) {
    packed_codes_.assign(rows * dim_, 0);
    packed_scales_.resize(rows);
  }
  size_t row = 0;
  for (size_t c = 0; c < nlist; ++c) {
    cell_begin_[c] = static_cast<uint32_t>(row);
    for (uint64_t id : cells_[c]) {
      const Vector& v = vectors_.at(id);
      float* dst = packed_.data() + row * dim_;
      std::copy(v.begin(), v.end(), dst);
      packed_ids_[row] = id;
      // Norm over the original length: bit-matches CosineSimilarity's norm
      // for this vector (zero padding adds nothing).
      packed_norms_[row] =
          std::sqrt(kernels::Dot(v.data(), v.data(), v.size()));
      if (options_.quantize) {
        kernels::QuantizeSymmetric(dst, dim_,
                                   packed_codes_.data() + row * dim_,
                                   &packed_scales_[row]);
      }
      ++row;
    }
  }
  cell_begin_[nlist] = static_cast<uint32_t>(row);
}

std::vector<SearchResult> IvfIndex::Search(const Vector& query,
                                           size_t k) const {
  BuildIfStale();
  if (centroids_.empty()) return {};

  // Rank cells by centroid similarity.
  std::vector<std::pair<float, size_t>> cell_scores;
  cell_scores.reserve(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    cell_scores.emplace_back(embed::CosineSimilarity(query, centroids_[c]), c);
  }
  size_t probe = std::min(options_.nprobe, cell_scores.size());
  std::partial_sort(cell_scores.begin(), cell_scores.begin() + probe,
                    cell_scores.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

  if (k == 0) return {};
  const size_t n = std::min(query.size(), dim_);
  const float qnorm =
      std::sqrt(kernels::Dot(query.data(), query.data(), query.size()));

  auto score_rows = [&](size_t begin, size_t end, kernels::TopKSelector* sel) {
    std::vector<float> dots(end - begin);
    if (n == dim_) {
      kernels::DotBatch(query.data(), packed_.data() + begin * dim_,
                        end - begin, dim_, dots.data());
    } else {
      for (size_t r = begin; r < end; ++r) {
        dots[r - begin] =
            kernels::Dot(query.data(), packed_.data() + r * dim_, n);
      }
    }
    for (size_t r = begin; r < end; ++r) {
      float norm = packed_norms_[r];
      float score = (norm == 0.0f || qnorm == 0.0f)
                        ? 0.0f
                        : dots[r - begin] / (qnorm * norm);
      sel->Offer(score, packed_ids_[r]);
    }
  };

  kernels::TopKSelector selected(k);
  if (!options_.quantize) {
    for (size_t p = 0; p < probe; ++p) {
      size_t c = cell_scores[p].second;
      score_rows(cell_begin_[c], cell_begin_[c + 1], &selected);
    }
  } else {
    // int8 sweep over the probed cells, exact float32 rescore of the short
    // list (same contract as FlatIndex).
    std::vector<int8_t> qcodes(dim_);
    float qscale = 0.0f;
    if (query.size() >= dim_) {
      kernels::QuantizeSymmetric(query.data(), dim_, qcodes.data(), &qscale);
    } else {
      std::vector<float> padded(dim_, 0.0f);
      std::copy(query.begin(), query.end(), padded.begin());
      kernels::QuantizeSymmetric(padded.data(), dim_, qcodes.data(), &qscale);
    }
    // The shortlist is keyed by packed-row index, not vector id: the row
    // maps straight back to the arena for the rescore (no per-scanned-row
    // hash insert on the hot loop), and the packed layout is deterministic
    // for a given build, so tie-breaking on row index is just as
    // reproducible as id order.
    kernels::TopKSelector shortlist(k * options_.rescore_factor + 8);
    std::vector<int32_t> idots;
    for (size_t p = 0; p < probe; ++p) {
      size_t c = cell_scores[p].second;
      size_t begin = cell_begin_[c], end = cell_begin_[c + 1];
      idots.resize(end - begin);
      kernels::DotBatchI8(qcodes.data(), packed_codes_.data() + begin * dim_,
                          end - begin, dim_, idots.data());
      for (size_t r = begin; r < end; ++r) {
        float norm = packed_norms_[r];
        float approx = (norm == 0.0f || qnorm == 0.0f)
                           ? 0.0f
                           : static_cast<float>(idots[r - begin]) *
                                 (packed_scales_[r] * qscale) /
                                 (qnorm * norm);
        shortlist.Offer(approx, r);
      }
    }
    for (const kernels::ScoredId& cand : shortlist.TakeSorted()) {
      size_t r = static_cast<size_t>(cand.id);
      float dot = kernels::Dot(query.data(), packed_.data() + r * dim_, n);
      float norm = packed_norms_[r];
      float score =
          (norm == 0.0f || qnorm == 0.0f) ? 0.0f : dot / (qnorm * norm);
      selected.Offer(score, packed_ids_[r]);
    }
  }

  std::vector<kernels::ScoredId> top = selected.TakeSorted();
  std::vector<SearchResult> out;
  out.reserve(top.size());
  for (const kernels::ScoredId& r : top) {
    out.push_back(SearchResult{r.id, r.score});
  }
  return out;
}

void IvfIndex::ForEach(
    const std::function<void(uint64_t, const Vector&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(vectors_.size());
  for (const auto& [id, vector] : vectors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) fn(id, vectors_.at(id));
}

}  // namespace llmdm::vectordb
