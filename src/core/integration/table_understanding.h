#ifndef LLMDM_CORE_INTEGRATION_TABLE_UNDERSTANDING_H_
#define LLMDM_CORE_INTEGRATION_TABLE_UNDERSTANDING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::integration {

/// Table-understanding helpers for PLM training pipelines (Sec. II-C.2):
/// (1) NL serialization of rows/columns that preserves semantics better than
///     bare linearization,
/// (2) SQL-derived statistical sentences ("the average salary ... is $500"),
/// (3) splitting/compressing large tables to fit PLM input limits.
class TableUnderstanding {
 public:
  explicit TableUnderstanding(std::shared_ptr<llm::LlmModel> model)
      : model_(std::move(model)) {}

  /// Row -> natural-language sentence ("the <table> with <key> has ...").
  std::string SerializeRow(const data::Table& table, size_t row) const;

  /// Column -> "column <name> of <table> contains: v1, v2, ... (TYPE)".
  std::string SerializeColumn(const data::Table& table, size_t column,
                              size_t max_values = 5) const;

  /// Executes an aggregate query and renders it as a statistics sentence via
  /// the sql2nl skill; the sentence is PLM training data in the paper's
  /// pipeline.
  common::Result<std::string> DescribeAggregate(
      sql::Database& db, const std::string& aggregate_sql,
      llm::UsageMeter* meter = nullptr) const;

  /// One sentence per numeric column (AVG) + a COUNT(*) sentence: the
  /// "statistical table information" bundle.
  common::Result<std::vector<std::string>> DescribeTableStatistics(
      sql::Database& db, const std::string& table_name,
      llm::UsageMeter* meter = nullptr) const;

  /// Splits a table into row chunks whose serialized token count stays
  /// within `max_tokens` (PLM input limit). Chunks preserve row order.
  std::vector<data::Table> SplitForPlm(const data::Table& table,
                                       size_t max_tokens) const;

  /// Picks `k` representative rows by farthest-point sampling over row
  /// embeddings — the "choose representative tuples" compression.
  std::vector<size_t> SelectRepresentativeRows(const data::Table& table,
                                               size_t k) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
};

}  // namespace llmdm::integration

#endif  // LLMDM_CORE_INTEGRATION_TABLE_UNDERSTANDING_H_
