#ifndef LLMDM_CORE_INTEGRATION_COLUMN_ANNOTATION_H_
#define LLMDM_CORE_INTEGRATION_COLUMN_ANNOTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/tabular_gen.h"
#include "llm/model.h"

namespace llmdm::integration {

/// Column type annotation via few-shot prompting (Sec. II-C.1). The prompt
/// is the paper's own pattern: "Given the following column types: ... (1)
/// USA||UK||France, this column type is country. ... Basketball||Badminton,
/// this column type is __".
class ColumnTypeAnnotator {
 public:
  struct Options {
    size_t num_examples = 4;
  };

  ColumnTypeAnnotator(std::shared_ptr<llm::LlmModel> model,
                      const Options& options)
      : model_(std::move(model)), options_(options) {}

  /// Predicts the type label for a column's values.
  common::Result<std::string> Annotate(
      const std::vector<std::string>& values,
      const std::vector<data::CtaExample>& examples,
      llm::UsageMeter* meter = nullptr) const;

  /// Accuracy over a labelled workload.
  common::Result<double> Evaluate(
      const std::vector<data::CtaExample>& workload,
      const std::vector<data::CtaExample>& examples,
      llm::UsageMeter* meter = nullptr) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
  Options options_;
};

}  // namespace llmdm::integration

#endif  // LLMDM_CORE_INTEGRATION_COLUMN_ANNOTATION_H_
