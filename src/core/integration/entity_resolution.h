#ifndef LLMDM_CORE_INTEGRATION_ENTITY_RESOLUTION_H_
#define LLMDM_CORE_INTEGRATION_ENTITY_RESOLUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/tabular_gen.h"
#include "llm/model.h"

namespace llmdm::integration {

/// Classification quality of a matcher run.
struct MatchMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
};

/// LLM-prompted entity resolution (Sec. II-C.1): the paper's "are the
/// following entity descriptions the same real-world entity?" prompt, with
/// token-based blocking in front so obvious non-pairs never reach the model
/// (the standard cost-control in deep ER systems).
class EntityResolver {
 public:
  struct Options {
    /// Few-shot examples shown per pair (labelled match/non-match pairs).
    size_t num_examples = 4;
    /// Skip the LLM for pairs sharing no token at all (blocking).
    bool enable_blocking = true;
  };

  EntityResolver(std::shared_ptr<llm::LlmModel> model, const Options& options)
      : model_(std::move(model)), options_(options) {}

  /// Classifies one pair.
  common::Result<bool> Match(const std::string& left, const std::string& right,
                             const std::vector<data::ErPair>& examples,
                             llm::UsageMeter* meter = nullptr) const;

  /// Runs the full workload and scores against the gold labels.
  common::Result<MatchMetrics> Evaluate(
      const std::vector<data::ErPair>& workload,
      const std::vector<data::ErPair>& examples,
      llm::UsageMeter* meter = nullptr) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
  Options options_;
};

/// One proposed column correspondence between two schemas.
struct SchemaMatch {
  std::string left_column;
  std::string right_column;
  double score = 0.0;
};

/// Schema matching (Sec. II-C.1): candidate pairs are pre-filtered by type
/// compatibility and ranked by an LLM match prompt over
/// "name: values sample" serializations; a greedy 1:1 assignment keeps the
/// best-scoring consistent mapping.
class SchemaMatcher {
 public:
  explicit SchemaMatcher(std::shared_ptr<llm::LlmModel> model)
      : model_(std::move(model)) {}

  common::Result<std::vector<SchemaMatch>> MatchSchemas(
      const data::Table& left, const data::Table& right,
      llm::UsageMeter* meter = nullptr) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
};

}  // namespace llmdm::integration

#endif  // LLMDM_CORE_INTEGRATION_ENTITY_RESOLUTION_H_
