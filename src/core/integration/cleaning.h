#ifndef LLMDM_CORE_INTEGRATION_CLEANING_H_
#define LLMDM_CORE_INTEGRATION_CLEANING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/transform/column_pattern.h"
#include "data/table.h"
#include "llm/model.h"

namespace llmdm::integration {

/// One detected data-quality issue.
struct QualityIssue {
  enum class Kind { kNull, kPatternMismatch, kNumericOutlier };
  Kind kind;
  size_t row = 0;
  std::string column;
  std::string value;  // offending value ("" for NULL)
};

/// Pattern/statistics-driven data cleaning (Sec. II-C.1): detects NULLs,
/// values breaking the column's mined format pattern, and 3-sigma numeric
/// outliers; repairs reformat pattern violations with a synthesized column
/// transform and fill NULLs via LLM ICL (the annotator's mechanism).
class DataCleaner {
 public:
  struct Options {
    double outlier_sigma = 3.0;
    size_t icl_examples = 8;
  };

  DataCleaner(std::shared_ptr<llm::LlmModel> model, const Options& options)
      : model_(std::move(model)), options_(options) {}

  /// Detection only: all issues found in `table`.
  std::vector<QualityIssue> Detect(const data::Table& table) const;

  struct RepairReport {
    size_t issues_found = 0;
    size_t nulls_filled = 0;
    size_t values_reformatted = 0;
    size_t unresolved = 0;
  };

  /// Detect + repair in place.
  common::Result<RepairReport> Repair(data::Table* table,
                                      llm::UsageMeter* meter = nullptr) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
  Options options_;
};

}  // namespace llmdm::integration

#endif  // LLMDM_CORE_INTEGRATION_CLEANING_H_
