#include "core/integration/column_annotation.h"

#include "common/string_util.h"

namespace llmdm::integration {

common::Result<std::string> ColumnTypeAnnotator::Annotate(
    const std::vector<std::string>& values,
    const std::vector<data::CtaExample>& examples,
    llm::UsageMeter* meter) const {
  llm::Prompt p;
  p.task_tag = "cta";
  std::string labels = common::Join(data::CtaLabels(), ", ");
  p.instructions = "Given the following column types: " + labels +
                   ". Predict the column type from the column values.";
  for (size_t i = 0; i < std::min(options_.num_examples, examples.size());
       ++i) {
    p.examples.push_back(
        {common::Join(examples[i].values, "||"), examples[i].label});
  }
  p.input = common::Join(values, "||");
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));
  return c.text;
}

common::Result<double> ColumnTypeAnnotator::Evaluate(
    const std::vector<data::CtaExample>& workload,
    const std::vector<data::CtaExample>& examples,
    llm::UsageMeter* meter) const {
  if (workload.empty()) return 0.0;
  size_t correct = 0;
  for (const data::CtaExample& item : workload) {
    LLMDM_ASSIGN_OR_RETURN(std::string predicted,
                           Annotate(item.values, examples, meter));
    if (predicted == item.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(workload.size());
}

}  // namespace llmdm::integration
