#include "core/integration/table_understanding.h"

#include <algorithm>

#include "common/string_util.h"
#include "embed/embedder.h"
#include "text/tokenizer.h"

namespace llmdm::integration {

std::string TableUnderstanding::SerializeRow(const data::Table& table,
                                             size_t row) const {
  // Semantic serialization: lead with the table name and first column as the
  // entity key, then attribute phrases — richer than raw linearization.
  std::string out = "The " + table.name();
  if (table.NumColumns() > 0 && !table.at(row, 0).is_null()) {
    out += " with " + table.schema().column(0).name + " " +
           table.at(row, 0).ToString();
  }
  out += " has";
  bool first = true;
  for (size_t c = 1; c < table.NumColumns(); ++c) {
    const data::Value& v = table.at(row, c);
    if (v.is_null()) continue;
    out += first ? " " : ", ";
    first = false;
    out += table.schema().column(c).name + " " + v.ToString();
  }
  out += ".";
  return out;
}

std::string TableUnderstanding::SerializeColumn(const data::Table& table,
                                                size_t column,
                                                size_t max_values) const {
  const data::Column& col = table.schema().column(column);
  std::string out = "Column " + col.name + " of " + table.name() +
                    " contains:";
  size_t shown = 0;
  for (size_t r = 0; r < table.NumRows() && shown < max_values; ++r) {
    const data::Value& v = table.at(r, column);
    if (v.is_null()) continue;
    out += (shown == 0 ? " " : ", ");
    out += v.ToString();
    ++shown;
  }
  out += common::StrFormat(" (%s).",
                           std::string(data::ColumnTypeName(col.type)).c_str());
  return out;
}

common::Result<std::string> TableUnderstanding::DescribeAggregate(
    sql::Database& db, const std::string& aggregate_sql,
    llm::UsageMeter* meter) const {
  LLMDM_ASSIGN_OR_RETURN(data::Table result, db.Query(aggregate_sql));
  if (result.NumRows() != 1 || result.NumColumns() != 1) {
    return common::Status::InvalidArgument(
        "expected a single-cell aggregate result");
  }
  llm::Prompt p;
  p.task_tag = "sql2nl";
  p.instructions = "Describe the SQL query and its result in one sentence.";
  p.input = aggregate_sql + "\n=> " + result.at(0, 0).ToString();
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));
  return c.text;
}

common::Result<std::vector<std::string>>
TableUnderstanding::DescribeTableStatistics(sql::Database& db,
                                            const std::string& table_name,
                                            llm::UsageMeter* meter) const {
  LLMDM_ASSIGN_OR_RETURN(const data::Table* table,
                         db.catalog().GetTable(table_name));
  std::vector<std::string> out;
  {
    LLMDM_ASSIGN_OR_RETURN(
        std::string sentence,
        DescribeAggregate(db, "SELECT COUNT(*) FROM " + table_name, meter));
    out.push_back(std::move(sentence));
  }
  for (const data::Column& col : table->schema().columns()) {
    if (col.type != data::ColumnType::kInt64 &&
        col.type != data::ColumnType::kDouble) {
      continue;
    }
    LLMDM_ASSIGN_OR_RETURN(
        std::string sentence,
        DescribeAggregate(
            db, "SELECT AVG(" + col.name + ") FROM " + table_name, meter));
    out.push_back(std::move(sentence));
  }
  return out;
}

std::vector<data::Table> TableUnderstanding::SplitForPlm(
    const data::Table& table, size_t max_tokens) const {
  std::vector<data::Table> chunks;
  data::Table current(table.name() + "_chunk0", table.schema());
  size_t current_tokens = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    size_t row_tokens = text::CountTokens(SerializeRow(table, r));
    if (current_tokens + row_tokens > max_tokens && current.NumRows() > 0) {
      chunks.push_back(std::move(current));
      current = data::Table(
          common::StrFormat("%s_chunk%zu", table.name().c_str(),
                            chunks.size()),
          table.schema());
      current_tokens = 0;
    }
    current.AppendRowUnchecked(table.row(r));
    current_tokens += row_tokens;
  }
  if (current.NumRows() > 0) chunks.push_back(std::move(current));
  return chunks;
}

std::vector<size_t> TableUnderstanding::SelectRepresentativeRows(
    const data::Table& table, size_t k) const {
  std::vector<size_t> out;
  if (table.NumRows() == 0 || k == 0) return out;
  embed::HashingEmbedder embedder;
  std::vector<embed::Vector> embeddings;
  embeddings.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    embeddings.push_back(embedder.Embed(SerializeRow(table, r)));
  }
  // Farthest-point sampling: start at row 0, repeatedly add the row farthest
  // from the selected set (classic k-center heuristic).
  out.push_back(0);
  std::vector<float> best_sim(table.NumRows(), -2.0f);
  while (out.size() < std::min<size_t>(k, table.NumRows())) {
    size_t last = out.back();
    for (size_t r = 0; r < table.NumRows(); ++r) {
      best_sim[r] = std::max(
          best_sim[r],
          embed::CosineSimilarity(embeddings[r], embeddings[last]));
    }
    size_t farthest = 0;
    float lowest = 2.0f;
    for (size_t r = 0; r < table.NumRows(); ++r) {
      if (std::find(out.begin(), out.end(), r) != out.end()) continue;
      if (best_sim[r] < lowest) {
        lowest = best_sim[r];
        farthest = r;
      }
    }
    out.push_back(farthest);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace llmdm::integration
