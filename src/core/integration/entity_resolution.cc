#include "core/integration/entity_resolution.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace llmdm::integration {

double MatchMetrics::Precision() const {
  size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MatchMetrics::Recall() const {
  size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MatchMetrics::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double MatchMetrics::Accuracy() const {
  size_t total = true_positives + false_positives + true_negatives +
                 false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

common::Result<bool> EntityResolver::Match(
    const std::string& left, const std::string& right,
    const std::vector<data::ErPair>& examples, llm::UsageMeter* meter) const {
  if (options_.enable_blocking) {
    // Blocking: no shared token (case-folded) => cannot be a match; skip the
    // model entirely (the cost-saving step).
    if (common::TokenJaccard(left, right) == 0.0) return false;
  }
  llm::Prompt p;
  p.task_tag = "match";
  p.instructions =
      "Are the following entity descriptions the same real-world entity? "
      "Answer yes or no.";
  for (size_t i = 0; i < std::min(options_.num_examples, examples.size());
       ++i) {
    p.examples.push_back({examples[i].left + " ||| " + examples[i].right,
                          examples[i].is_match ? "yes" : "no"});
  }
  p.input = left + " ||| " + right;
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));
  return c.text == "yes";
}

common::Result<MatchMetrics> EntityResolver::Evaluate(
    const std::vector<data::ErPair>& workload,
    const std::vector<data::ErPair>& examples, llm::UsageMeter* meter) const {
  MatchMetrics metrics;
  for (const data::ErPair& pair : workload) {
    LLMDM_ASSIGN_OR_RETURN(bool predicted,
                           Match(pair.left, pair.right, examples, meter));
    if (predicted && pair.is_match) ++metrics.true_positives;
    else if (predicted && !pair.is_match) ++metrics.false_positives;
    else if (!predicted && !pair.is_match) ++metrics.true_negatives;
    else ++metrics.false_negatives;
  }
  return metrics;
}

common::Result<std::vector<SchemaMatch>> SchemaMatcher::MatchSchemas(
    const data::Table& left, const data::Table& right,
    llm::UsageMeter* meter) const {
  // Serialize a column as "name: v1, v2, v3" (sample of distinct values).
  auto describe = [](const data::Table& t, size_t col) {
    std::string out = t.schema().column(col).name + ":";
    std::set<std::string> seen;
    for (size_t r = 0; r < t.NumRows() && seen.size() < 3; ++r) {
      const data::Value& v = t.at(r, col);
      if (v.is_null()) continue;
      if (seen.insert(v.ToString()).second) out += " " + v.ToString();
    }
    return out;
  };

  std::vector<SchemaMatch> candidates;
  for (size_t lc = 0; lc < left.NumColumns(); ++lc) {
    for (size_t rc = 0; rc < right.NumColumns(); ++rc) {
      // Type-compatibility pre-filter: numeric matches numeric, text text.
      auto type_class = [](data::ColumnType t) {
        switch (t) {
          case data::ColumnType::kInt64:
          case data::ColumnType::kDouble:
            return 0;
          case data::ColumnType::kText:
            return 1;
          case data::ColumnType::kBool:
            return 2;
          case data::ColumnType::kDate:
            return 3;
          default:
            return 4;
        }
      };
      if (type_class(left.schema().column(lc).type) !=
          type_class(right.schema().column(rc).type)) {
        continue;
      }
      llm::Prompt p;
      p.task_tag = "match";
      p.instructions =
          "Do these two columns describe the same attribute? yes or no.";
      p.input = describe(left, lc) + " ||| " + describe(right, rc);
      LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                             model_->CompleteMetered(p, meter));
      if (c.text == "yes") {
        candidates.push_back(SchemaMatch{left.schema().column(lc).name,
                                         right.schema().column(rc).name,
                                         c.confidence});
      }
    }
  }
  // Greedy 1:1 assignment by confidence.
  std::sort(candidates.begin(), candidates.end(),
            [](const SchemaMatch& a, const SchemaMatch& b) {
              return a.score > b.score;
            });
  std::set<std::string> used_left, used_right;
  std::vector<SchemaMatch> out;
  for (SchemaMatch& m : candidates) {
    if (used_left.count(m.left_column) || used_right.count(m.right_column)) {
      continue;
    }
    used_left.insert(m.left_column);
    used_right.insert(m.right_column);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace llmdm::integration
