#include "core/integration/cleaning.h"

#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"
#include "core/generation/annotator.h"

namespace llmdm::integration {
namespace {

using data::ColumnType;
using data::Value;

// Structural shape of a value, ignoring run lengths: "8/9/2023" and
// "8/10/2023" share a shape, "Aug 14 2023" does not. Length-insensitive
// comparison is what majority-format detection needs.
std::string ValueShape(const std::string& text) {
  std::string out;
  for (const transform::PatternToken& tok : transform::ValuePattern(text)) {
    switch (tok.kind) {
      case transform::PatternToken::Kind::kDigits:
        out += "<d>";
        break;
      case transform::PatternToken::Kind::kLetters:
        out += "<l>";
        break;
      case transform::PatternToken::Kind::kLiteral:
        out += tok.literal;
        break;
    }
  }
  return out;
}

}  // namespace

std::vector<QualityIssue> DataCleaner::Detect(const data::Table& table) const {
  std::vector<QualityIssue> out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const data::Column& col = table.schema().column(c);
    // NULLs.
    for (size_t r = 0; r < table.NumRows(); ++r) {
      if (table.at(r, c).is_null()) {
        out.push_back(QualityIssue{QualityIssue::Kind::kNull, r, col.name, ""});
      }
    }
    if (col.type == ColumnType::kText) {
      // Majority-pattern mismatches: mine the pattern per value, find the
      // dominant structure, and flag the minority.
      std::map<std::string, size_t> pattern_counts;
      std::vector<std::string> row_patterns(table.NumRows());
      for (size_t r = 0; r < table.NumRows(); ++r) {
        const Value& v = table.at(r, c);
        if (v.is_null()) continue;
        row_patterns[r] = ValueShape(v.AsText());
        ++pattern_counts[row_patterns[r]];
      }
      std::string dominant;
      size_t best = 0;
      for (const auto& [pattern, n] : pattern_counts) {
        if (n > best) {
          best = n;
          dominant = pattern;
        }
      }
      // Only meaningful when one structure clearly dominates.
      if (best * 2 > table.NumRows()) {
        for (size_t r = 0; r < table.NumRows(); ++r) {
          const Value& v = table.at(r, c);
          if (v.is_null() || row_patterns[r] == dominant) continue;
          out.push_back(QualityIssue{QualityIssue::Kind::kPatternMismatch, r,
                                     col.name, v.AsText()});
        }
      }
    } else if (col.type == ColumnType::kInt64 ||
               col.type == ColumnType::kDouble) {
      double mean = 0;
      size_t n = 0;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        const Value& v = table.at(r, c);
        if (v.is_null()) continue;
        mean += v.AsDouble();
        ++n;
      }
      if (n < 4) continue;
      mean /= static_cast<double>(n);
      double var = 0;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        const Value& v = table.at(r, c);
        if (v.is_null()) continue;
        var += (v.AsDouble() - mean) * (v.AsDouble() - mean);
      }
      double stddev = std::sqrt(var / static_cast<double>(n));
      if (stddev < 1e-12) continue;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        const Value& v = table.at(r, c);
        if (v.is_null()) continue;
        if (std::abs(v.AsDouble() - mean) > options_.outlier_sigma * stddev) {
          out.push_back(QualityIssue{QualityIssue::Kind::kNumericOutlier, r,
                                     col.name, v.ToString()});
        }
      }
    }
  }
  return out;
}

common::Result<DataCleaner::RepairReport> DataCleaner::Repair(
    data::Table* table, llm::UsageMeter* meter) const {
  RepairReport report;
  std::vector<QualityIssue> issues = Detect(*table);
  report.issues_found = issues.size();

  // Pattern repairs: learn src->dominant transforms from column values.
  std::map<std::string, std::vector<QualityIssue>> mismatches_by_column;
  std::vector<std::string> null_columns;
  for (const QualityIssue& issue : issues) {
    if (issue.kind == QualityIssue::Kind::kPatternMismatch) {
      mismatches_by_column[issue.column].push_back(issue);
    } else if (issue.kind == QualityIssue::Kind::kNull) {
      null_columns.push_back(issue.column);
    } else {
      ++report.unresolved;  // outliers are flagged, not auto-repaired
    }
  }

  for (auto& [column, column_issues] : mismatches_by_column) {
    size_t col = *table->schema().Find(column);
    // The dominant format defines the repair target; date reformatting
    // covers the realistic case (the paper's "Aug 14 2023" vs "8/14/2023"),
    // other mismatches stay flagged for a human.
    common::Result<transform::DateStyle> target_style =
        common::Status::NotFound("no dominant date style");
    std::map<std::string, size_t> style_votes;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      const Value& v = table->at(r, col);
      if (v.is_null() || !v.is_text()) continue;
      auto style = transform::DetectDateStyle(v.AsText());
      if (style.ok()) {
        target_style = *style;  // refined by majority below
        ++style_votes[std::to_string(static_cast<int>(*style))];
      }
    }
    if (target_style.ok() && !style_votes.empty()) {
      int best_style = 0;
      size_t best = 0;
      for (const auto& [key, n] : style_votes) {
        if (n > best) {
          best = n;
          best_style = std::stoi(key);
        }
      }
      target_style = static_cast<transform::DateStyle>(best_style);
    }
    for (const QualityIssue& issue : column_issues) {
      if (!target_style.ok()) {
        ++report.unresolved;
        continue;
      }
      auto fixed = transform::ReformatDate(issue.value, *target_style);
      if (!fixed.ok()) {
        ++report.unresolved;
        continue;
      }
      (*table->mutable_row(issue.row))[col] = Value::Text(*fixed);
      ++report.values_reformatted;
    }
  }

  // NULL repairs via ICL annotation.
  std::set<std::string> distinct_null_columns(null_columns.begin(),
                                              null_columns.end());
  for (const std::string& column : distinct_null_columns) {
    generation::MissingFieldAnnotator annotator(
        model_, generation::MissingFieldAnnotator::Options{
                    options_.icl_examples, 0});
    auto annotated = annotator.Annotate(table, column, meter);
    if (annotated.ok()) {
      report.nulls_filled += annotated->filled;
      report.unresolved += annotated->missing - annotated->filled;
    }
  }
  return report;
}

}  // namespace llmdm::integration
