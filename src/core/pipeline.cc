#include "core/pipeline.h"

#include "common/string_util.h"
#include "core/generation/annotator.h"
#include "core/integration/cleaning.h"
#include "core/integration/column_annotation.h"
#include "core/integration/entity_resolution.h"
#include "core/transform/column_pattern.h"
#include "core/transform/table_transform.h"
#include "data/tabular_gen.h"
#include "data/xml.h"
#include "llm/deadline.h"

namespace llmdm::core {
namespace {

// A small XML corpus of diagnostic reports with deliberately mixed date
// formats (the transformation stage's raw input).
std::string MakeDiagnosticXml(size_t n, common::Rng& rng) {
  const char* const kDiagnoses[] = {"hypertension", "arrhythmia", "angina",
                                    "diabetes", "asthma"};
  const char* const kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun"};
  std::string xml = "<reports>\n";
  for (size_t i = 0; i < n; ++i) {
    std::string date;
    int64_t day = rng.UniformInt(1, 28);
    size_t month_index = rng.NextBelow(6);
    if (rng.Bernoulli(0.3)) {
      // Minority format that the cleaner must unify.
      date = common::StrFormat("%s %lld 2023", kMonths[month_index],
                               (long long)day);
    } else {
      date = common::StrFormat("%lld/%lld/2023", (long long)(month_index + 1),
                               (long long)day);
    }
    xml += common::StrFormat(
        "  <report id=\"%zu\"><patient_id>%lld</patient_id>"
        "<diagnosis>%s</diagnosis><visit_date>%s</visit_date></report>\n",
        i + 1, (long long)rng.UniformInt(1, 40),
        kDiagnoses[rng.NextBelow(5)], date.c_str());
  }
  xml += "</reports>";
  return xml;
}

}  // namespace

common::Result<DataManagementPipeline::Report> DataManagementPipeline::Run() {
  if (options_.model == nullptr) {
    return common::Status::InvalidArgument("pipeline needs a model");
  }
  Report report;
  common::Rng rng(options_.seed);
  // One shared budget for the whole run: wrapping the model means every
  // prompt built deep inside annotators/synthesizers/resolvers is scoped
  // under it without those components knowing deadlines exist.
  std::shared_ptr<llm::Deadline> deadline;
  std::shared_ptr<llm::LlmModel> model = options_.model;
  if (options_.deadline_ms > 0.0) {
    deadline = std::make_shared<llm::Deadline>(options_.deadline_ms);
    model = std::make_shared<llm::DeadlineScopedLlm>(model, deadline);
  }
  // Runs one stage body and records its outcome. A failed stage is reported
  // as degraded — with whatever partial artifacts it already committed —
  // and the pipeline moves on, because downstream stages can usually do
  // useful work on what exists (and "the whole ETL aborted because one
  // annotation call 503'd" is exactly the failure mode this layer removes).
  auto run_stage = [&](const std::string& name, llm::UsageMeter& meter,
                       auto&& body) {
    common::Result<std::string> summary = body();
    StageReport stage;
    stage.stage = name;
    if (summary.ok()) {
      stage.summary = *summary;
    } else {
      stage.degraded = true;
      stage.summary = "degraded: " + summary.status().ToString();
      ++report.degraded_stages;
    }
    stage.llm_calls = meter.calls();
    stage.llm_cost = meter.cost();
    stage.retry = meter.retry_stats();
    if (deadline != nullptr) {
      stage.deadline_remaining_ms = deadline->remaining_ms();
      if (deadline->Exhausted()) report.deadline_exhausted = true;
    }
    report.total_llm_calls += meter.calls();
    report.total_cost += meter.cost();
    report.stages.push_back(std::move(stage));
  };

  // Artifacts shared across stages; a degraded producer leaves them partial
  // (possibly empty) and the consumers below guard on that.
  data::Table patients;
  data::Table reports;

  // ---- Stage 1: data generation -------------------------------------------
  llm::UsageMeter gen_meter;
  run_stage("generation", gen_meter,
            [&]() -> common::Result<std::string> {
    data::PatientDataOptions patient_options;
    patient_options.num_rows = options_.num_patients;
    patients = data::GeneratePatientTable(patient_options, rng);
    data::InjectMissing(&patients, "cholesterol", options_.missing_fraction,
                        rng);
    // The raw table is committed before any LLM call: if annotation fails,
    // downstream stages still get patients (with missingness).
    db_.catalog().PutTable(patients);
    generation::MissingFieldAnnotator annotator(
        model, generation::MissingFieldAnnotator::Options{8, 0});
    LLMDM_ASSIGN_OR_RETURN(auto annotation_report,
                           annotator.Annotate(&patients, "cholesterol",
                                              &gen_meter));
    db_.catalog().PutTable(patients);  // refresh with annotated values
    generation::TabularSynthesizer synthesizer(model);
    LLMDM_ASSIGN_OR_RETURN(
        data::Table synthetic,
        synthesizer.Synthesize(patients, options_.num_patients / 4,
                               &gen_meter));
    db_.catalog().PutTable(synthetic);
    return common::StrFormat(
        "generated %zu patients; annotated %zu/%zu missing "
        "cholesterol values; synthesized %zu extra rows",
        patients.NumRows(), annotation_report.filled,
        annotation_report.missing, synthetic.NumRows());
  });

  // ---- Stage 2: transformation --------------------------------------------
  llm::UsageMeter transform_meter;
  run_stage("transformation", transform_meter,
            [&]() -> common::Result<std::string> {
    std::string xml_corpus = MakeDiagnosticXml(options_.num_patients / 2, rng);
    LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<data::XmlNode> root,
                           data::ParseXml(xml_corpus));
    LLMDM_ASSIGN_OR_RETURN(reports, transform::XmlToTable(*root));
    reports.set_name("reports");
    // Unify the visit_date column onto the dominant (slash) format.
    auto date_col = reports.schema().Find("visit_date");
    size_t reformatted = 0;
    if (date_col.has_value()) {
      for (size_t r = 0; r < reports.NumRows(); ++r) {
        const data::Value& v = reports.at(r, *date_col);
        if (v.is_null() || !v.is_text()) continue;
        auto style = transform::DetectDateStyle(v.AsText());
        if (style.ok() && *style != transform::DateStyle::kSlashMDY) {
          auto fixed = transform::ReformatDate(
              v.AsText(), transform::DateStyle::kSlashMDY);
          if (fixed.ok()) {
            (*reports.mutable_row(r))[*date_col] = data::Value::Text(*fixed);
            ++reformatted;
          }
        }
      }
    }
    db_.catalog().PutTable(reports);
    return common::StrFormat(
        "relationalized %zu XML reports; unified %zu date values",
        reports.NumRows(), reformatted);
  });

  // ---- Stage 3: integration -----------------------------------------------
  llm::UsageMeter integ_meter;
  run_stage("integration", integ_meter,
            [&]() -> common::Result<std::string> {
    integration::ColumnTypeAnnotator cta(
        model, integration::ColumnTypeAnnotator::Options{4});
    auto cta_examples = data::GenerateCtaWorkload(8, rng);
    auto mystery = data::GenerateCtaWorkload(4, rng);
    size_t cta_correct = 0;
    for (const auto& item : mystery) {
      auto label = cta.Annotate(item.values, cta_examples, &integ_meter);
      if (label.ok() && *label == item.label) ++cta_correct;
    }
    integration::EntityResolver resolver(
        model, integration::EntityResolver::Options{4, true});
    auto er_examples = data::GenerateErWorkload(8, 0.4, rng);
    auto er_pairs = data::GenerateErWorkload(12, 0.4, rng);
    LLMDM_ASSIGN_OR_RETURN(
        auto er_metrics,
        resolver.Evaluate(er_pairs, er_examples, &integ_meter));
    return common::StrFormat(
        "column types: %zu/%zu correct; entity resolution F1=%.2f",
        cta_correct, mystery.size(), er_metrics.F1());
  });

  // ---- Stage 4: exploration -----------------------------------------------
  llm::UsageMeter explore_meter;
  run_stage("exploration", explore_meter,
            [&]() -> common::Result<std::string> {
    if (patients.NumRows() > 0) {
      LLMDM_RETURN_IF_ERROR(lake_.IngestTable(patients, "patient"));
    }
    if (reports.NumRows() > 0) {
      LLMDM_RETURN_IF_ERROR(lake_.IngestTable(reports, "report"));
    }
    exploration::LakeItem note;
    note.modality = exploration::Modality::kText;
    note.title = "clinical note";
    note.content =
        "Patient presented with elevated blood pressure and chest pain; "
        "recommended cardiology follow-up.";
    note.attributes["entity_type"] = data::Value::Text("note");
    LLMDM_RETURN_IF_ERROR(lake_.Ingest(std::move(note)));
    exploration::LakeItem scan;
    scan.modality = exploration::Modality::kImage;
    scan.title = "chest x-ray";
    scan.content = "chest x-ray image showing mild cardiomegaly";
    scan.attributes["entity_type"] = data::Value::Text("imaging");
    LLMDM_RETURN_IF_ERROR(lake_.Ingest(std::move(scan)));
    auto hits = lake_.Query("patients with high blood pressure", 5);
    return common::StrFormat(
        "lake holds %zu items; sample query returned %zu hits",
        lake_.Size(), hits.size());
  });
  return report;
}

}  // namespace llmdm::core
