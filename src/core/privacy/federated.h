#ifndef LLMDM_CORE_PRIVACY_FEDERATED_H_
#define LLMDM_CORE_PRIVACY_FEDERATED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/logistic.h"

namespace llmdm::privacy {

/// One federated client: its private shard and local training configuration.
struct FederatedClient {
  std::string name;
  ml::Dataset shard;
  size_t local_epochs = 2;
};

/// Federated averaging trainer (Sec. III-D's data-collaboration path):
/// clients train locally on private shards; only parameters travel; the
/// server averages them (weighted by shard size). Optional per-round
/// adaptive client weighting down-weights clients whose updates diverge from
/// the consensus — the "RL technique to adjust FL strategies" knob in its
/// simplest effective form.
class FederatedTrainer {
 public:
  struct Options {
    size_t rounds = 10;
    double learning_rate = 0.1;
    size_t batch_size = 16;
    bool adaptive_weighting = false;
    uint64_t seed = 5;
  };

  explicit FederatedTrainer(const Options& options) : options_(options) {}

  struct RoundStats {
    size_t round = 0;
    double global_accuracy = 0.0;  // on `evaluation`
  };

  struct Report {
    ml::LogisticRegression global_model;
    std::vector<RoundStats> rounds;
    double final_accuracy = 0.0;
  };

  common::Result<Report> Train(const std::vector<FederatedClient>& clients,
                               const ml::Dataset& evaluation) const;

 private:
  Options options_;
};

/// Splits a dataset into `num_clients` heterogeneous shards: each client's
/// label distribution is skewed by `heterogeneity` in [0,1] (0 = IID).
std::vector<FederatedClient> MakeHeterogeneousClients(
    const ml::Dataset& dataset, size_t num_clients, double heterogeneity,
    common::Rng& rng);

}  // namespace llmdm::privacy

#endif  // LLMDM_CORE_PRIVACY_FEDERATED_H_
