#include "core/privacy/federated.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace llmdm::privacy {

common::Result<FederatedTrainer::Report> FederatedTrainer::Train(
    const std::vector<FederatedClient>& clients,
    const ml::Dataset& evaluation) const {
  if (clients.empty()) {
    return common::Status::InvalidArgument("no federated clients");
  }
  Report report;
  ml::LogisticRegression global;
  size_t dim = clients[0].shard.dim();
  global.SetParameters(std::vector<double>(dim, 0.0), 0.0);

  for (size_t round = 0; round < options_.rounds; ++round) {
    std::vector<ml::LogisticRegression> locals;
    std::vector<size_t> sizes;
    for (const FederatedClient& client : clients) {
      // Local training warm-started from the global parameters: continue GD
      // from the server state (the FedAvg local step).
      ml::LogisticRegression local = global;
      ml::LogisticRegression::TrainOptions opts;
      opts.epochs = client.local_epochs;
      opts.learning_rate = options_.learning_rate;
      opts.batch_size = options_.batch_size;
      opts.seed = options_.seed + round * 1000 +
                  static_cast<uint64_t>(sizes.size());
      // Train() resets parameters; emulate warm start by blending the fresh
      // local fit with the incoming global parameters.
      ml::LogisticRegression fresh;
      fresh.Train(client.shard, opts);
      std::vector<double> blended(dim);
      for (size_t d = 0; d < dim; ++d) {
        blended[d] = 0.5 * global.weights()[d] + 0.5 * fresh.weights()[d];
      }
      local.SetParameters(std::move(blended),
                          0.5 * global.bias() + 0.5 * fresh.bias());
      locals.push_back(std::move(local));
      sizes.push_back(client.shard.size());
    }

    if (options_.adaptive_weighting && locals.size() > 2) {
      // Down-weight divergent clients: weight by inverse distance to the
      // coordinate-wise median model.
      std::vector<double> median(dim, 0.0);
      for (size_t d = 0; d < dim; ++d) {
        std::vector<double> coords;
        for (const auto& m : locals) coords.push_back(m.weights()[d]);
        std::nth_element(coords.begin(), coords.begin() + coords.size() / 2,
                         coords.end());
        median[d] = coords[coords.size() / 2];
      }
      for (size_t i = 0; i < locals.size(); ++i) {
        double dist = 0;
        for (size_t d = 0; d < dim; ++d) {
          double delta = locals[i].weights()[d] - median[d];
          dist += delta * delta;
        }
        double weight = 1.0 / (1.0 + std::sqrt(dist));
        sizes[i] = std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(sizes[i]) * weight));
      }
    }
    global = ml::FederatedAverage(locals, sizes);
    RoundStats stats;
    stats.round = round;
    stats.global_accuracy = global.Accuracy(evaluation);
    report.rounds.push_back(stats);
  }
  report.final_accuracy = global.Accuracy(evaluation);
  report.global_model = std::move(global);
  return report;
}

std::vector<FederatedClient> MakeHeterogeneousClients(
    const ml::Dataset& dataset, size_t num_clients, double heterogeneity,
    common::Rng& rng) {
  std::vector<FederatedClient> clients(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients[i].name = common::StrFormat("client_%zu", i);
    clients[i].shard.feature_names = dataset.feature_names;
  }
  for (size_t i = 0; i < dataset.size(); ++i) {
    size_t target;
    if (rng.Bernoulli(heterogeneity)) {
      // Skewed routing: label 1 concentrates on the first half of clients.
      size_t half = std::max<size_t>(1, num_clients / 2);
      target = dataset.labels[i] == 1 ? rng.NextBelow(half)
                                      : half + rng.NextBelow(num_clients - half);
    } else {
      target = rng.NextBelow(num_clients);
    }
    clients[target].shard.features.push_back(dataset.features[i]);
    clients[target].shard.labels.push_back(dataset.labels[i]);
  }
  return clients;
}

}  // namespace llmdm::privacy
