#include "core/privacy/dp.h"

#include <algorithm>
#include <cmath>

namespace llmdm::privacy {

common::Status DpMechanism::Spend(double epsilon) {
  if (epsilon <= 0.0) {
    return common::Status::InvalidArgument("epsilon must be positive");
  }
  if (spent_ + epsilon > budget_ + 1e-12) {
    return common::Status::ResourceExhausted(
        "privacy budget exhausted: spent " + std::to_string(spent_) +
        " of " + std::to_string(budget_));
  }
  spent_ += epsilon;
  return common::Status::Ok();
}

common::Result<double> DpMechanism::LaplaceNoise(double value,
                                                 double sensitivity,
                                                 double epsilon) {
  LLMDM_RETURN_IF_ERROR(Spend(epsilon));
  double scale = sensitivity / epsilon;
  // Inverse-CDF Laplace draw.
  double u = rng_.UniformDouble() - 0.5;
  double noise = -scale * (u < 0 ? -1.0 : 1.0) *
                 std::log(1.0 - 2.0 * std::abs(u));
  return value + noise;
}

common::Result<double> DpMechanism::GaussianNoise(double value,
                                                  double sensitivity,
                                                  double epsilon,
                                                  double delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    return common::Status::InvalidArgument("delta must be in (0,1)");
  }
  LLMDM_RETURN_IF_ERROR(Spend(epsilon));
  double sigma = sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) /
                 epsilon;
  return value + rng_.Normal(0.0, sigma);
}

common::Result<double> DpAggregator::NoisyCount(const std::string& column,
                                                double epsilon) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<data::Value> values,
                         table_->ColumnValues(column));
  double count = 0;
  for (const data::Value& v : values) {
    if (!v.is_null()) count += 1;
  }
  return mechanism_.LaplaceNoise(count, /*sensitivity=*/1.0, epsilon);
}

common::Result<double> DpAggregator::NoisySum(const std::string& column,
                                              double clamp_lo, double clamp_hi,
                                              double epsilon) {
  if (clamp_hi <= clamp_lo) {
    return common::Status::InvalidArgument("clamp_hi must exceed clamp_lo");
  }
  LLMDM_ASSIGN_OR_RETURN(std::vector<data::Value> values,
                         table_->ColumnValues(column));
  double sum = 0;
  for (const data::Value& v : values) {
    if (v.is_null() || !v.is_numeric()) continue;
    sum += std::clamp(v.AsDouble(), clamp_lo, clamp_hi);
  }
  double sensitivity = std::max(std::abs(clamp_lo), std::abs(clamp_hi));
  return mechanism_.LaplaceNoise(sum, sensitivity, epsilon);
}

common::Result<double> DpAggregator::NoisyMean(const std::string& column,
                                               double clamp_lo,
                                               double clamp_hi,
                                               double epsilon) {
  if (clamp_hi <= clamp_lo) {
    return common::Status::InvalidArgument("clamp_hi must exceed clamp_lo");
  }
  // Standard shifted-mean release: noise the SHIFTED sum (values - clamp_lo),
  // whose sensitivity is (hi - lo) rather than max(|lo|, |hi|), then add the
  // offset back — half the budget on each of sum and count.
  LLMDM_ASSIGN_OR_RETURN(std::vector<data::Value> values,
                         table_->ColumnValues(column));
  double shifted_sum = 0;
  for (const data::Value& v : values) {
    if (v.is_null() || !v.is_numeric()) continue;
    shifted_sum += std::clamp(v.AsDouble(), clamp_lo, clamp_hi) - clamp_lo;
  }
  LLMDM_ASSIGN_OR_RETURN(
      double noisy_shifted,
      mechanism_.LaplaceNoise(shifted_sum, clamp_hi - clamp_lo, epsilon / 2));
  LLMDM_ASSIGN_OR_RETURN(double count, NoisyCount(column, epsilon / 2));
  if (count < 1.0) count = 1.0;
  return clamp_lo + noisy_shifted / count;
}

MembershipAttackResult RunMembershipInferenceAttack(
    const ml::LogisticRegression& model, const ml::Dataset& members,
    const ml::Dataset& non_members) {
  // Threshold tuned to the best separation the attacker could achieve
  // (an optimal-threshold audit: upper-bounds realistic attacks).
  std::vector<std::pair<double, int>> losses;  // (loss, is_member)
  for (size_t i = 0; i < members.size(); ++i) {
    losses.emplace_back(model.ExampleLoss(members.features[i],
                                          members.labels[i]),
                        1);
  }
  for (size_t i = 0; i < non_members.size(); ++i) {
    losses.emplace_back(model.ExampleLoss(non_members.features[i],
                                          non_members.labels[i]),
                        0);
  }
  std::sort(losses.begin(), losses.end());
  MembershipAttackResult result;
  if (losses.empty() || members.size() == 0 || non_members.size() == 0) {
    return result;
  }
  // Sweep thresholds: guess "member" when loss <= t. Balanced accuracy
  // (TPR + TNR) / 2 keeps the trivial always-one-class attacker at exactly
  // 0.5 regardless of member/non-member set sizes.
  size_t members_below = 0, nonmembers_below = 0;
  double best = 0.5;
  for (const auto& [loss, is_member] : losses) {
    if (is_member) ++members_below;
    else ++nonmembers_below;
    double tpr = static_cast<double>(members_below) /
                 static_cast<double>(members.size());
    double tnr = static_cast<double>(non_members.size() - nonmembers_below) /
                 static_cast<double>(non_members.size());
    best = std::max(best, (tpr + tnr) / 2.0);
  }
  result.attack_accuracy = best;
  return result;
}

DpTrainingReport TrainWithDpAndAudit(const ml::Dataset& train,
                                     const ml::Dataset& holdout,
                                     double noise_multiplier, double clip_norm,
                                     uint64_t seed) {
  return TrainWithDpAndAudit(train, holdout, noise_multiplier, clip_norm, seed,
                             ml::LogisticRegression::TrainOptions{});
}

DpTrainingReport TrainWithDpAndAudit(
    const ml::Dataset& train, const ml::Dataset& holdout,
    double noise_multiplier, double clip_norm, uint64_t seed,
    const ml::LogisticRegression::TrainOptions& base_options) {
  DpTrainingReport report;
  ml::LogisticRegression model;
  ml::LogisticRegression::TrainOptions options = base_options;
  options.seed = seed;
  options.clip_norm = noise_multiplier > 0 ? clip_norm : 0.0;
  options.noise_multiplier = noise_multiplier;
  report.train_loss = model.Train(train, options);
  report.holdout_accuracy = model.Accuracy(holdout);
  if (noise_multiplier > 0) {
    // Single-release Gaussian calibration as a readable epsilon proxy.
    constexpr double kDelta = 1e-5;
    report.approx_epsilon =
        std::sqrt(2.0 * std::log(1.25 / kDelta)) / noise_multiplier;
  }
  report.attack = RunMembershipInferenceAttack(model, train, holdout);
  return report;
}

}  // namespace llmdm::privacy
