#ifndef LLMDM_CORE_PRIVACY_DP_H_
#define LLMDM_CORE_PRIVACY_DP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "ml/logistic.h"

namespace llmdm::privacy {

/// Classic (epsilon, delta)-DP noise mechanisms plus a simple composition
/// accountant (Sec. III-D: "integrate differential privacy into the
/// training process ... injecting minimal noise while maximizing utility").
class DpMechanism {
 public:
  DpMechanism(double epsilon_budget, uint64_t seed)
      : budget_(epsilon_budget), rng_(seed) {}

  /// value + Laplace(sensitivity/epsilon) noise; spends `epsilon` from the
  /// budget. Fails when the budget is exhausted (basic composition).
  common::Result<double> LaplaceNoise(double value, double sensitivity,
                                      double epsilon);

  /// value + Gaussian noise calibrated for (epsilon, delta)-DP.
  common::Result<double> GaussianNoise(double value, double sensitivity,
                                       double epsilon, double delta);

  double remaining_budget() const { return budget_ - spent_; }
  double spent() const { return spent_; }

 private:
  common::Status Spend(double epsilon);

  double budget_;
  double spent_ = 0.0;
  common::Rng rng_;
};

/// DP aggregate release over a table column: COUNT / SUM / AVG with
/// per-query epsilon spending (the "doctor queries the patient table"
/// scenario without exposing individuals).
class DpAggregator {
 public:
  DpAggregator(const data::Table* table, double epsilon_budget, uint64_t seed)
      : table_(table), mechanism_(epsilon_budget, seed) {}

  common::Result<double> NoisyCount(const std::string& column, double epsilon);
  /// `clamp_lo/hi` bound each value's contribution (the sensitivity).
  common::Result<double> NoisySum(const std::string& column, double clamp_lo,
                                  double clamp_hi, double epsilon);
  common::Result<double> NoisyMean(const std::string& column, double clamp_lo,
                                   double clamp_hi, double epsilon);

  double remaining_budget() const { return mechanism_.remaining_budget(); }

 private:
  const data::Table* table_;
  DpMechanism mechanism_;
};

/// Result of a membership-inference evaluation.
struct MembershipAttackResult {
  /// Attack accuracy over a balanced member/non-member set; 0.5 = chance.
  double attack_accuracy = 0.5;
  /// attack_accuracy - 0.5, the paper-relevant "leakage" number.
  double advantage() const { return attack_accuracy - 0.5; }
};

/// Loss-threshold membership inference attack (Shokri et al. flavour):
/// examples whose loss under the model is below a threshold (tuned on the
/// attacker's own data split) are guessed to be training members. Run
/// against models trained with and without DP-SGD to show DP shrinking the
/// advantage.
MembershipAttackResult RunMembershipInferenceAttack(
    const ml::LogisticRegression& model, const ml::Dataset& members,
    const ml::Dataset& non_members);

/// Trains logistic regression with DP-SGD (clip + Gaussian noise) and
/// reports utility; `noise_multiplier` 0 = non-private baseline. The rough
/// epsilon reported uses the standard sigma = sqrt(2 ln(1.25/delta))/epsilon
/// single-release calibration per epoch step as a readable proxy (a tight
/// moments accountant is out of scope and orthogonal to the trade-off
/// shape).
struct DpTrainingReport {
  double train_loss = 0.0;
  double holdout_accuracy = 0.0;
  double approx_epsilon = 0.0;  // +inf rendered as 0 noise
  MembershipAttackResult attack;
};

DpTrainingReport TrainWithDpAndAudit(const ml::Dataset& train,
                                     const ml::Dataset& holdout,
                                     double noise_multiplier, double clip_norm,
                                     uint64_t seed);

/// Same, but with explicit base training options (e.g. many epochs and no
/// regularization to study the overfit/memorization regime that membership
/// inference exploits).
DpTrainingReport TrainWithDpAndAudit(
    const ml::Dataset& train, const ml::Dataset& holdout,
    double noise_multiplier, double clip_norm, uint64_t seed,
    const ml::LogisticRegression::TrainOptions& base_options);

}  // namespace llmdm::privacy

#endif  // LLMDM_CORE_PRIVACY_DP_H_
