#ifndef LLMDM_CORE_EXPLORATION_DATALAKE_H_
#define LLMDM_CORE_EXPLORATION_DATALAKE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "embed/embedder.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/vector_store.h"

namespace llmdm::exploration {

/// Item modalities in the lake. Images are represented by their descriptor
/// text (captions/EXIF-like metadata) — the hardware-free stand-in for a
/// vision encoder, preserving the property that matters here: everything
/// lands in one embedding space (Sec. II-D.1).
enum class Modality { kText, kTable, kImage, kLog };

std::string_view ModalityName(Modality modality);

/// One object in the multi-modal data lake.
struct LakeItem {
  uint64_t id = 0;
  Modality modality = Modality::kText;
  std::string title;
  std::string content;
  /// Scalar attributes for hybrid filtering (e.g. entity_type, year) — the
  /// paper's fix for the "Prof. Michael Jordan" similar-but-irrelevant
  /// problem (Sec. III-B.2).
  std::map<std::string, data::Value> attributes;
};

/// Multi-modal data lake with unified-embedding semantic search and
/// attribute filtering. Tables are ingested row-wise (each row serialized to
/// a sentence) so that SQL-less semantic queries still reach tabular facts.
class MultiModalDataLake {
 public:
  MultiModalDataLake();

  common::Status Ingest(LakeItem item);

  /// Embedding granularity for table ingestion (Sec. III-B.2: "an embedding
  /// can represent a table or specific rows of the table ... varied
  /// granularities can influence query performance differently").
  enum class TableGranularity {
    kRow,    // one item per row: precise retrieval of specific facts
    kTable,  // one item per table: compact, good for whole-table queries
  };

  /// Serializes `table` into kTable items at the chosen granularity;
  /// `entity_type` becomes an attribute on every produced item.
  common::Status IngestTable(const data::Table& table,
                             const std::string& entity_type,
                             TableGranularity granularity = TableGranularity::kRow);

  struct Hit {
    uint64_t id = 0;
    float score = 0.0f;
    Modality modality = Modality::kText;
    std::string title;
    std::string snippet;
  };

  /// Semantic top-k over every modality.
  std::vector<Hit> Query(const std::string& nl_query, size_t k);

  /// Semantic top-k restricted by modality and/or attribute equality
  /// (adaptive pre/post filter ordering underneath).
  std::vector<Hit> QueryFiltered(
      const std::string& nl_query, size_t k,
      std::optional<Modality> modality,
      const std::map<std::string, data::Value>& attribute_equals);

  size_t Size() const { return store_.Size(); }
  const LakeItem* Get(uint64_t id) const;

 private:
  Hit MakeHit(const vectordb::SearchResult& r) const;

  embed::HashingEmbedder embedder_;
  vectordb::VectorStore store_;
  std::map<uint64_t, LakeItem> items_;
  uint64_t next_id_ = 1;
};

}  // namespace llmdm::exploration

#endif  // LLMDM_CORE_EXPLORATION_DATALAKE_H_
