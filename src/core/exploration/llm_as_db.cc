#include "core/exploration/llm_as_db.h"

#include <set>

#include "common/string_util.h"
#include "data/qa_workload.h"
#include "sql/parser.h"

namespace llmdm::exploration {
namespace {

// Collects literal bindings of `column` from equality and IN-list predicates
// anywhere in the expression tree (conservative over-approximation: any
// literal the column is compared with becomes a candidate fact to extract).
void CollectBindings(const sql::Expr& e, const std::string& column,
                     std::vector<std::string>* out) {
  if (e.kind == sql::ExprKind::kBinary && e.op == "=") {
    const sql::Expr* col = nullptr;
    const sql::Expr* lit = nullptr;
    if (e.args[0]->kind == sql::ExprKind::kColumnRef &&
        e.args[1]->kind == sql::ExprKind::kLiteral) {
      col = e.args[0].get();
      lit = e.args[1].get();
    } else if (e.args[1]->kind == sql::ExprKind::kColumnRef &&
               e.args[0]->kind == sql::ExprKind::kLiteral) {
      col = e.args[1].get();
      lit = e.args[0].get();
    }
    if (col != nullptr && common::ToLower(col->name) == column &&
        lit->literal.is_text()) {
      out->push_back(lit->literal.AsText());
    }
  }
  if (e.kind == sql::ExprKind::kInList &&
      e.args[0]->kind == sql::ExprKind::kColumnRef &&
      common::ToLower(e.args[0]->name) == column) {
    for (size_t i = 1; i < e.args.size(); ++i) {
      if (e.args[i]->kind == sql::ExprKind::kLiteral &&
          e.args[i]->literal.is_text()) {
        out->push_back(e.args[i]->literal.AsText());
      }
    }
  }
  for (const auto& a : e.args) CollectBindings(*a, column, out);
  if (e.subquery != nullptr && e.subquery->where != nullptr) {
    CollectBindings(*e.subquery->where, column, out);
  }
}

// Number of kb_facts base references in the FROM tree (self-joins count
// once per alias: each is one extraction hop).
size_t CountKbFactsRefs(const sql::TableRef& ref) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kBase:
      return common::ToLower(ref.table_name) == "kb_facts" ? 1 : 0;
    case sql::TableRef::Kind::kSubquery: {
      size_t n = 0;
      if (ref.subquery != nullptr) {
        for (const auto& f : ref.subquery->from) n += CountKbFactsRefs(*f);
      }
      return n;
    }
    case sql::TableRef::Kind::kJoin:
      return CountKbFactsRefs(*ref.left) + CountKbFactsRefs(*ref.right);
  }
  return 0;
}

}  // namespace

common::Result<std::vector<std::string>>
LlmBackedDatabase::ExtractBoundSubjects(const std::string& sql) const {
  LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> parsed,
                         sql::ParseSelect(sql));
  std::vector<std::string> subjects;
  if (parsed->where != nullptr) {
    CollectBindings(*parsed->where, "subject", &subjects);
  }
  if (subjects.empty()) {
    return common::Status::FailedPrecondition(
        "query does not bind kb_facts.subject; refusing an unbounded scan "
        "of the language model");
  }
  return subjects;
}

std::vector<std::string> LlmBackedDatabase::ExtractBoundRelations(
    const std::string& sql) const {
  auto parsed = sql::ParseSelect(sql);
  std::vector<std::string> relations;
  if (parsed.ok() && (*parsed)->where != nullptr) {
    CollectBindings(*(*parsed)->where, "relation", &relations);
  }
  if (relations.empty()) return known_relations_;
  return relations;
}

common::Result<data::Table> LlmBackedDatabase::Query(
    const std::string& sql, sql::Database& scratch, llm::UsageMeter* meter,
    QueryStats* stats) {
  QueryStats local;
  LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> parsed,
                         sql::ParseSelect(sql));
  size_t kb_refs = 0;
  for (const auto& f : parsed->from) kb_refs += CountKbFactsRefs(*f);
  if (kb_refs > 0) {
    LLMDM_ASSIGN_OR_RETURN(std::vector<std::string> subjects,
                           ExtractBoundSubjects(sql));
    std::vector<std::string> relations = ExtractBoundRelations(sql);

    // (Re)materialize the scratch virtual table with exactly the facts the
    // query can touch — one LLM sub-question per (relation, subject), one
    // extraction round per kb_facts reference (self-joins chain hops).
    if (scratch.catalog().HasTable("kb_facts")) {
      LLMDM_RETURN_IF_ERROR(scratch.Execute("DROP TABLE kb_facts").status());
    }
    LLMDM_RETURN_IF_ERROR(
        scratch
            .Execute("CREATE TABLE kb_facts (subject TEXT, relation TEXT, "
                     "object TEXT)")
            .status());
    std::set<std::string> asked;  // (subject|relation) pairs already queried
    local.extraction_rounds = kb_refs;
    for (size_t round = 0; round < kb_refs; ++round) {
      std::vector<std::string> next_subjects;
      for (const std::string& subject : subjects) {
        for (const std::string& relation : relations) {
          if (!asked.insert(subject + "\x1f" + relation).second) continue;
          llm::Prompt p;
          p.task_tag = "qa";
          p.input = data::RenderChainQuestion({relation}, subject);
          LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                                 model_->CompleteMetered(p, meter));
          ++local.llm_calls;
          if (c.text.empty() || common::StartsWith(c.text, "I cannot")) {
            continue;
          }
          std::string quoted_object = common::ReplaceAll(c.text, "'", "''");
          std::string quoted_subject = common::ReplaceAll(subject, "'", "''");
          LLMDM_RETURN_IF_ERROR(
              scratch
                  .Execute(common::StrFormat(
                      "INSERT INTO kb_facts VALUES ('%s', '%s', '%s')",
                      quoted_subject.c_str(), relation.c_str(),
                      quoted_object.c_str()))
                  .status());
          ++local.facts_extracted;
          next_subjects.push_back(c.text);
        }
      }
      subjects = std::move(next_subjects);
    }
  }
  if (stats != nullptr) *stats = local;
  return scratch.Query(sql);
}

}  // namespace llmdm::exploration
