#include "core/exploration/datalake.h"

namespace llmdm::exploration {

std::string_view ModalityName(Modality modality) {
  switch (modality) {
    case Modality::kText:
      return "text";
    case Modality::kTable:
      return "table";
    case Modality::kImage:
      return "image";
    case Modality::kLog:
      return "log";
  }
  return "?";
}

MultiModalDataLake::MultiModalDataLake()
    : store_(std::make_unique<vectordb::HnswIndex>()) {}

common::Status MultiModalDataLake::Ingest(LakeItem item) {
  if (item.id == 0) item.id = next_id_++;
  next_id_ = std::max(next_id_, item.id + 1);

  vectordb::StoredItem stored;
  stored.id = item.id;
  // Unified space: title and content share one embedding; the modality tag
  // is metadata, not a separate space.
  stored.vector = embedder_.Embed(item.title + " " + item.content);
  stored.payload = item.content;
  stored.attributes = item.attributes;
  stored.attributes["modality"] =
      data::Value::Text(std::string(ModalityName(item.modality)));
  LLMDM_RETURN_IF_ERROR(store_.Insert(std::move(stored)));
  items_[item.id] = std::move(item);
  return common::Status::Ok();
}

common::Status MultiModalDataLake::IngestTable(const data::Table& table,
                                               const std::string& entity_type,
                                               TableGranularity granularity) {
  auto base_item = [&]() {
    LakeItem item;
    item.modality = Modality::kTable;
    item.title = table.name();
    item.attributes["entity_type"] = data::Value::Text(entity_type);
    item.attributes["source_table"] = data::Value::Text(table.name());
    return item;
  };
  if (granularity == TableGranularity::kTable) {
    // One embedding for the whole table: schema plus a row sample. Compact
    // (one vector regardless of size) but any one row's details are diluted.
    LakeItem item = base_item();
    item.content = table.name() + " (" + table.schema().ToString() + "). ";
    for (size_t r = 0; r < std::min<size_t>(table.NumRows(), 16); ++r) {
      item.content += table.SerializeRowAsText(r) + ". ";
    }
    return Ingest(std::move(item));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    LakeItem item = base_item();
    item.content = table.SerializeRowAsText(r);
    LLMDM_RETURN_IF_ERROR(Ingest(std::move(item)));
  }
  return common::Status::Ok();
}

MultiModalDataLake::Hit MultiModalDataLake::MakeHit(
    const vectordb::SearchResult& r) const {
  Hit hit;
  hit.id = r.id;
  hit.score = r.score;
  auto it = items_.find(r.id);
  if (it != items_.end()) {
    hit.modality = it->second.modality;
    hit.title = it->second.title;
    hit.snippet = it->second.content.substr(0, 120);
  }
  return hit;
}

std::vector<MultiModalDataLake::Hit> MultiModalDataLake::Query(
    const std::string& nl_query, size_t k) {
  std::vector<Hit> out;
  for (const auto& r : store_.Search(embedder_.Embed(nl_query), k)) {
    out.push_back(MakeHit(r));
  }
  return out;
}

std::vector<MultiModalDataLake::Hit> MultiModalDataLake::QueryFiltered(
    const std::string& nl_query, size_t k, std::optional<Modality> modality,
    const std::map<std::string, data::Value>& attribute_equals) {
  auto predicate =
      [&](const std::map<std::string, data::Value>& attrs) -> bool {
    if (modality.has_value()) {
      auto it = attrs.find("modality");
      if (it == attrs.end() ||
          it->second.ToString() != ModalityName(*modality)) {
        return false;
      }
    }
    for (const auto& [key, want] : attribute_equals) {
      auto it = attrs.find(key);
      if (it == attrs.end() || !(it->second == want)) return false;
    }
    return true;
  };
  std::vector<Hit> out;
  for (const auto& r : store_.HybridSearch(
           embedder_.Embed(nl_query), k, predicate,
           vectordb::VectorStore::FilterStrategy::kAdaptive)) {
    out.push_back(MakeHit(r));
  }
  return out;
}

const LakeItem* MultiModalDataLake::Get(uint64_t id) const {
  auto it = items_.find(id);
  return it == items_.end() ? nullptr : &it->second;
}

}  // namespace llmdm::exploration
