#ifndef LLMDM_CORE_EXPLORATION_LLM_AS_DB_H_
#define LLMDM_CORE_EXPLORATION_LLM_AS_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::exploration {

/// "Querying LLMs as databases" (Sec. II-D.2, after Saeed et al. [60]):
/// SQL queries run against *virtual tables* whose rows live inside an LLM.
/// The planner decomposes the query, pushes equality/IN constraints down to
/// decide which facts to extract, asks the LLM one sub-question per needed
/// fact, materializes the answers into a scratch relational table, and runs
/// the original SQL on it.
///
/// The shipped virtual table is `kb_facts(subject TEXT, relation TEXT,
/// object TEXT)` backed by the QA skill's knowledge base. The planner
/// requires the query to bind `subject` (=` or IN) — an unbounded scan of a
/// language model is exactly the thing this architecture exists to avoid —
/// while `relation` defaults to all known relations when unbound.
///
/// Multi-hop: when the query self-joins kb_facts (e.g. f1 JOIN f2 ON
/// f1.object = f2.subject — "the manager of the advisor of X"), the planner
/// runs one extraction round per kb_facts reference: round k's subjects are
/// the objects discovered in round k-1.
class LlmBackedDatabase {
 public:
  LlmBackedDatabase(std::shared_ptr<llm::LlmModel> model,
                    std::vector<std::string> known_relations)
      : model_(std::move(model)),
        known_relations_(std::move(known_relations)) {}

  struct QueryStats {
    size_t facts_extracted = 0;
    size_t llm_calls = 0;
    size_t extraction_rounds = 1;
  };

  /// Executes `sql` (which may reference kb_facts). Non-virtual tables may
  /// be pre-loaded into `scratch` by the caller and joined freely.
  common::Result<data::Table> Query(const std::string& sql,
                                    sql::Database& scratch,
                                    llm::UsageMeter* meter = nullptr,
                                    QueryStats* stats = nullptr);

 private:
  common::Result<std::vector<std::string>> ExtractBoundSubjects(
      const std::string& sql) const;
  std::vector<std::string> ExtractBoundRelations(const std::string& sql) const;

  std::shared_ptr<llm::LlmModel> model_;
  std::vector<std::string> known_relations_;
};

}  // namespace llmdm::exploration

#endif  // LLMDM_CORE_EXPLORATION_LLM_AS_DB_H_
