#ifndef LLMDM_CORE_OPTIMIZE_CASCADE_H_
#define LLMDM_CORE_OPTIMIZE_CASCADE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/model.h"
#include "obs/metrics.h"

namespace llmdm::optimize {

/// Decision record for one rung of the cascade.
struct CascadeStep {
  std::string model;
  std::string answer;        // majority answer at this rung
  double agreement = 0.0;    // self-consistency agreement in [0,1]
  double confidence = 0.0;   // blended decision score
  bool accepted = false;
  /// The rung's endpoint failed on every sample; the cascade skipped it and
  /// moved on (`error` holds the last status). A partially-failed rung is
  /// not marked failed: the surviving samples still vote.
  bool failed = false;
  std::string error;
  size_t samples_failed = 0;
};

/// Final outcome of a cascaded query.
struct CascadeResult {
  std::string answer;
  std::string model;  // the rung that was accepted
  common::Money cost; // across all rungs and samples
  size_t total_calls = 0;
  std::vector<CascadeStep> trace;
  size_t rungs_failed = 0;
  /// No rung cleared the acceptance bar (the top rung was down), so the
  /// best-scoring surviving answer was returned instead of an error.
  bool degraded = false;
  /// The prompt's request-wide deadline ran out mid-cascade, so escalation
  /// stopped early (the best answer so far was returned, degraded).
  bool deadline_stopped = false;
};

/// The LLM cascade of Fig. 6 / Table I: a query visits models from cheap to
/// expensive; a decision model accepts a rung's answer or escalates.
///
/// The decision model is self-consistency based: each rung draws
/// `consistency_samples` independent completions (distinct sample salts) and
/// blends the majority-agreement rate with the model's reported confidence;
/// the answer is accepted when the blend clears `accept_threshold`. The last
/// rung always accepts (there is nothing bigger to escalate to).
class LlmCascade {
 public:
  struct Options {
    double accept_threshold = 0.7;
    size_t consistency_samples = 3;
    /// Blend weight of agreement vs reported confidence in the decision
    /// score: score = w*agreement + (1-w)*mean_confidence.
    double agreement_weight = 0.7;
    /// Metrics registry for the cascade's per-rung instruments (labelled
    /// rung=<index>, model=<name>). Null gives this instance a private
    /// registry.
    obs::Registry* registry = nullptr;
  };

  /// `ladder` must be ordered from cheapest/smallest to priciest/largest.
  LlmCascade(std::vector<std::shared_ptr<llm::LlmModel>> ladder,
             const Options& options)
      : ladder_(std::move(ladder)), options_(options) {
    if (options_.registry != nullptr) {
      registry_ = options_.registry;
    } else {
      owned_registry_ = std::make_unique<obs::Registry>();
      registry_ = owned_registry_.get();
    }
    metrics_.queries = registry_->GetCounter("llmdm_cascade_queries_total");
    metrics_.degraded = registry_->GetCounter("llmdm_cascade_degraded_total");
    metrics_.deadline_stops =
        registry_->GetCounter("llmdm_cascade_deadline_stops_total");
    metrics_.rungs.reserve(ladder_.size());
    for (size_t i = 0; i < ladder_.size(); ++i) {
      const obs::Labels labels{{"rung", std::to_string(i)},
                               {"model", ladder_[i]->name()}};
      RungMetrics rung;
      rung.visits =
          registry_->GetCounter("llmdm_cascade_rung_visits_total", labels);
      rung.accepts =
          registry_->GetCounter("llmdm_cascade_rung_accepts_total", labels);
      rung.failures =
          registry_->GetCounter("llmdm_cascade_rung_failures_total", labels);
      rung.calls =
          registry_->GetCounter("llmdm_cascade_rung_calls_total", labels);
      metrics_.rungs.push_back(rung);
    }
  }

  /// Runs the cascade on one prompt. Usage (including the rejected rungs'
  /// spend — escalation is not free) is recorded into `meter` if non-null.
  /// A rung whose endpoint fails is skipped (recorded in the trace), not
  /// fatal; Run only errors when every rung fails to produce any answer.
  /// If the prompt carries an llm::Deadline, the cascade stops escalating
  /// once the budget is exhausted: the best sub-threshold answer seen so far
  /// is returned (degraded, deadline_stopped), or Timeout if there is none.
  common::Result<CascadeResult> Run(const llm::Prompt& prompt,
                                    llm::UsageMeter* meter = nullptr) const;

  const Options& options() const { return options_; }
  void set_accept_threshold(double t) { options_.accept_threshold = t; }
  /// The registry holding the cascade's instruments.
  obs::Registry* registry() const { return registry_; }

 private:
  struct RungMetrics {
    obs::Counter* visits = nullptr;    // rung attempted
    obs::Counter* accepts = nullptr;   // rung's answer accepted
    obs::Counter* failures = nullptr;  // every sample failed, rung skipped
    obs::Counter* calls = nullptr;     // successful samples
  };
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* deadline_stops = nullptr;
    std::vector<RungMetrics> rungs;  // parallel to ladder_
  };

  std::vector<std::shared_ptr<llm::LlmModel>> ladder_;
  Options options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;
};

/// Picks the acceptance threshold that maximizes `accuracy - cost_weight *
/// normalized_cost` over a labelled calibration set of (decision_score,
/// was_correct, escalation_cost_ratio) samples. This is the "decision model
/// can be trained" knob of Sec. III-B.1, reduced to its essential form:
/// choosing the operating point on the accept/escalate curve.
struct CalibrationSample {
  double score = 0.0;
  bool correct = false;
};

double CalibrateAcceptThreshold(const std::vector<CalibrationSample>& samples,
                                double escalation_accuracy,
                                double escalation_cost_ratio);

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_CASCADE_H_
