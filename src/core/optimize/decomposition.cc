#include "core/optimize/decomposition.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace llmdm::optimize {

common::Result<DecomposedQuery> DecomposeQuestion(const std::string& question) {
  LLMDM_ASSIGN_OR_RETURN(data::Nl2SqlQuery parsed,
                         data::ParseNl2SqlQuestion(question));
  DecomposedQuery out;
  out.sub_questions.push_back(parsed.first.ToSubQuestion());
  if (parsed.second.has_value()) {
    out.sub_questions.push_back(parsed.second->ToSubQuestion());
    out.combiner = parsed.combiner;
  }
  return out;
}

std::string RecombineSql(const std::vector<std::string>& sub_sql,
                         data::Combiner combiner) {
  if (sub_sql.empty()) return "";
  if (sub_sql.size() == 1) return sub_sql[0];
  std::string op;
  switch (combiner) {
    case data::Combiner::kOr:
      op = " UNION ";
      break;
    case data::Combiner::kAnd:
      op = " INTERSECT ";
      break;
    case data::Combiner::kAndNot:
      op = " EXCEPT ";
      break;
    case data::Combiner::kNone:
      op = " UNION ";
      break;
  }
  std::string out = sub_sql[0];
  for (size_t i = 1; i < sub_sql.size(); ++i) out += op + sub_sql[i];
  return out;
}

llm::Prompt QueryBatchOptimizer::MakeUnitPrompt(const std::string& unit) const {
  llm::Prompt p;
  p.task_tag = "nl2sql";
  p.instructions = options_.instructions;
  p.examples = options_.examples;
  p.input = unit;
  return p;
}

BatchPlan QueryBatchOptimizer::Plan(
    const std::vector<std::string>& questions) const {
  BatchPlan plan;

  // First pass: decompose everything to learn sub-question frequencies.
  std::vector<DecomposedQuery> decomposed(questions.size());
  std::map<std::string, size_t> sub_uses;
  for (size_t i = 0; i < questions.size(); ++i) {
    auto d = DecomposeQuestion(questions[i]);
    if (d.ok()) {
      decomposed[i] = std::move(*d);
      for (const std::string& s : decomposed[i].sub_questions) ++sub_uses[s];
    }
  }

  // Second pass: per query, decompose iff the amortized sub-prompt cost
  // beats the direct prompt cost. Shared sub-questions split their token
  // bill across every query that uses them.
  std::map<std::string, size_t> unit_index;
  auto add_unit = [&](const std::string& unit) {
    if (unit_index.emplace(unit, plan.unique_units.size()).second) {
      plan.unique_units.push_back(unit);
    }
  };
  size_t prompt_overhead = llm::Prompt{}.CountInputTokens() +
                           text::CountTokens(options_.instructions);
  for (const llm::FewShotExample& ex : options_.examples) {
    prompt_overhead += text::CountTokens(ex.input) +
                       text::CountTokens(ex.output);
  }

  for (size_t i = 0; i < questions.size(); ++i) {
    BatchPlan::Item item;
    item.query_index = i;
    const DecomposedQuery& d = decomposed[i];
    bool use_decomposition = false;
    if (options_.enable_decomposition && d.sub_questions.size() > 1) {
      double direct_cost = static_cast<double>(
          text::CountTokens(questions[i]) + prompt_overhead);
      double amortized = 0.0;
      for (const std::string& s : d.sub_questions) {
        double unit_cost =
            static_cast<double>(text::CountTokens(s) + prompt_overhead);
        amortized += unit_cost / static_cast<double>(sub_uses.at(s));
      }
      use_decomposition = amortized < direct_cost;
    }
    if (use_decomposition) {
      item.decomposed = true;
      item.units = d.sub_questions;
      item.combiner = d.combiner;
    } else {
      item.units = {questions[i]};
    }
    for (const std::string& u : item.units) add_unit(u);
    plan.items.push_back(std::move(item));
  }
  for (const std::string& u : plan.unique_units) {
    plan.estimated_tokens += text::CountTokens(u) + prompt_overhead;
  }
  return plan;
}

common::Result<BatchExecution> QueryBatchOptimizer::Execute(
    const BatchPlan& plan, llm::LlmModel& model,
    llm::UsageMeter* meter) const {
  BatchExecution exec;

  // Translate each unique unit. Completions are obtained per unit (the
  // simulator needs one input per call); billing depends on combination.
  std::map<std::string, std::string> unit_sql;
  std::vector<llm::Completion> completions;
  for (const std::string& unit : plan.unique_units) {
    llm::Prompt p = MakeUnitPrompt(unit);
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model.Complete(p));
    unit_sql[unit] = c.text;
    completions.push_back(std::move(c));
  }

  const llm::ModelSpec& spec = model.spec();
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };

  if (options_.enable_combination && !plan.unique_units.empty()) {
    // All units share instructions+examples, so one combined prompt carries
    // the shared prefix once and then every unit input.
    llm::Prompt combined = MakeUnitPrompt("");
    combined.input.clear();
    for (const std::string& unit : plan.unique_units) {
      combined.input += unit + "\n";
    }
    size_t input_tokens = combined.CountInputTokens();
    size_t output_tokens = 0;
    for (const llm::Completion& c : completions) {
      output_tokens += c.output_tokens;
    }
    common::Money cost = price(spec.input_price_per_1k, input_tokens) +
                         price(spec.output_price_per_1k, output_tokens);
    double latency = spec.latency_ms_per_1k_tokens *
                     static_cast<double>(input_tokens + output_tokens) / 1000.0;
    if (meter != nullptr) {
      meter->Record(spec.name, input_tokens, output_tokens, cost, latency);
    }
    exec.cost = cost;
    exec.llm_calls = 1;
  } else {
    for (const llm::Completion& c : completions) {
      if (meter != nullptr) {
        meter->Record(c.model, c.input_tokens, c.output_tokens, c.cost,
                      c.latency_ms);
      }
      exec.cost += c.cost;
    }
    exec.llm_calls = completions.size();
  }

  // Client-side recombination.
  exec.sql.resize(plan.items.size());
  for (const BatchPlan::Item& item : plan.items) {
    std::vector<std::string> parts;
    for (const std::string& unit : item.units) {
      parts.push_back(unit_sql.at(unit));
    }
    exec.sql[item.query_index] =
        item.decomposed ? RecombineSql(parts, item.combiner) : parts[0];
  }
  return exec;
}

common::Result<BatchExecution> QueryBatchOptimizer::ExecuteBatched(
    const BatchPlan& plan, llm::LlmModel& model,
    llm::UsageMeter* meter) const {
  BatchExecution exec;

  std::vector<llm::Prompt> prompts;
  prompts.reserve(plan.unique_units.size());
  for (const std::string& unit : plan.unique_units) {
    prompts.push_back(MakeUnitPrompt(unit));
  }
  std::vector<common::Result<llm::Completion>> results =
      model.CompleteBatch(prompts);

  const llm::ModelSpec& spec = model.spec();
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };

  std::map<std::string, std::string> unit_sql;
  if (meter != nullptr && !plan.unique_units.empty()) {
    meter->RecordBatchClose(spec.name, plan.unique_units.size());
  }
  for (size_t i = 0; i < plan.unique_units.size(); ++i) {
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c, std::move(results[i]));
    unit_sql[plan.unique_units[i]] = c.text;
    if (meter != nullptr) {
      meter->Record(c.model, c.input_tokens, c.output_tokens, c.cost,
                    c.latency_ms);
    }
    if (c.prefix_cached_tokens > 0) {
      // Exact savings: what the cached-tier tokens would have cost at list
      // price, recovered from the discounted bill.
      common::Money saved = price(spec.input_price_per_1k, c.input_tokens) +
                            price(spec.output_price_per_1k, c.output_tokens) -
                            c.cost;
      exec.prefix_cached_tokens += c.prefix_cached_tokens;
      exec.prefix_saved += saved;
      if (meter != nullptr) {
        meter->RecordPrefixReuse(c.model, c.prefix_cached_tokens, saved);
      }
    }
    exec.cost += c.cost;
  }
  exec.llm_calls = plan.unique_units.size();

  exec.sql.resize(plan.items.size());
  for (const BatchPlan::Item& item : plan.items) {
    std::vector<std::string> parts;
    for (const std::string& unit : item.units) {
      parts.push_back(unit_sql.at(unit));
    }
    exec.sql[item.query_index] =
        item.decomposed ? RecombineSql(parts, item.combiner) : parts[0];
  }
  return exec;
}

}  // namespace llmdm::optimize
