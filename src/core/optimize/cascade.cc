#include "core/optimize/cascade.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "llm/deadline.h"
#include "llm/prompt.h"
#include "obs/trace.h"

namespace llmdm::optimize {

common::Result<CascadeResult> LlmCascade::Run(const llm::Prompt& prompt,
                                              llm::UsageMeter* meter) const {
  if (ladder_.empty()) {
    return common::Status::FailedPrecondition("cascade has no models");
  }
  metrics_.queries->Add(1);
  // Rung spans are anchored at the enclosing span's start and advanced by
  // the samples' simulated latencies, mirroring how ResilientLlm keeps its
  // local span clock.
  obs::TraceContext* trace = prompt.trace.get();
  double span_base = 0.0;
  double elapsed_ms = 0.0;
  if (trace != nullptr) span_base = trace->SpanStart(prompt.trace_parent);
  CascadeResult result;
  // Best sub-threshold answer seen so far, kept for graceful degradation
  // when the rungs that would normally accept are down.
  double best_fallback_score = -1.0;
  std::string best_fallback_answer, best_fallback_model;
  common::Status last_error =
      common::Status::Unavailable("cascade made no calls");
  for (size_t rung = 0; rung < ladder_.size(); ++rung) {
    if (rung > 0 && prompt.deadline != nullptr && prompt.deadline->Exhausted()) {
      // The request-wide budget ran out mid-ladder. Escalating further would
      // only make the answer later; settle for the best candidate so far.
      result.deadline_stopped = true;
      metrics_.deadline_stops->Add(1);
      last_error = common::Status::Timeout(
          "request deadline exhausted before cascade rung " +
          std::to_string(rung));
      break;
    }
    llm::LlmModel& model = *ladder_[rung];
    metrics_.rungs[rung].visits->Add(1);
    obs::Span* rung_span = nullptr;
    if (trace != nullptr) {
      rung_span = trace->StartSpan("cascade_rung:" + model.name(),
                                   span_base + elapsed_ms, prompt.trace_parent);
    }
    // Self-consistency: independent draws via distinct sample salts. The
    // final rung accepts unconditionally, so it takes a single sample —
    // paying 3x the most expensive model would erase the cascade's saving.
    const size_t samples =
        (rung + 1 == ladder_.size()) ? 1 : options_.consistency_samples;
    std::map<std::string, size_t> votes;
    double confidence_sum = 0.0;
    std::string first_completion;
    size_t samples_ok = 0;
    CascadeStep step;
    step.model = model.name();
    for (size_t s = 0; s < samples; ++s) {
      llm::Prompt sampled = prompt;
      sampled.sample_salt = prompt.sample_salt * 101 + s;
      sampled.trace_parent = rung_span;
      auto c = model.CompleteMetered(sampled, meter);
      if (!c.ok()) {
        // The spend of the samples that did succeed is already counted;
        // the surviving votes still participate below.
        ++step.samples_failed;
        last_error = c.status();
        step.error = c.status().ToString();
        continue;
      }
      result.cost += c->cost;
      ++result.total_calls;
      metrics_.rungs[rung].calls->Add(1);
      elapsed_ms += c->latency_ms;
      ++votes[c->text];
      confidence_sum += c->confidence;
      if (samples_ok == 0) first_completion = c->text;
      ++samples_ok;
    }
    if (samples_ok == 0) {
      // Every sample failed: skip the rung and escalate past it.
      step.failed = true;
      ++result.rungs_failed;
      metrics_.rungs[rung].failures->Add(1);
      if (rung_span != nullptr) {
        trace->SetAttr(rung_span, "result", "failed");
        trace->EndSpan(rung_span, span_base + elapsed_ms);
      }
      result.trace.push_back(std::move(step));
      continue;
    }
    // Majority answer (ties break toward the first sample: temperature-0
    // behaviour). Agreement is judged over the *requested* sample count, so
    // a rung that lost votes to failures needs the survivors to be
    // unanimous-and-then-some to clear the same bar.
    std::string majority = first_completion;
    size_t best = votes[first_completion];
    for (const auto& [answer, n] : votes) {
      if (n > best) {
        best = n;
        majority = answer;
      }
    }
    double agreement = static_cast<double>(best) /
                       static_cast<double>(samples);
    double mean_confidence =
        confidence_sum / static_cast<double>(samples_ok);
    double score = options_.agreement_weight * agreement +
                   (1.0 - options_.agreement_weight) * mean_confidence;

    step.answer = majority;
    step.agreement = agreement;
    step.confidence = score;
    step.accepted =
        (score >= options_.accept_threshold) || (rung + 1 == ladder_.size());
    if (rung_span != nullptr) {
      trace->SetAttr(rung_span, "result",
                     step.accepted ? "accepted" : "escalated");
      trace->SetAttr(rung_span, "score", common::StrFormat("%.3f", score));
      trace->EndSpan(rung_span, span_base + elapsed_ms);
    }
    result.trace.push_back(step);
    if (step.accepted) {
      result.answer = majority;
      result.model = model.name();
      metrics_.rungs[rung].accepts->Add(1);
      return result;
    }
    if (score > best_fallback_score) {
      best_fallback_score = score;
      best_fallback_answer = majority;
      best_fallback_model = model.name();
    }
  }
  if (best_fallback_score >= 0.0) {
    // No rung accepted (the unconditional-accept top rung must have
    // failed): answer anyway with the best rejected candidate.
    result.answer = best_fallback_answer;
    result.model = best_fallback_model;
    result.degraded = true;
    metrics_.degraded->Add(1);
    return result;
  }
  return last_error;
}

double CalibrateAcceptThreshold(const std::vector<CalibrationSample>& samples,
                                double escalation_accuracy,
                                double escalation_cost_ratio) {
  if (samples.empty()) return 0.7;
  // Candidate thresholds: every observed score (plus the extremes). For each
  // candidate, accepted answers keep their own correctness; rejected ones pay
  // the escalation cost and get the bigger model's accuracy.
  std::vector<double> candidates{0.0, 1.01};
  for (const CalibrationSample& s : samples) candidates.push_back(s.score);
  std::sort(candidates.begin(), candidates.end());

  double best_threshold = 0.7;
  double best_utility = -1e18;
  for (double t : candidates) {
    double accuracy = 0.0;
    double cost = 0.0;
    for (const CalibrationSample& s : samples) {
      if (s.score >= t) {
        accuracy += s.correct ? 1.0 : 0.0;
        cost += 1.0;
      } else {
        accuracy += escalation_accuracy;
        cost += 1.0 + escalation_cost_ratio;
      }
    }
    accuracy /= static_cast<double>(samples.size());
    cost /= static_cast<double>(samples.size()) * (1.0 + escalation_cost_ratio);
    // Utility trades accuracy against normalized cost; the 0.25 weight keeps
    // accuracy primary, matching how Table I reads the result.
    double utility = accuracy - 0.25 * cost;
    if (utility > best_utility) {
      best_utility = utility;
      best_threshold = t;
    }
  }
  return best_threshold;
}

}  // namespace llmdm::optimize
