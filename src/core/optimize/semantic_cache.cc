#include "core/optimize/semantic_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "common/string_util.h"
#include "durability/format.h"
#include "durability/store.h"
#include "obs/trace.h"
#include "text/tokenizer.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"

namespace llmdm::optimize {

namespace {
/// How many neighbours a reuse/stale probe fetches: wide enough to step
/// over dead ids an index may still return (e.g. HNSW mark-removal) without
/// missing a live above-threshold neighbour behind them.
constexpr size_t kLookupProbeWidth = 4;
}  // namespace

SemanticCache::SemanticCache(const Options& options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  InitShards();
}

void SemanticCache::InitShards() {
  shards_.clear();
  const size_t n = options_.num_shards;
  // Divide the global capacity across shards: base share everywhere, the
  // remainder spread over the first shards, so the shares always sum to
  // Options::capacity (and shard 0 of a 1-shard cache gets all of it).
  const size_t base = options_.capacity / n;
  const size_t extra = options_.capacity % n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        MakeIndex(), base + (i < extra ? 1 : 0), options_.doorkeeper_capacity));
    Shard& shard = *shards_.back();
    shard.shard_id = i;
    obs::Labels labels{{"shard", std::to_string(i)}};
    ShardMetrics& m = shard.metrics;
    m.lookups = registry_->GetCounter("llmdm_cache_lookups_total", labels);
    m.hits = registry_->GetCounter("llmdm_cache_hits_total", labels);
    m.insertions = registry_->GetCounter("llmdm_cache_insertions_total", labels);
    m.evictions = registry_->GetCounter("llmdm_cache_evictions_total", labels);
    m.admission_rejections =
        registry_->GetCounter("llmdm_cache_admission_rejections_total", labels);
    m.saved_micros =
        registry_->GetCounter("llmdm_cache_saved_micros_total", labels);
    m.compactions =
        registry_->GetCounter("llmdm_cache_compactions_total", labels);
    m.reclaimed_slots =
        registry_->GetCounter("llmdm_cache_reclaimed_slots_total", labels);
    m.live_entries = registry_->GetGauge("llmdm_cache_live_entries", labels);
    m.slots = registry_->GetGauge("llmdm_cache_slots", labels);
    // Counters are process history and survive a reset; the state gauges
    // must reflect the (now empty) cache.
    m.live_entries->Set(0);
    m.slots->Set(0);
  }
}

size_t SemanticCache::ShardIndexFor(std::string_view query) const {
  if (shards_.size() == 1) return 0;
  return common::Fnv1a(query) % shards_.size();
}

std::unique_ptr<vectordb::VectorIndex> SemanticCache::MakeIndex() const {
  vectordb::FlatIndex::Options flat;
  flat.quantize = options_.quantize;
  switch (options_.index) {
    case CacheIndexKind::kFlat:
      return std::make_unique<vectordb::FlatIndex>(flat);
    case CacheIndexKind::kHnsw: {
      vectordb::HnswIndex::Options hnsw;
      hnsw.quantize = options_.quantize;
      return std::make_unique<vectordb::HnswIndex>(hnsw);
    }
  }
  return std::make_unique<vectordb::FlatIndex>(flat);
}

std::vector<vectordb::SearchResult> SemanticCache::SearchShard(
    const Shard& shard, const embed::Vector& query, size_t k) const {
  if (options_.index == CacheIndexKind::kHnsw &&
      shard.live_count < options_.ann_min_size) {
    // Brute-force below the ANN threshold: exact, and cheaper than a graph
    // walk on a small collection. Same ordering contract as FlatIndex
    // (score desc, id asc).
    std::vector<vectordb::SearchResult> all;
    all.reserve(shard.live_count);
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (!shard.entries[i].live) continue;
      all.push_back(vectordb::SearchResult{
          i, embed::CosineSimilarity(query, shard.entries[i].embedding)});
    }
    size_t take = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + take, all.end(),
                      [](const vectordb::SearchResult& a,
                         const vectordb::SearchResult& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
    all.resize(take);
    return all;
  }
  return shard.index->Search(query, k);
}

double SemanticCache::EvictionScore(const Entry& entry) const {
  switch (options_.policy) {
    case EvictionPolicy::kLru:
      return static_cast<double>(entry.last_used_tick);
    case EvictionPolicy::kLfu:
      return static_cast<double>(entry.reuse_hits + entry.augment_hits);
    case EvictionPolicy::kCostAware: {
      // Hits are weighted by kind (reuse saves a whole call, augmentation
      // only sharpens one); recency breaks ties so dead entries rotate out.
      double value = options_.reuse_weight * double(entry.reuse_hits) +
                     options_.augment_weight * double(entry.augment_hits);
      return value + 1e-6 * static_cast<double>(entry.last_used_tick);
    }
  }
  return 0.0;
}

void SemanticCache::KillSlot(Shard& shard, size_t slot) {
  Entry& evicted = shard.entries[slot];
  evicted.live = false;
  // Release the payloads now — the slot itself lingers until compaction
  // (ids must stay stable between compactions), but the strings and the
  // embedding are the bytes that matter.
  std::string().swap(evicted.query);
  std::string().swap(evicted.response);
  embed::Vector().swap(evicted.embedding);
  shard.index->Remove(slot).ok();  // ignore status: id is known-present
  --shard.live_count;
  ++shard.dead_count;
  shard.metrics.evictions->Add(1);
  shard.metrics.live_entries->Set(static_cast<int64_t>(shard.live_count));
}

void SemanticCache::EvictIfNeeded(Shard& shard,
                                  const durability::MutationGuard& guard) {
  while (shard.live_count > shard.capacity) {
    double worst = 1e300;
    size_t victim = shard.entries.size();
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (!shard.entries[i].live) continue;
      double score = EvictionScore(shard.entries[i]);
      if (score < worst) {
        worst = score;
        victim = i;
      }
    }
    if (victim == shard.entries.size()) return;
    KillSlot(shard, victim);
    // The *outcome* is logged (which slot died), not the scoring that chose
    // it — eviction scores read non-durable heat, so replaying the decision
    // could pick a different victim.
    std::string rec;
    durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kEvict));
    durability::AppendU32(&rec, static_cast<uint32_t>(shard.shard_id));
    durability::AppendU64(&rec, victim);
    LogWal(guard, std::move(rec));
  }
  if (shard.dead_count > std::max(options_.compact_min_dead, shard.capacity)) {
    CompactShard(shard);
    std::string rec;
    durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kCompact));
    durability::AppendU32(&rec, static_cast<uint32_t>(shard.shard_id));
    LogWal(guard, std::move(rec));
  }
}

void SemanticCache::CompactShard(Shard& shard) {
  std::vector<Entry> survivors;
  survivors.reserve(shard.live_count);
  for (Entry& entry : shard.entries) {
    if (entry.live) survivors.push_back(std::move(entry));
  }
  shard.metrics.reclaimed_slots->Add(shard.dead_count);
  shard.entries = std::move(survivors);
  // Rebuild the index over the remapped ids. The compaction is stable, so
  // live entries keep their relative order: every id-based tie-break
  // (search ordering, eviction scans) behaves exactly as before. With an
  // HNSW index the rebuilt graph may differ from the tombstoned one — an
  // approximate index makes no byte-stability promise across maintenance.
  shard.index = MakeIndex();
  for (size_t i = 0; i < shard.entries.size(); ++i) {
    shard.index->Add(i, shard.entries[i].embedding).ok();
  }
  shard.dead_count = 0;
  ++shard.generation;
  shard.metrics.compactions->Add(1);
  shard.metrics.slots->Set(static_cast<int64_t>(shard.entries.size()));
}

std::optional<SemanticCache::Hit> SemanticCache::Lookup(
    const std::string& query, common::Money avoided_cost,
    common::Money output_price_per_1k) {
  // Embedding is the expensive half of a lookup; do it before taking any
  // lock so concurrent lookups only serialize on the (cheap) shard scan.
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  Shard& shard = *shards_[ShardIndexFor(query)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return ProbeShardLocked(shard, q, avoided_cost, output_price_per_1k);
}

std::vector<std::optional<SemanticCache::Hit>> SemanticCache::LookupBatch(
    const std::vector<std::string_view>& queries,
    const std::vector<common::Money>& avoided_costs,
    common::Money output_price_per_1k) {
  std::vector<std::optional<Hit>> out(queries.size());
  if (queries.empty()) return out;
  // Phase 1, lock-free: embed every query into one contiguous arena and
  // bucket the indices by shard (arrival order is preserved within a shard,
  // so per-shard tick sequences match the sequential-Lookup ones exactly).
  const size_t dim = embedder_.dimension();
  std::vector<float> arena(queries.size() * dim);
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    embedder_.EmbedInto(queries[i], arena.data() + i * dim);
    by_shard[ShardIndexFor(queries[i])].push_back(i);
  }
  // Phase 2: one lock per touched shard, probing its queries in order.
  embed::Vector q;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i : by_shard[s]) {
      const float* row = arena.data() + i * dim;
      q.assign(row, row + dim);
      common::Money avoided = avoided_costs.empty() ? common::Money::Zero()
                                                    : avoided_costs[i];
      out[i] = ProbeShardLocked(shard, q, avoided, output_price_per_1k);
    }
  }
  return out;
}

std::optional<SemanticCache::Hit> SemanticCache::ProbeShardLocked(
    Shard& shard, const embed::Vector& q, common::Money avoided_cost,
    common::Money output_price_per_1k) {
  shard.metrics.lookups->Add(1);
  ++shard.tick;
  if (shard.live_count == 0) return std::nullopt;
  // Probe a few neighbours and take the best *live* one: an index that only
  // mark-removes (HNSW) can still surface a dead id at rank 0, and a miss
  // there must not shadow the live neighbour right behind it.
  const std::vector<vectordb::SearchResult> results =
      SearchShard(shard, q, kLookupProbeWidth);
  const vectordb::SearchResult* best = nullptr;
  for (const auto& r : results) {
    if (r.id < shard.entries.size() && shard.entries[r.id].live) {
      best = &r;
      break;
    }
  }
  if (best == nullptr || best->score < options_.similarity_threshold) {
    return std::nullopt;
  }
  Entry& entry = shard.entries[best->id];
  entry.last_used_tick = shard.tick;
  ++entry.reuse_hits;
  // Credit both halves of the avoided bill: the caller's input-side
  // estimate, plus the output tokens the cached response replaces.
  common::Money saved =
      avoided_cost +
      common::Money::FromMicros(output_price_per_1k.micros() *
                                static_cast<int64_t>(entry.response_tokens) /
                                1000);
  shard.metrics.hits->Add(1);
  shard.metrics.saved_micros->Add(static_cast<uint64_t>(saved.micros()));
  return Hit{entry.query, entry.response, best->score, saved};
}

std::optional<SemanticCache::Hit> SemanticCache::LookupStale(
    const std::string& query, double relaxed_threshold) const {
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  // Stale candidates may live in any shard (similar text hashes anywhere),
  // so take the best top-1 across all of them. Ties keep the earliest shard,
  // which with one shard reproduces the pre-sharding result exactly.
  std::optional<Hit> best;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.live_count == 0) continue;
    for (const auto& r : SearchShard(shard, q, kLookupProbeWidth)) {
      if (r.id >= shard.entries.size() || !shard.entries[r.id].live) continue;
      const Entry& entry = shard.entries[r.id];
      if (r.score < relaxed_threshold) break;  // results are best-first
      if (!best.has_value() || r.score > best->similarity) {
        best = Hit{entry.query, entry.response, r.score,
                   common::Money::Zero()};
      }
      break;  // the first live neighbour is this shard's best
    }
  }
  return best;
}

std::vector<SemanticCache::Hit> SemanticCache::TopKForAugmentation(
    const std::string& query, size_t k) {
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  // Phase 1: per-shard top-k candidates. Each shard's list arrives best
  // first; the global merge below is a stable sort on score, so candidates
  // keep their (shard, rank) order on ties — with one shard this is exactly
  // the pre-sharding iteration order.
  struct Candidate {
    float score;
    size_t shard;
    uint64_t id;
    uint64_t generation;  // shard generation the id was read under
  };
  std::vector<Candidate> candidates;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.tick;
    if (shard.live_count == 0) continue;
    for (const auto& r : SearchShard(shard, q, k)) {
      candidates.push_back(Candidate{r.score, s, r.id, shard.generation});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  // Phase 2: re-lock each winner's shard to bump its usage. An entry evicted
  // between the phases is simply skipped, and a shard compacted between the
  // phases remapped its ids — the generation check drops those candidates
  // rather than crediting (or reading past) the wrong entry.
  std::vector<Hit> out;
  for (const Candidate& c : candidates) {
    if (out.size() == k) break;
    Shard& shard = *shards_[c.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.generation != c.generation || c.id >= shard.entries.size()) {
      continue;
    }
    Entry& entry = shard.entries[c.id];
    if (!entry.live) continue;
    entry.last_used_tick = shard.tick;
    ++entry.augment_hits;
    out.push_back(Hit{entry.query, entry.response, c.score,
                      common::Money::Zero()});
  }
  return out;
}

void SemanticCache::Insert(const std::string& query,
                           const std::string& response,
                           common::Money cost_to_produce) {
  // Embed before locking (see Lookup). Predictive admission may then throw
  // the embedding away on a first sighting — accepted: rejections are rare
  // per recurring query, and keeping one critical section preserves the
  // pre-sharding semantics under every interleaving.
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  // Commit gate before the shard lock (ordering: gate -> shard.mu -> WAL
  // file mutex): the mutation and its WAL record must land on the same side
  // of any concurrent Checkpoint, or replay would re-apply an operation the
  // snapshot already contains.
  durability::MutationGuard guard = durable_ != nullptr
                                        ? durable_->BeginMutation()
                                        : durability::MutationGuard();
  Shard& shard = *shards_[ShardIndexFor(query)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.tick;
  if (options_.predictive_admission) {
    if (!shard.doorkeeper.SeenAndNote(common::Fnv1a(query))) {
      // First sighting: predicted unlikely to recur; do not admit. Nothing
      // durable changed, so nothing is logged.
      shard.metrics.admission_rejections->Add(1);
      return;
    }
  }
  shard.metrics.insertions->Add(1);
  // Refresh an existing (near-)identical key instead of duplicating it.
  auto nearest = SearchShard(shard, q, 1);
  if (!nearest.empty() && nearest[0].score > 0.999) {
    Entry& entry = shard.entries[nearest[0].id];
    if (entry.live) {
      entry.response = response;
      entry.response_tokens = text::CountTokens(response);
      entry.cost_to_produce = cost_to_produce;
      entry.last_used_tick = shard.tick;
      std::string rec;
      durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kRefresh));
      durability::AppendU32(&rec, static_cast<uint32_t>(shard.shard_id));
      durability::AppendU64(&rec, nearest[0].id);
      durability::AppendString(&rec, response);
      durability::AppendI64(&rec, cost_to_produce.micros());
      LogWal(guard, std::move(rec));
      return;
    }
  }
  Entry entry;
  entry.query = query;
  entry.response = response;
  entry.embedding = std::move(q);
  entry.response_tokens = text::CountTokens(response);
  entry.cost_to_produce = cost_to_produce;
  entry.last_used_tick = shard.tick;
  size_t id = shard.entries.size();
  shard.entries.push_back(std::move(entry));
  shard.index->Add(id, shard.entries.back().embedding).ok();
  ++shard.live_count;
  shard.metrics.live_entries->Set(static_cast<int64_t>(shard.live_count));
  shard.metrics.slots->Set(static_cast<int64_t>(shard.entries.size()));
  std::string rec;
  durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kInsert));
  durability::AppendU32(&rec, static_cast<uint32_t>(shard.shard_id));
  durability::AppendString(&rec, query);
  durability::AppendString(&rec, response);
  durability::AppendI64(&rec, cost_to_produce.micros());
  LogWal(guard, std::move(rec));
  EvictIfNeeded(shard, guard);
}

size_t SemanticCache::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->live_count;
  }
  return total;
}

SemanticCache::Stats SemanticCache::stats() const {
  // The legacy struct is a view over the per-shard instruments: the same
  // numbers a registry export reports, re-shaped for existing callers.
  Stats total;
  for (const auto& shard : shards_) {
    const ShardMetrics& m = shard->metrics;
    total.lookups += m.lookups->value();
    total.hits += m.hits->value();
    total.insertions += m.insertions->value();
    total.evictions += m.evictions->value();
    total.admission_rejections += m.admission_rejections->value();
    total.saved +=
        common::Money::FromMicros(static_cast<int64_t>(m.saved_micros->value()));
  }
  return total;
}

size_t SemanticCache::TotalSlots() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

size_t SemanticCache::RetainedBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->entries) {
      total += entry.query.capacity() + entry.response.capacity() +
               entry.embedding.capacity() * sizeof(float);
    }
  }
  return total;
}

size_t SemanticCache::doorkeeper_entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->doorkeeper.entries();
  }
  return total;
}

void SemanticCache::AttachDurability(durability::DurableStore* store) {
  durable_ = store;
}

void SemanticCache::LogWal(const durability::MutationGuard& guard,
                           std::string payload) {
  if (durable_ == nullptr) return;
  // A failed append is either the harness's injected crash (the process's
  // in-memory state is about to be discarded and re-derived from disk) or a
  // real I/O failure, which the next Sync/Checkpoint surfaces loudly.
  durable_->Append(guard, payload).ok();
}

void SemanticCache::ResetToEmpty() { InitShards(); }

common::Status SemanticCache::SaveSnapshot(std::string* out) const {
  // Full slot layout, dead slots included: WAL records written after this
  // snapshot address slots by id, so the image must preserve the id space
  // exactly (a checkpoint must not double as a compaction). Dead slots cost
  // one byte each and disappear at the next logged kCompact.
  durability::AppendU32(out, static_cast<uint32_t>(shards_.size()));
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    durability::AppendU64(out, shard.entries.size());
    for (const Entry& entry : shard.entries) {
      durability::AppendU8(out, entry.live ? 1 : 0);
      if (entry.live) {
        durability::AppendString(out, entry.query);
        durability::AppendString(out, entry.response);
        durability::AppendI64(out, entry.cost_to_produce.micros());
      }
    }
  }
  return common::Status::Ok();
}

common::Status SemanticCache::LoadSnapshot(durability::ByteReader& in) {
  uint32_t num_shards = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU32(&num_shards));
  if (num_shards != shards_.size()) {
    return common::Status::InvalidArgument(
        "cache snapshot written with " + std::to_string(num_shards) +
        " shards, cache configured with " + std::to_string(shards_.size()));
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    uint64_t slots = 0;
    LLMDM_RETURN_IF_ERROR(in.ReadU64(&slots));
    shard.entries.reserve(slots);
    for (uint64_t i = 0; i < slots; ++i) {
      uint8_t live = 0;
      LLMDM_RETURN_IF_ERROR(in.ReadU8(&live));
      Entry entry;
      entry.live = live != 0;
      if (entry.live) {
        LLMDM_RETURN_IF_ERROR(in.ReadString(&entry.query));
        LLMDM_RETURN_IF_ERROR(in.ReadString(&entry.response));
        int64_t cost_micros = 0;
        LLMDM_RETURN_IF_ERROR(in.ReadI64(&cost_micros));
        // Derived state is recomputed, not stored: the embedder and
        // tokenizer are deterministic, so the rebuilt entry matches the one
        // that was saved.
        embedder_.EmbedInto(entry.query, &entry.embedding);
        entry.response_tokens = text::CountTokens(entry.response);
        entry.cost_to_produce = common::Money::FromMicros(cost_micros);
      }
      shard.entries.push_back(std::move(entry));
      if (shard.entries.back().live) {
        shard.index->Add(i, shard.entries.back().embedding).ok();
        ++shard.live_count;
      } else {
        ++shard.dead_count;
      }
    }
    shard.metrics.live_entries->Set(static_cast<int64_t>(shard.live_count));
    shard.metrics.slots->Set(static_cast<int64_t>(shard.entries.size()));
  }
  return common::Status::Ok();
}

common::Status SemanticCache::ApplyWalRecord(std::string_view payload) {
  durability::ByteReader in(payload);
  uint8_t op = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU8(&op));
  switch (static_cast<WalOp>(op)) {
    case WalOp::kInsert:
      return ApplyInsertRecord(in);
    case WalOp::kRefresh:
      return ApplyRefreshRecord(in);
    case WalOp::kEvict:
      return ApplyEvictRecord(in);
    case WalOp::kCompact:
      return ApplyCompactRecord(in);
  }
  return common::Status::InvalidArgument("unknown cache WAL op " +
                                         std::to_string(op));
}

common::Status SemanticCache::ApplyInsertRecord(durability::ByteReader& in) {
  uint32_t shard_id = 0;
  Entry entry;
  int64_t cost_micros = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU32(&shard_id));
  LLMDM_RETURN_IF_ERROR(in.ReadString(&entry.query));
  LLMDM_RETURN_IF_ERROR(in.ReadString(&entry.response));
  LLMDM_RETURN_IF_ERROR(in.ReadI64(&cost_micros));
  if (shard_id >= shards_.size()) {
    return common::Status::InvalidArgument(
        "cache WAL record for shard " + std::to_string(shard_id) + " of " +
        std::to_string(shards_.size()));
  }
  Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  embedder_.EmbedInto(entry.query, &entry.embedding);
  entry.response_tokens = text::CountTokens(entry.response);
  entry.cost_to_produce = common::Money::FromMicros(cost_micros);
  size_t id = shard.entries.size();
  shard.entries.push_back(std::move(entry));
  shard.index->Add(id, shard.entries.back().embedding).ok();
  ++shard.live_count;
  shard.metrics.insertions->Add(1);
  shard.metrics.live_entries->Set(static_cast<int64_t>(shard.live_count));
  shard.metrics.slots->Set(static_cast<int64_t>(shard.entries.size()));
  return common::Status::Ok();
}

common::Status SemanticCache::ApplyRefreshRecord(durability::ByteReader& in) {
  uint32_t shard_id = 0;
  uint64_t slot = 0;
  std::string response;
  int64_t cost_micros = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU32(&shard_id));
  LLMDM_RETURN_IF_ERROR(in.ReadU64(&slot));
  LLMDM_RETURN_IF_ERROR(in.ReadString(&response));
  LLMDM_RETURN_IF_ERROR(in.ReadI64(&cost_micros));
  if (shard_id >= shards_.size()) {
    return common::Status::InvalidArgument("cache WAL refresh: bad shard");
  }
  Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (slot >= shard.entries.size() || !shard.entries[slot].live) {
    return common::Status::InvalidArgument(
        "cache WAL refresh of missing/dead slot " + std::to_string(slot));
  }
  Entry& entry = shard.entries[slot];
  entry.response = std::move(response);
  entry.response_tokens = text::CountTokens(entry.response);
  entry.cost_to_produce = common::Money::FromMicros(cost_micros);
  return common::Status::Ok();
}

common::Status SemanticCache::ApplyEvictRecord(durability::ByteReader& in) {
  uint32_t shard_id = 0;
  uint64_t slot = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU32(&shard_id));
  LLMDM_RETURN_IF_ERROR(in.ReadU64(&slot));
  if (shard_id >= shards_.size()) {
    return common::Status::InvalidArgument("cache WAL evict: bad shard");
  }
  Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (slot >= shard.entries.size() || !shard.entries[slot].live) {
    return common::Status::InvalidArgument(
        "cache WAL evict of missing/dead slot " + std::to_string(slot));
  }
  KillSlot(shard, slot);
  return common::Status::Ok();
}

common::Status SemanticCache::ApplyCompactRecord(durability::ByteReader& in) {
  uint32_t shard_id = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU32(&shard_id));
  if (shard_id >= shards_.size()) {
    return common::Status::InvalidArgument("cache WAL compact: bad shard");
  }
  Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  CompactShard(shard);
  return common::Status::Ok();
}

common::Result<llm::Completion> CachedLlm::Complete(const llm::Prompt& prompt) {
  // Estimate the input half of what a fresh call would cost; the cache
  // credits the output half from the cached response's own token count, so
  // the savings ledger reflects the whole avoided bill (input + output),
  // not just the prompt side.
  size_t input_tokens = prompt.CountInputTokens();
  common::Money avoided = common::Money::FromMicros(
      spec().input_price_per_1k.micros() *
      static_cast<int64_t>(input_tokens) / 1000);
  obs::Span* probe = nullptr;
  double probe_start = 0.0;
  if (prompt.trace != nullptr) {
    probe_start = prompt.trace->SpanStart(prompt.trace_parent);
    probe = prompt.trace->StartSpan("cache_probe", probe_start,
                                    prompt.trace_parent);
  }
  if (auto hit = cache_->Lookup(prompt.input, avoided,
                                spec().output_price_per_1k);
      hit.has_value()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (probe != nullptr) {
      prompt.trace->SetAttr(probe, "outcome", "hit");
      prompt.trace->SetAttr(probe, "similarity",
                            common::StrFormat("%.3f", hit->similarity));
      prompt.trace->SetAttr(probe, "saved", hit->saved.ToString());
      prompt.trace->EndSpan(probe, probe_start + 1.0);
    }
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.9;  // cache hits are answers we previously committed to
    c.model = spec().name + "+cache";
    c.input_tokens = 0;
    c.output_tokens = 0;
    c.cost = common::Money::Zero();
    c.latency_ms = 1.0;  // vector lookup, not a model round-trip
    return c;
  }
  if (probe != nullptr) {
    prompt.trace->SetAttr(probe, "outcome", "miss");
    prompt.trace->EndSpan(probe, probe_start + 1.0);
  }
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, inner_->Complete(prompt));
  cache_->Insert(prompt.input, c.text, c.cost);
  return c;
}

llm::ResilientLlm::CacheFallback MakeStaleCacheFallback(
    const SemanticCache* cache, std::string model_name,
    double relaxed_threshold) {
  return [cache, model_name = std::move(model_name),
          relaxed_threshold](const llm::Prompt& prompt)
             -> std::optional<llm::Completion> {
    auto hit = cache->LookupStale(prompt.input, relaxed_threshold);
    if (!hit.has_value()) return std::nullopt;
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.5;  // stale answers carry no freshness guarantee
    c.model = model_name + "+stale-cache";
    c.latency_ms = 1.0;
    return c;
  };
}

}  // namespace llmdm::optimize
