#include "core/optimize/semantic_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"

namespace llmdm::optimize {

SemanticCache::SemanticCache(const Options& options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  const size_t n = options_.num_shards;
  // Divide the global capacity across shards: base share everywhere, the
  // remainder spread over the first shards, so the shares always sum to
  // Options::capacity (and shard 0 of a 1-shard cache gets all of it).
  const size_t base = options_.capacity / n;
  const size_t extra = options_.capacity % n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        MakeIndex(), base + (i < extra ? 1 : 0), options_.doorkeeper_capacity));
  }
}

size_t SemanticCache::ShardIndexFor(std::string_view query) const {
  if (shards_.size() == 1) return 0;
  return common::Fnv1a(query) % shards_.size();
}

std::unique_ptr<vectordb::VectorIndex> SemanticCache::MakeIndex() const {
  switch (options_.index) {
    case CacheIndexKind::kFlat:
      return std::make_unique<vectordb::FlatIndex>();
    case CacheIndexKind::kHnsw:
      return std::make_unique<vectordb::HnswIndex>();
  }
  return std::make_unique<vectordb::FlatIndex>();
}

std::vector<vectordb::SearchResult> SemanticCache::SearchShard(
    const Shard& shard, const embed::Vector& query, size_t k) const {
  if (options_.index == CacheIndexKind::kHnsw &&
      shard.live_count < options_.ann_min_size) {
    // Brute-force below the ANN threshold: exact, and cheaper than a graph
    // walk on a small collection. Same ordering contract as FlatIndex
    // (score desc, id asc).
    std::vector<vectordb::SearchResult> all;
    all.reserve(shard.live_count);
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (!shard.entries[i].live) continue;
      all.push_back(vectordb::SearchResult{
          i, embed::CosineSimilarity(query, shard.entries[i].embedding)});
    }
    size_t take = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + take, all.end(),
                      [](const vectordb::SearchResult& a,
                         const vectordb::SearchResult& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
    all.resize(take);
    return all;
  }
  return shard.index->Search(query, k);
}

double SemanticCache::EvictionScore(const Entry& entry) const {
  switch (options_.policy) {
    case EvictionPolicy::kLru:
      return static_cast<double>(entry.last_used_tick);
    case EvictionPolicy::kLfu:
      return static_cast<double>(entry.reuse_hits + entry.augment_hits);
    case EvictionPolicy::kCostAware: {
      // Hits are weighted by kind (reuse saves a whole call, augmentation
      // only sharpens one); recency breaks ties so dead entries rotate out.
      double value = options_.reuse_weight * double(entry.reuse_hits) +
                     options_.augment_weight * double(entry.augment_hits);
      return value + 1e-6 * static_cast<double>(entry.last_used_tick);
    }
  }
  return 0.0;
}

void SemanticCache::EvictIfNeeded(Shard& shard) {
  while (shard.live_count > shard.capacity) {
    double worst = 1e300;
    size_t victim = shard.entries.size();
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (!shard.entries[i].live) continue;
      double score = EvictionScore(shard.entries[i]);
      if (score < worst) {
        worst = score;
        victim = i;
      }
    }
    if (victim == shard.entries.size()) return;
    shard.entries[victim].live = false;
    shard.index->Remove(victim).ok();  // ignore status: id is known-present
    --shard.live_count;
    ++shard.stats.evictions;
  }
}

std::optional<SemanticCache::Hit> SemanticCache::Lookup(
    const std::string& query, common::Money avoided_cost) {
  // Embedding is the expensive half of a lookup; do it before taking any
  // lock so concurrent lookups only serialize on the (cheap) shard scan.
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  Shard& shard = *shards_[ShardIndexFor(query)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  ++shard.tick;
  if (shard.live_count == 0) return std::nullopt;
  auto results = SearchShard(shard, q, 1);
  if (results.empty()) return std::nullopt;
  Entry& entry = shard.entries[results[0].id];
  if (results[0].score < options_.similarity_threshold || !entry.live) {
    return std::nullopt;
  }
  entry.last_used_tick = shard.tick;
  ++entry.reuse_hits;
  ++shard.stats.hits;
  shard.stats.saved += avoided_cost;
  return Hit{entry.query, entry.response, results[0].score, avoided_cost};
}

std::optional<SemanticCache::Hit> SemanticCache::LookupStale(
    const std::string& query, double relaxed_threshold) const {
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  // Stale candidates may live in any shard (similar text hashes anywhere),
  // so take the best top-1 across all of them. Ties keep the earliest shard,
  // which with one shard reproduces the pre-sharding result exactly.
  std::optional<Hit> best;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.live_count == 0) continue;
    auto results = SearchShard(shard, q, 1);
    if (results.empty()) continue;
    const Entry& entry = shard.entries[results[0].id];
    if (results[0].score < relaxed_threshold || !entry.live) continue;
    if (!best.has_value() || results[0].score > best->similarity) {
      best = Hit{entry.query, entry.response, results[0].score,
                 common::Money::Zero()};
    }
  }
  return best;
}

std::vector<SemanticCache::Hit> SemanticCache::TopKForAugmentation(
    const std::string& query, size_t k) {
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  // Phase 1: per-shard top-k candidates. Each shard's list arrives best
  // first; the global merge below is a stable sort on score, so candidates
  // keep their (shard, rank) order on ties — with one shard this is exactly
  // the pre-sharding iteration order.
  struct Candidate {
    float score;
    size_t shard;
    uint64_t id;
  };
  std::vector<Candidate> candidates;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.tick;
    if (shard.live_count == 0) continue;
    for (const auto& r : SearchShard(shard, q, k)) {
      candidates.push_back(Candidate{r.score, s, r.id});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  // Phase 2: re-lock each winner's shard to bump its usage. An entry evicted
  // between the phases is simply skipped.
  std::vector<Hit> out;
  for (const Candidate& c : candidates) {
    if (out.size() == k) break;
    Shard& shard = *shards_[c.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry& entry = shard.entries[c.id];
    if (!entry.live) continue;
    entry.last_used_tick = shard.tick;
    ++entry.augment_hits;
    out.push_back(Hit{entry.query, entry.response, c.score,
                      common::Money::Zero()});
  }
  return out;
}

void SemanticCache::Insert(const std::string& query,
                           const std::string& response,
                           common::Money cost_to_produce) {
  // Embed before locking (see Lookup). Predictive admission may then throw
  // the embedding away on a first sighting — accepted: rejections are rare
  // per recurring query, and keeping one critical section preserves the
  // pre-sharding semantics under every interleaving.
  embed::Vector q;
  embedder_.EmbedInto(query, &q);
  Shard& shard = *shards_[ShardIndexFor(query)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.tick;
  if (options_.predictive_admission) {
    if (!shard.doorkeeper.SeenAndNote(common::Fnv1a(query))) {
      // First sighting: predicted unlikely to recur; do not admit.
      ++shard.stats.admission_rejections;
      return;
    }
  }
  ++shard.stats.insertions;
  // Refresh an existing (near-)identical key instead of duplicating it.
  auto nearest = SearchShard(shard, q, 1);
  if (!nearest.empty() && nearest[0].score > 0.999) {
    Entry& entry = shard.entries[nearest[0].id];
    if (entry.live) {
      entry.response = response;
      entry.cost_to_produce = cost_to_produce;
      entry.last_used_tick = shard.tick;
      return;
    }
  }
  Entry entry;
  entry.query = query;
  entry.response = response;
  entry.embedding = std::move(q);
  entry.cost_to_produce = cost_to_produce;
  entry.last_used_tick = shard.tick;
  size_t id = shard.entries.size();
  shard.entries.push_back(std::move(entry));
  shard.index->Add(id, shard.entries.back().embedding).ok();
  ++shard.live_count;
  EvictIfNeeded(shard);
}

size_t SemanticCache::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->live_count;
  }
  return total;
}

SemanticCache::Stats SemanticCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.admission_rejections += shard->stats.admission_rejections;
    total.saved += shard->stats.saved;
  }
  return total;
}

size_t SemanticCache::doorkeeper_entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->doorkeeper.entries();
  }
  return total;
}

common::Result<llm::Completion> CachedLlm::Complete(const llm::Prompt& prompt) {
  // Estimate what a fresh call would cost (for the savings ledger).
  size_t input_tokens = prompt.CountInputTokens();
  common::Money avoided = common::Money::FromMicros(
      spec().input_price_per_1k.micros() *
      static_cast<int64_t>(input_tokens) / 1000);
  if (auto hit = cache_->Lookup(prompt.input, avoided); hit.has_value()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.9;  // cache hits are answers we previously committed to
    c.model = spec().name + "+cache";
    c.input_tokens = 0;
    c.output_tokens = 0;
    c.cost = common::Money::Zero();
    c.latency_ms = 1.0;  // vector lookup, not a model round-trip
    return c;
  }
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, inner_->Complete(prompt));
  cache_->Insert(prompt.input, c.text, c.cost);
  return c;
}

llm::ResilientLlm::CacheFallback MakeStaleCacheFallback(
    const SemanticCache* cache, std::string model_name,
    double relaxed_threshold) {
  return [cache, model_name = std::move(model_name),
          relaxed_threshold](const llm::Prompt& prompt)
             -> std::optional<llm::Completion> {
    auto hit = cache->LookupStale(prompt.input, relaxed_threshold);
    if (!hit.has_value()) return std::nullopt;
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.5;  // stale answers carry no freshness guarantee
    c.model = model_name + "+stale-cache";
    c.latency_ms = 1.0;
    return c;
  };
}

}  // namespace llmdm::optimize
