#include "core/optimize/semantic_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "text/tokenizer.h"

namespace llmdm::optimize {

SemanticCache::SemanticCache(const Options& options) : options_(options) {}

double SemanticCache::EvictionScore(const Entry& entry) const {
  switch (options_.policy) {
    case EvictionPolicy::kLru:
      return static_cast<double>(entry.last_used_tick);
    case EvictionPolicy::kLfu:
      return static_cast<double>(entry.reuse_hits + entry.augment_hits);
    case EvictionPolicy::kCostAware: {
      // Hits are weighted by kind (reuse saves a whole call, augmentation
      // only sharpens one); recency breaks ties so dead entries rotate out.
      double value = options_.reuse_weight * double(entry.reuse_hits) +
                     options_.augment_weight * double(entry.augment_hits);
      return value + 1e-6 * static_cast<double>(entry.last_used_tick);
    }
  }
  return 0.0;
}

void SemanticCache::EvictIfNeeded() {
  while (live_count_ > options_.capacity) {
    double worst = 1e300;
    size_t victim = entries_.size();
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].live) continue;
      double score = EvictionScore(entries_[i]);
      if (score < worst) {
        worst = score;
        victim = i;
      }
    }
    if (victim == entries_.size()) return;
    entries_[victim].live = false;
    index_.Remove(victim).ok();  // ignore status: id is known-present
    --live_count_;
    ++stats_.evictions;
  }
}

std::optional<SemanticCache::Hit> SemanticCache::Lookup(
    const std::string& query, common::Money avoided_cost) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  ++tick_;
  if (live_count_ == 0) return std::nullopt;
  embed::Vector q = embedder_.Embed(query);
  auto results = index_.Search(q, 1);
  if (results.empty()) return std::nullopt;
  Entry& entry = entries_[results[0].id];
  if (results[0].score < options_.similarity_threshold || !entry.live) {
    return std::nullopt;
  }
  entry.last_used_tick = tick_;
  ++entry.reuse_hits;
  ++stats_.hits;
  stats_.saved += avoided_cost;
  return Hit{entry.query, entry.response, results[0].score, avoided_cost};
}

std::optional<SemanticCache::Hit> SemanticCache::LookupStale(
    const std::string& query, double relaxed_threshold) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_count_ == 0) return std::nullopt;
  embed::Vector q = embedder_.Embed(query);
  auto results = index_.Search(q, 1);
  if (results.empty()) return std::nullopt;
  const Entry& entry = entries_[results[0].id];
  if (results[0].score < relaxed_threshold || !entry.live) {
    return std::nullopt;
  }
  return Hit{entry.query, entry.response, results[0].score,
             common::Money::Zero()};
}

std::vector<SemanticCache::Hit> SemanticCache::TopKForAugmentation(
    const std::string& query, size_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  std::vector<Hit> out;
  if (live_count_ == 0) return out;
  embed::Vector q = embedder_.Embed(query);
  for (const auto& r : index_.Search(q, k)) {
    Entry& entry = entries_[r.id];
    if (!entry.live) continue;
    entry.last_used_tick = tick_;
    ++entry.augment_hits;
    out.push_back(Hit{entry.query, entry.response, r.score,
                      common::Money::Zero()});
  }
  return out;
}

void SemanticCache::Insert(const std::string& query,
                           const std::string& response,
                           common::Money cost_to_produce) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  if (options_.predictive_admission) {
    uint64_t h = common::Fnv1a(query);
    if (seen_once_.insert(h).second) {
      // First sighting: predicted unlikely to recur; do not admit.
      ++stats_.admission_rejections;
      return;
    }
  }
  ++stats_.insertions;
  // Refresh an existing (near-)identical key instead of duplicating it.
  embed::Vector q = embedder_.Embed(query);
  auto nearest = index_.Search(q, 1);
  if (!nearest.empty() && nearest[0].score > 0.999) {
    Entry& entry = entries_[nearest[0].id];
    if (entry.live) {
      entry.response = response;
      entry.cost_to_produce = cost_to_produce;
      entry.last_used_tick = tick_;
      return;
    }
  }
  Entry entry;
  entry.query = query;
  entry.response = response;
  entry.embedding = q;
  entry.cost_to_produce = cost_to_produce;
  entry.last_used_tick = tick_;
  size_t id = entries_.size();
  entries_.push_back(std::move(entry));
  index_.Add(id, entries_.back().embedding).ok();
  ++live_count_;
  EvictIfNeeded();
}

common::Result<llm::Completion> CachedLlm::Complete(const llm::Prompt& prompt) {
  // Estimate what a fresh call would cost (for the savings ledger).
  size_t input_tokens = prompt.CountInputTokens();
  common::Money avoided = common::Money::FromMicros(
      spec().input_price_per_1k.micros() *
      static_cast<int64_t>(input_tokens) / 1000);
  if (auto hit = cache_->Lookup(prompt.input, avoided); hit.has_value()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.9;  // cache hits are answers we previously committed to
    c.model = spec().name + "+cache";
    c.input_tokens = 0;
    c.output_tokens = 0;
    c.cost = common::Money::Zero();
    c.latency_ms = 1.0;  // vector lookup, not a model round-trip
    return c;
  }
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, inner_->Complete(prompt));
  cache_->Insert(prompt.input, c.text, c.cost);
  return c;
}

llm::ResilientLlm::CacheFallback MakeStaleCacheFallback(
    const SemanticCache* cache, std::string model_name,
    double relaxed_threshold) {
  return [cache, model_name = std::move(model_name),
          relaxed_threshold](const llm::Prompt& prompt)
             -> std::optional<llm::Completion> {
    auto hit = cache->LookupStale(prompt.input, relaxed_threshold);
    if (!hit.has_value()) return std::nullopt;
    llm::Completion c;
    c.text = hit->response;
    c.confidence = 0.5;  // stale answers carry no freshness guarantee
    c.model = model_name + "+stale-cache";
    c.latency_ms = 1.0;
    return c;
  };
}

}  // namespace llmdm::optimize
