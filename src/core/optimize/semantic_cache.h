#ifndef LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_
#define LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "llm/model.h"
#include "llm/resilient.h"
#include "vectordb/flat_index.h"

namespace llmdm::optimize {

/// Eviction policies for the semantic cache. The paper argues plain LRU/LFU
/// are insufficient because cache hits have two different values: (1) reuse
/// hits replace an LLM call entirely, (2) augmentation hits only improve a
/// prompt — so kCostAware weights entries by the kind and cost of the hits
/// they have produced.
enum class EvictionPolicy { kLru, kLfu, kCostAware };

/// Embedding-keyed response cache (Sec. III-C / Table III). Matching is by
/// cosine similarity rather than exact equality, because LLM queries almost
/// never repeat verbatim.
///
/// Thread-safe: the serving layer shares one cache across all worker
/// threads, so every public method takes one internal mutex (lookups
/// mutate hit counters and eviction state, so there is no read-only fast
/// path to rwlock). A single mutex is deliberate as the first cut: the
/// critical sections are an embed + flat-index scan; shard the cache by
/// query-hash if/when the serve bench shows contention.
class SemanticCache {
 public:
  struct Options {
    double similarity_threshold = 0.9;
    size_t capacity = 256;
    EvictionPolicy policy = EvictionPolicy::kCostAware;
    /// kCostAware scoring weights for the two hit kinds.
    double reuse_weight = 2.0;
    double augment_weight = 1.0;
    /// Predictive admission (the paper's "predict the probability of future
    /// access ... or refrain from caching"): a query is only admitted on its
    /// second sighting (TinyLFU-doorkeeper style), so one-off queries never
    /// displace recurring ones. Costs one extra model call per recurring
    /// query; pays off when the stream is dominated by singletons.
    bool predictive_admission = false;
  };

  struct Hit {
    std::string query;       // the cached query that matched
    std::string response;
    double similarity = 0.0;
    common::Money saved;     // cost the hit avoided
  };

  struct Stats {
    size_t lookups = 0;
    size_t hits = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    size_t admission_rejections = 0;  // first-sighting skips (predictive)
    common::Money saved;
    double hit_rate() const {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  explicit SemanticCache(const Options& options);

  /// Reuse lookup: the best cached entry with similarity >= threshold.
  /// `avoided_cost` is what a fresh LLM call would have cost (credited to
  /// the stats and to the entry's eviction score on a hit).
  std::optional<Hit> Lookup(const std::string& query,
                            common::Money avoided_cost = common::Money::Zero());

  /// Augmentation lookup: top-k similar cached (query, response) pairs below
  /// or above threshold, for use as extra few-shot examples (hit case (2)).
  std::vector<Hit> TopKForAugmentation(const std::string& query, size_t k);

  /// Degraded-mode lookup at a caller-chosen (typically relaxed) threshold.
  /// Does not touch stats or eviction state: a stale serve is an emergency
  /// exit, not evidence the entry is hot.
  std::optional<Hit> LookupStale(const std::string& query,
                                 double relaxed_threshold) const;

  /// Inserts (or refreshes) a query/response pair, evicting if over capacity.
  void Insert(const std::string& query, const std::string& response,
              common::Money cost_to_produce = common::Money::Zero());

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_count_;
  }
  /// Snapshot copy: a reference into state another thread mutates would be
  /// a data race.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const Options& options() const { return options_; }  // immutable

 private:
  struct Entry {
    std::string query;
    std::string response;
    embed::Vector embedding;
    common::Money cost_to_produce;
    uint64_t last_used_tick = 0;
    size_t reuse_hits = 0;
    size_t augment_hits = 0;
    bool live = true;
  };

  double EvictionScore(const Entry& entry) const;  // requires mu_
  void EvictIfNeeded();                            // requires mu_

  mutable std::mutex mu_;
  Options options_;
  embed::HashingEmbedder embedder_;
  vectordb::FlatIndex index_;
  std::vector<Entry> entries_;  // slot id == vector id
  Stats stats_;
  uint64_t tick_ = 0;
  size_t live_count_ = 0;
  /// Doorkeeper for predictive admission: hashes of queries seen once.
  std::set<uint64_t> seen_once_;
};

/// An LlmModel decorator that consults a SemanticCache before calling the
/// wrapped model: the drop-in "LLM cache" of Sec. III-C. Hits return the
/// cached completion at zero cost; misses call through and populate the
/// cache.
class CachedLlm : public llm::LlmModel {
 public:
  CachedLlm(std::shared_ptr<llm::LlmModel> inner, SemanticCache* cache)
      : inner_(std::move(inner)), cache_(cache) {}

  const llm::ModelSpec& spec() const override { return inner_->spec(); }
  common::Result<llm::Completion> Complete(const llm::Prompt& prompt) override;

  size_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<llm::LlmModel> inner_;
  SemanticCache* cache_;
  std::atomic<size_t> cache_hits_{0};
};

/// Builds a ResilientLlm cache fallback that serves the nearest cached
/// response at `relaxed_threshold` when the live endpoint is exhausted —
/// the paper's semantic cache doubling as the last rung of graceful
/// degradation. Served completions are free, near-instant, and labelled
/// "<model>+stale-cache" so traces show which answers were stale.
/// `cache` must outlive the returned function.
llm::ResilientLlm::CacheFallback MakeStaleCacheFallback(
    const SemanticCache* cache, std::string model_name,
    double relaxed_threshold = 0.75);

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_
