#ifndef LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_
#define LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "durability/durable.h"
#include "embed/embedder.h"
#include "llm/model.h"
#include "llm/resilient.h"
#include "obs/metrics.h"
#include "vectordb/index.h"

namespace llmdm::durability {
class DurableStore;
}  // namespace llmdm::durability

namespace llmdm::optimize {

/// Eviction policies for the semantic cache. The paper argues plain LRU/LFU
/// are insufficient because cache hits have two different values: (1) reuse
/// hits replace an LLM call entirely, (2) augmentation hits only improve a
/// prompt — so kCostAware weights entries by the kind and cost of the hits
/// they have produced.
enum class EvictionPolicy { kLru, kLfu, kCostAware };

/// Index backing each cache shard's nearest-neighbour lookup.
enum class CacheIndexKind {
  /// Exact brute-force scan (the seed behaviour; right for small caches).
  kFlat,
  /// HNSW graph: O(log n) approximate lookup for large caches. Below
  /// Options::ann_min_size live entries a shard brute-force scans instead
  /// (graph search on a tiny collection costs more than the scan and is
  /// only approximate). Evictions tombstone graph nodes (they remain as
  /// routing points), so kHnsw fits lookup-heavy caches better than
  /// eviction-churn-heavy ones.
  kHnsw,
};

/// Bounded doorkeeper for predictive admission: a two-epoch rotating window
/// of query hashes (TinyLFU style). Membership means "seen within the last
/// one-to-two epochs"; when the current epoch fills, it becomes the previous
/// epoch and the oldest epoch is dropped, so memory is bounded by
/// 2 x epoch_capacity entries no matter how long the query stream runs —
/// unlike the unbounded seen-once set it replaces.
class Doorkeeper {
 public:
  explicit Doorkeeper(size_t epoch_capacity)
      : epoch_capacity_(epoch_capacity == 0 ? 1 : epoch_capacity) {}

  /// True if `h` was sighted within the window; always records the sighting.
  bool SeenAndNote(uint64_t h) {
    if (current_.count(h) > 0 || previous_.count(h) > 0) return true;
    current_.insert(h);
    if (current_.size() >= epoch_capacity_) {
      previous_ = std::move(current_);
      current_.clear();
    }
    return false;
  }

  size_t entries() const { return current_.size() + previous_.size(); }
  size_t epoch_capacity() const { return epoch_capacity_; }

 private:
  size_t epoch_capacity_;
  std::unordered_set<uint64_t> current_, previous_;
};

/// Embedding-keyed response cache (Sec. III-C / Table III). Matching is by
/// cosine similarity rather than exact equality, because LLM queries almost
/// never repeat verbatim.
///
/// Thread-safe and sharded: the serving layer shares one cache across all
/// worker threads, so the cache is split into Options::num_shards
/// independently locked shards by query hash — each shard owns its own
/// index, entries, eviction state, statistics and doorkeeper, and the
/// global capacity is divided across shards. Query embedding (the expensive
/// half of a lookup) happens before any lock is taken. With num_shards == 1
/// (the default) behaviour is byte-identical to the pre-sharding cache.
/// Reuse lookups consult only the query's shard (the hot path touches one
/// lock); augmentation and stale lookups search every shard, since their
/// candidates may hash anywhere.
class SemanticCache : public durability::DurableState {
 public:
  struct Options {
    double similarity_threshold = 0.9;
    size_t capacity = 256;
    EvictionPolicy policy = EvictionPolicy::kCostAware;
    /// kCostAware scoring weights for the two hit kinds.
    double reuse_weight = 2.0;
    double augment_weight = 1.0;
    /// Predictive admission (the paper's "predict the probability of future
    /// access ... or refrain from caching"): a query is only admitted on its
    /// second sighting (TinyLFU-doorkeeper style), so one-off queries never
    /// displace recurring ones. Costs one extra model call per recurring
    /// query; pays off when the stream is dominated by singletons.
    bool predictive_admission = false;
    /// Number of independently locked shards. Serving throughput scales
    /// with shards until embedding dominates; keep it a small power of two.
    size_t num_shards = 1;
    /// Lookup index per shard. kFlat (exact scan) preserves seed behaviour;
    /// kHnsw makes large caches sublinear.
    CacheIndexKind index = CacheIndexKind::kFlat;
    /// With kHnsw: a shard brute-force scans (exact) while it holds fewer
    /// live entries than this.
    size_t ann_min_size = 256;
    /// Store int8 quantized codes alongside float32 in the shard indexes and
    /// run the scan (flat) or traversal (HNSW) over them, rescoring the
    /// short list with exact float32 — hit scores and threshold decisions
    /// stay exact; only candidate *selection* is approximate (recall ≥0.99
    /// on the Table III workload, gated in tests). Roughly 4x less memory
    /// traffic per probed entry.
    bool quantize = false;
    /// Doorkeeper epoch capacity per shard; the rotating window retains at
    /// most twice this many hashes (see Doorkeeper).
    size_t doorkeeper_capacity = 4096;
    /// A shard compacts its entries vector (dropping dead slots and
    /// remapping index ids) once dead slots exceed
    /// max(compact_min_dead, the shard's capacity share) — the bound that
    /// keeps memory O(capacity) under insert-evict churn instead of
    /// retaining every evicted entry for process lifetime.
    size_t compact_min_dead = 16;
    /// Metrics registry the cache's per-shard instruments live in. Null
    /// (the default) gives the cache a private registry, which keeps
    /// stats() per-instance; inject one registry per cache to aggregate
    /// across a stack (instrument names collide between caches sharing a
    /// registry).
    obs::Registry* registry = nullptr;
  };

  struct Hit {
    std::string query;       // the cached query that matched
    std::string response;
    double similarity = 0.0;
    common::Money saved;     // cost the hit avoided
  };

  struct Stats {
    size_t lookups = 0;
    size_t hits = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    size_t admission_rejections = 0;  // first-sighting skips (predictive)
    common::Money saved;
    double hit_rate() const {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  explicit SemanticCache(const Options& options);

  /// Reuse lookup: the best *live* cached entry with similarity >=
  /// threshold (a dead id lingering in an index never shadows a live
  /// neighbour: the probe searches past it). `avoided_cost` is what a fresh
  /// LLM call's *input* side would have cost; when `output_price_per_1k` is
  /// non-zero the hit additionally credits the output tokens the cached
  /// response replaces — both halves of the bill land in Hit::saved and the
  /// stats ledger.
  std::optional<Hit> Lookup(
      const std::string& query,
      common::Money avoided_cost = common::Money::Zero(),
      common::Money output_price_per_1k = common::Money::Zero());

  /// Batched reuse lookup: semantically identical to calling Lookup() once
  /// per query in order (same hits, same stats, same tick sequence per
  /// shard), but amortized for the serving admission path — all queries are
  /// embedded first into one contiguous arena (no per-query Vector churn),
  /// then each shard is locked once and probed for every query that hashes
  /// to it, in arrival order. `avoided_costs` must be empty (all zero) or
  /// one entry per query.
  std::vector<std::optional<Hit>> LookupBatch(
      const std::vector<std::string_view>& queries,
      const std::vector<common::Money>& avoided_costs = {},
      common::Money output_price_per_1k = common::Money::Zero());

  /// Augmentation lookup: top-k similar cached (query, response) pairs below
  /// or above threshold, for use as extra few-shot examples (hit case (2)).
  /// Searches every shard and merges.
  std::vector<Hit> TopKForAugmentation(const std::string& query, size_t k);

  /// Degraded-mode lookup at a caller-chosen (typically relaxed) threshold.
  /// Does not touch stats or eviction state: a stale serve is an emergency
  /// exit, not evidence the entry is hot. Searches every shard.
  std::optional<Hit> LookupStale(const std::string& query,
                                 double relaxed_threshold) const;

  /// Inserts (or refreshes) a query/response pair into the query's shard,
  /// evicting within that shard if it is over its capacity share.
  void Insert(const std::string& query, const std::string& response,
              common::Money cost_to_produce = common::Money::Zero());

  /// Live entries across all shards.
  size_t Size() const;

  /// Snapshot aggregated across shards (each shard locked in turn; the
  /// result is a consistent per-shard sum, not a global atomic snapshot).
  Stats stats() const;

  const Options& options() const { return options_; }  // immutable

  size_t num_shards() const { return shards_.size(); }

  /// Total doorkeeper window entries across shards (bounded by
  /// num_shards x 2 x doorkeeper_capacity); exposed for the bound tests.
  size_t doorkeeper_entries() const;

  /// Total entry slots across shards — live plus dead-awaiting-compaction.
  /// The churn-soak tests assert this stays O(capacity) no matter how many
  /// insert-evict cycles have run.
  size_t TotalSlots() const;

  /// Approximate payload bytes retained across shards (query + response +
  /// embedding capacities). Evicted entries release their payloads, so this
  /// too is bounded under churn.
  size_t RetainedBytes() const;

  /// The registry holding the cache's instruments (the injected one, or the
  /// private per-instance registry).
  obs::Registry* registry() const { return registry_; }

  /// Attaches a DurableStore (src/durability/): from here on every
  /// insert/refresh/evict/compact is logged as a physical WAL record under
  /// the store's commit gate. Call during setup — typically right after
  /// DurableStore::Open has replayed this cache back to its recovered state
  /// — not while other threads are using the cache. Pass nullptr to detach.
  void AttachDurability(durability::DurableStore* store);

  // DurableState implementation. The durable image is the payload state
  // (queries, responses, costs, slot layout including dead slots — WAL slot
  // ids stay valid across a checkpoint); heat (ticks, hit counts, the
  // doorkeeper window, metric counters) is process-local and re-learned.
  void ResetToEmpty() override;
  common::Status SaveSnapshot(std::string* out) const override;
  common::Status LoadSnapshot(durability::ByteReader& in) override;
  common::Status ApplyWalRecord(std::string_view payload) override;

 private:
  /// Physical WAL record kinds. Replay re-applies the *outcome* of each
  /// mutation (which slot, which shard) rather than re-running admission or
  /// eviction heuristics, which consult non-durable heat and would diverge.
  enum class WalOp : uint8_t {
    kInsert = 1,   // shard, query, response, cost -> append a new slot
    kRefresh = 2,  // shard, slot, response, cost  -> overwrite payload
    kEvict = 3,    // shard, slot                  -> mark dead
    kCompact = 4,  // shard                        -> stable-compact
  };

  struct Entry {
    std::string query;
    std::string response;
    embed::Vector embedding;
    common::Money cost_to_produce;
    /// Token count of `response`, memoized at insert so a hit can credit
    /// the output half of the avoided bill without re-tokenizing.
    size_t response_tokens = 0;
    uint64_t last_used_tick = 0;
    size_t reuse_hits = 0;
    size_t augment_hits = 0;
    bool live = true;
  };

  /// Per-shard instruments; the legacy Stats struct is a read-time view
  /// over these counters.
  struct ShardMetrics {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* insertions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* admission_rejections = nullptr;
    obs::Counter* saved_micros = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* reclaimed_slots = nullptr;
    obs::Gauge* live_entries = nullptr;
    obs::Gauge* slots = nullptr;
  };

  struct Shard {
    Shard(std::unique_ptr<vectordb::VectorIndex> idx, size_t cap,
          size_t doorkeeper_capacity)
        : index(std::move(idx)), capacity(cap), doorkeeper(doorkeeper_capacity) {}

    mutable std::mutex mu;
    std::unique_ptr<vectordb::VectorIndex> index;  // ids are entries slots
    std::vector<Entry> entries;
    uint64_t tick = 0;
    size_t live_count = 0;
    size_t dead_count = 0;  // evicted slots not yet compacted away
    /// Bumped by every compaction (ids are remapped): stale (shard, id)
    /// references held across an unlock — TopKForAugmentation's phase 2 —
    /// check it before dereferencing.
    uint64_t generation = 0;
    size_t capacity = 0;  // this shard's share of Options::capacity
    size_t shard_id = 0;  // position in shards_, for WAL record encoding
    Doorkeeper doorkeeper;
    ShardMetrics metrics;
  };

  size_t ShardIndexFor(std::string_view query) const;
  std::unique_ptr<vectordb::VectorIndex> MakeIndex() const;
  double EvictionScore(const Entry& entry) const;
  /// (Re)creates the shard array empty; shared by the constructor and
  /// ResetToEmpty. Instruments are re-fetched from the registry, so counters
  /// survive a reset (they are process metrics, not cache state).
  void InitShards();
  /// Appends one WAL record when durability is attached; no-op otherwise.
  /// The guard must be held whenever shard state is being mutated.
  void LogWal(const durability::MutationGuard& guard, std::string payload);
  common::Status ApplyInsertRecord(durability::ByteReader& in);
  common::Status ApplyRefreshRecord(durability::ByteReader& in);
  common::Status ApplyEvictRecord(durability::ByteReader& in);
  common::Status ApplyCompactRecord(durability::ByteReader& in);
  /// Marks `slot` dead and releases its payloads (the shared mutation both
  /// live eviction and WAL replay perform). Requires shard.mu.
  void KillSlot(Shard& shard, size_t slot);
  void EvictIfNeeded(Shard& shard,
                     const durability::MutationGuard& guard);  // requires mu
  /// Stable-compacts `shard.entries` down to its live entries (preserving
  /// relative id order, so tie-breaks and eviction scans behave exactly as
  /// before) and rebuilds the index over the remapped ids. Requires
  /// shard.mu.
  void CompactShard(Shard& shard);
  /// Top-k over one shard, honouring the index kind and the brute-force
  /// fallback below ann_min_size. Requires shard.mu.
  std::vector<vectordb::SearchResult> SearchShard(const Shard& shard,
                                                  const embed::Vector& query,
                                                  size_t k) const;
  /// The post-embedding body of Lookup (tick, probe, threshold, credit) —
  /// shared with LookupBatch. Requires shard.mu.
  std::optional<Hit> ProbeShardLocked(Shard& shard, const embed::Vector& q,
                                      common::Money avoided_cost,
                                      common::Money output_price_per_1k);

  Options options_;
  embed::HashingEmbedder embedder_;
  /// Private registry when Options::registry is null (keeps stats()
  /// per-instance); registry_ always points at the one in use.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  durability::DurableStore* durable_ = nullptr;  // not owned; may be null
};

/// An LlmModel decorator that consults a SemanticCache before calling the
/// wrapped model: the drop-in "LLM cache" of Sec. III-C. Hits return the
/// cached completion at zero cost; misses call through and populate the
/// cache.
class CachedLlm : public llm::LlmModel {
 public:
  CachedLlm(std::shared_ptr<llm::LlmModel> inner, SemanticCache* cache)
      : inner_(std::move(inner)), cache_(cache) {}

  const llm::ModelSpec& spec() const override { return inner_->spec(); }
  common::Result<llm::Completion> Complete(const llm::Prompt& prompt) override;

  size_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<llm::LlmModel> inner_;
  SemanticCache* cache_;
  std::atomic<size_t> cache_hits_{0};
};

/// Builds a ResilientLlm cache fallback that serves the nearest cached
/// response at `relaxed_threshold` when the live endpoint is exhausted —
/// the paper's semantic cache doubling as the last rung of graceful
/// degradation. Served completions are free, near-instant, and labelled
/// "<model>+stale-cache" so traces show which answers were stale.
/// `cache` must outlive the returned function.
llm::ResilientLlm::CacheFallback MakeStaleCacheFallback(
    const SemanticCache* cache, std::string model_name,
    double relaxed_threshold = 0.75);

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_SEMANTIC_CACHE_H_
