#ifndef LLMDM_CORE_OPTIMIZE_PROMPT_STORE_H_
#define LLMDM_CORE_OPTIMIZE_PROMPT_STORE_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "durability/durable.h"
#include "embed/embedder.h"
#include "llm/prompt.h"
#include "vectordb/flat_index.h"

namespace llmdm::durability {
class DurableStore;
}  // namespace llmdm::durability

namespace llmdm::optimize {

/// A historical prompt (a worked example) with its running utility: how often
/// including it actually helped. Sec. III-A's point is that raw vector
/// similarity is not the right selection target — the store therefore tracks
/// outcome feedback per prompt and offers utility-aware selection.
struct StoredPrompt {
  uint64_t id = 0;
  std::string input;
  std::string output;
  size_t uses = 0;
  size_t successes = 0;

  double success_rate() const {
    // Laplace-smoothed so unproven prompts neither dominate nor vanish.
    return (static_cast<double>(successes) + 1.0) /
           (static_cast<double>(uses) + 2.0);
  }
};

/// Vector-database-backed store of historical prompts with three selection
/// strategies and a budgeted retention policy.
///
/// Thread-safe: one internal mutex guards all state, and accessors return
/// copies (a pointer into `prompts_` would dangle across a concurrent Add's
/// reallocation). Note that under concurrency "the most recent Select()" in
/// last_selected_ids() means the most recent across *all* threads — callers
/// that need per-request feedback routing should capture the ids right after
/// their own Select() call.
class PromptStore : public durability::DurableState {
 public:
  enum class Selection {
    kSimilarity,          // plain nearest-neighbour
    kUtilityWeighted,     // similarity x historical success rate
    kEpsilonGreedy,       // bandit: mostly utility, sometimes explore
  };

  struct Options {
    size_t capacity = 512;
    double epsilon = 0.1;  // exploration rate for kEpsilonGreedy
    uint64_t seed = 17;
  };

  explicit PromptStore(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// Adds a worked example; evicts the lowest-utility prompt when full
  /// (the "which historical prompts to keep within a budget" question).
  uint64_t Add(const std::string& input, const std::string& output);

  /// Selects up to k examples for a new query under the given strategy.
  std::vector<llm::FewShotExample> Select(const std::string& query, size_t k,
                                          Selection strategy);

  /// Outcome feedback: the task that used prompt `id` succeeded/failed.
  /// Drives utility-weighted selection and budgeted retention.
  void RecordOutcome(uint64_t id, bool success);

  /// Ids of the most recent Select() result (aligned with its examples),
  /// so callers can route outcome feedback. Snapshot copy.
  std::vector<uint64_t> last_selected_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_selected_ids_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_count_;
  }
  /// Snapshot copy of the stored prompt, or nullopt if absent/evicted.
  std::optional<StoredPrompt> Get(uint64_t id) const;

  /// Attaches a DurableStore: adds, evictions, and outcome feedback are
  /// logged as physical WAL records from here on. Call during setup (after
  /// recovery), not while other threads use the store. Outcome tallies are
  /// part of the durable image — they are learned from paid LLM calls and
  /// drive both selection and retention, so losing them would cost real
  /// money to re-learn.
  void AttachDurability(durability::DurableStore* store);

  // DurableState implementation. The image preserves the full slot layout
  // (evicted prompts keep their slot so WAL ids written after a snapshot
  // stay valid); the exploration rng and last_selected_ids_ are
  // process-local and reset on recovery.
  void ResetToEmpty() override;
  common::Status SaveSnapshot(std::string* out) const override;
  common::Status LoadSnapshot(durability::ByteReader& in) override;
  common::Status ApplyWalRecord(std::string_view payload) override;

 private:
  enum class WalOp : uint8_t {
    kAdd = 1,      // input, output          -> append a new prompt slot
    kEvict = 2,    // id                     -> mark dead
    kOutcome = 3,  // id, success            -> bump the utility tallies
  };

  void LogWal(const durability::MutationGuard& guard, std::string payload);
  void EvictIfNeeded(const durability::MutationGuard& guard);  // requires mu_

  mutable std::mutex mu_;
  Options options_;
  common::Rng rng_;
  embed::HashingEmbedder embedder_;
  vectordb::FlatIndex index_;
  std::vector<StoredPrompt> prompts_;
  std::vector<bool> live_;
  std::vector<uint64_t> last_selected_ids_;
  size_t live_count_ = 0;
  durability::DurableStore* durable_ = nullptr;  // not owned; may be null
};

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_PROMPT_STORE_H_
