#include "core/optimize/prompt_store.h"

#include <algorithm>

namespace llmdm::optimize {

uint64_t PromptStore::Add(const std::string& input, const std::string& output) {
  std::lock_guard<std::mutex> lock(mu_);
  StoredPrompt p;
  p.id = prompts_.size();
  p.input = input;
  p.output = output;
  prompts_.push_back(p);
  live_.push_back(true);
  index_.Add(p.id, embedder_.Embed(input)).ok();
  ++live_count_;
  EvictIfNeeded();
  return p.id;
}

void PromptStore::EvictIfNeeded() {
  while (live_count_ > options_.capacity) {
    double worst = 1e300;
    size_t victim = prompts_.size();
    for (size_t i = 0; i < prompts_.size(); ++i) {
      if (!live_[i]) continue;
      // Budgeted retention by smoothed success rate: proven failures
      // (rate << 0.5) go first, fresh prompts sit at the 0.5 prior and
      // outrank them, proven earners stay.
      double score = prompts_[i].success_rate();
      if (score < worst) {
        worst = score;
        victim = i;
      }
    }
    if (victim == prompts_.size()) return;
    live_[victim] = false;
    index_.Remove(victim).ok();
    --live_count_;
  }
}

std::vector<llm::FewShotExample> PromptStore::Select(const std::string& query,
                                                     size_t k,
                                                     Selection strategy) {
  std::lock_guard<std::mutex> lock(mu_);
  last_selected_ids_.clear();
  std::vector<llm::FewShotExample> out;
  if (live_count_ == 0 || k == 0) return out;

  // Over-fetch then re-rank by the strategy's score.
  size_t fetch = std::min(live_count_, k * 4 + 4);
  auto candidates = index_.Search(embedder_.Embed(query), fetch);

  struct Ranked {
    uint64_t id;
    double score;
  };
  std::vector<Ranked> ranked;
  for (const auto& c : candidates) {
    if (!live_[c.id]) continue;
    const StoredPrompt& p = prompts_[c.id];
    double score = c.score;
    if (strategy != Selection::kSimilarity) {
      score = c.score * p.success_rate();
    }
    ranked.push_back(Ranked{c.id, score});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });

  if (strategy == Selection::kEpsilonGreedy && ranked.size() > k) {
    // With probability epsilon, swap a tail candidate into the last slot so
    // unproven prompts accumulate outcome data.
    if (rng_.Bernoulli(options_.epsilon)) {
      size_t tail = k + rng_.NextBelow(ranked.size() - k);
      std::swap(ranked[k - 1], ranked[tail]);
    }
  }

  for (size_t i = 0; i < ranked.size() && out.size() < k; ++i) {
    const StoredPrompt& p = prompts_[ranked[i].id];
    out.push_back(llm::FewShotExample{p.input, p.output});
    last_selected_ids_.push_back(p.id);
  }
  return out;
}

void PromptStore::RecordOutcome(uint64_t id, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= prompts_.size()) return;
  ++prompts_[id].uses;
  if (success) ++prompts_[id].successes;
}

std::optional<StoredPrompt> PromptStore::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= prompts_.size() || !live_[id]) return std::nullopt;
  return prompts_[id];
}

}  // namespace llmdm::optimize
