#include "core/optimize/prompt_store.h"

#include <algorithm>

#include "durability/format.h"
#include "durability/store.h"

namespace llmdm::optimize {

uint64_t PromptStore::Add(const std::string& input, const std::string& output) {
  durability::MutationGuard guard = durable_ != nullptr
                                        ? durable_->BeginMutation()
                                        : durability::MutationGuard();
  std::lock_guard<std::mutex> lock(mu_);
  StoredPrompt p;
  p.id = prompts_.size();
  p.input = input;
  p.output = output;
  prompts_.push_back(p);
  live_.push_back(true);
  index_.Add(p.id, embedder_.Embed(input)).ok();
  ++live_count_;
  std::string rec;
  durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kAdd));
  durability::AppendString(&rec, input);
  durability::AppendString(&rec, output);
  LogWal(guard, std::move(rec));
  EvictIfNeeded(guard);
  return p.id;
}

void PromptStore::EvictIfNeeded(const durability::MutationGuard& guard) {
  while (live_count_ > options_.capacity) {
    double worst = 1e300;
    size_t victim = prompts_.size();
    for (size_t i = 0; i < prompts_.size(); ++i) {
      if (!live_[i]) continue;
      // Budgeted retention by smoothed success rate: proven failures
      // (rate << 0.5) go first, fresh prompts sit at the 0.5 prior and
      // outrank them, proven earners stay.
      double score = prompts_[i].success_rate();
      if (score < worst) {
        worst = score;
        victim = i;
      }
    }
    if (victim == prompts_.size()) return;
    live_[victim] = false;
    index_.Remove(victim).ok();
    --live_count_;
    std::string rec;
    durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kEvict));
    durability::AppendU64(&rec, victim);
    LogWal(guard, std::move(rec));
  }
}

std::vector<llm::FewShotExample> PromptStore::Select(const std::string& query,
                                                     size_t k,
                                                     Selection strategy) {
  std::lock_guard<std::mutex> lock(mu_);
  last_selected_ids_.clear();
  std::vector<llm::FewShotExample> out;
  if (live_count_ == 0 || k == 0) return out;

  // Over-fetch then re-rank by the strategy's score.
  size_t fetch = std::min(live_count_, k * 4 + 4);
  auto candidates = index_.Search(embedder_.Embed(query), fetch);

  struct Ranked {
    uint64_t id;
    double score;
  };
  std::vector<Ranked> ranked;
  for (const auto& c : candidates) {
    if (!live_[c.id]) continue;
    const StoredPrompt& p = prompts_[c.id];
    double score = c.score;
    if (strategy != Selection::kSimilarity) {
      score = c.score * p.success_rate();
    }
    ranked.push_back(Ranked{c.id, score});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });

  if (strategy == Selection::kEpsilonGreedy && ranked.size() > k) {
    // With probability epsilon, swap a tail candidate into the last slot so
    // unproven prompts accumulate outcome data.
    if (rng_.Bernoulli(options_.epsilon)) {
      size_t tail = k + rng_.NextBelow(ranked.size() - k);
      std::swap(ranked[k - 1], ranked[tail]);
    }
  }

  for (size_t i = 0; i < ranked.size() && out.size() < k; ++i) {
    const StoredPrompt& p = prompts_[ranked[i].id];
    out.push_back(llm::FewShotExample{p.input, p.output});
    last_selected_ids_.push_back(p.id);
  }
  return out;
}

void PromptStore::RecordOutcome(uint64_t id, bool success) {
  durability::MutationGuard guard = durable_ != nullptr
                                        ? durable_->BeginMutation()
                                        : durability::MutationGuard();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= prompts_.size()) return;
  ++prompts_[id].uses;
  if (success) ++prompts_[id].successes;
  std::string rec;
  durability::AppendU8(&rec, static_cast<uint8_t>(WalOp::kOutcome));
  durability::AppendU64(&rec, id);
  durability::AppendU8(&rec, success ? 1 : 0);
  LogWal(guard, std::move(rec));
}

std::optional<StoredPrompt> PromptStore::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= prompts_.size() || !live_[id]) return std::nullopt;
  return prompts_[id];
}

void PromptStore::AttachDurability(durability::DurableStore* store) {
  durable_ = store;
}

void PromptStore::LogWal(const durability::MutationGuard& guard,
                         std::string payload) {
  if (durable_ == nullptr) return;
  // See SemanticCache::LogWal: an aborted append is the harness's injected
  // crash; real I/O failures surface at Sync/Checkpoint.
  durable_->Append(guard, payload).ok();
}

void PromptStore::ResetToEmpty() {
  prompts_.clear();
  live_.clear();
  last_selected_ids_.clear();
  live_count_ = 0;
  index_ = vectordb::FlatIndex();
  // Reseed: a recovered store explores exactly like a fresh one, so two
  // processes recovered from the same files select identically.
  rng_ = common::Rng(options_.seed);
}

common::Status PromptStore::SaveSnapshot(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  durability::AppendU64(out, prompts_.size());
  for (size_t i = 0; i < prompts_.size(); ++i) {
    const StoredPrompt& p = prompts_[i];
    durability::AppendU8(out, live_[i] ? 1 : 0);
    durability::AppendString(out, p.input);
    durability::AppendString(out, p.output);
    durability::AppendU64(out, p.uses);
    durability::AppendU64(out, p.successes);
  }
  return common::Status::Ok();
}

common::Status PromptStore::LoadSnapshot(durability::ByteReader& in) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t count = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU64(&count));
  prompts_.reserve(count);
  live_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t live = 0;
    StoredPrompt p;
    p.id = i;
    LLMDM_RETURN_IF_ERROR(in.ReadU8(&live));
    LLMDM_RETURN_IF_ERROR(in.ReadString(&p.input));
    LLMDM_RETURN_IF_ERROR(in.ReadString(&p.output));
    uint64_t uses = 0, successes = 0;
    LLMDM_RETURN_IF_ERROR(in.ReadU64(&uses));
    LLMDM_RETURN_IF_ERROR(in.ReadU64(&successes));
    p.uses = static_cast<size_t>(uses);
    p.successes = static_cast<size_t>(successes);
    if (live != 0) {
      index_.Add(i, embedder_.Embed(p.input)).ok();
      ++live_count_;
    }
    prompts_.push_back(std::move(p));
    live_.push_back(live != 0);
  }
  return common::Status::Ok();
}

common::Status PromptStore::ApplyWalRecord(std::string_view payload) {
  durability::ByteReader in(payload);
  uint8_t op = 0;
  LLMDM_RETURN_IF_ERROR(in.ReadU8(&op));
  std::lock_guard<std::mutex> lock(mu_);
  switch (static_cast<WalOp>(op)) {
    case WalOp::kAdd: {
      StoredPrompt p;
      p.id = prompts_.size();
      LLMDM_RETURN_IF_ERROR(in.ReadString(&p.input));
      LLMDM_RETURN_IF_ERROR(in.ReadString(&p.output));
      index_.Add(p.id, embedder_.Embed(p.input)).ok();
      prompts_.push_back(std::move(p));
      live_.push_back(true);
      ++live_count_;
      return common::Status::Ok();
    }
    case WalOp::kEvict: {
      uint64_t id = 0;
      LLMDM_RETURN_IF_ERROR(in.ReadU64(&id));
      if (id >= prompts_.size() || !live_[id]) {
        return common::Status::InvalidArgument(
            "prompt WAL evict of missing/dead slot " + std::to_string(id));
      }
      live_[id] = false;
      index_.Remove(id).ok();
      --live_count_;
      return common::Status::Ok();
    }
    case WalOp::kOutcome: {
      uint64_t id = 0;
      uint8_t success = 0;
      LLMDM_RETURN_IF_ERROR(in.ReadU64(&id));
      LLMDM_RETURN_IF_ERROR(in.ReadU8(&success));
      if (id >= prompts_.size()) {
        return common::Status::InvalidArgument(
            "prompt WAL outcome for missing slot " + std::to_string(id));
      }
      ++prompts_[id].uses;
      if (success != 0) ++prompts_[id].successes;
      return common::Status::Ok();
    }
  }
  return common::Status::InvalidArgument("unknown prompt WAL op " +
                                         std::to_string(op));
}

}  // namespace llmdm::optimize
