#ifndef LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_
#define LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_

#include "llm/model.h"
#include "serve/server.h"

namespace llmdm::optimize {

class SemanticCache;

/// Builds a serve::BatchCacheProbe over `cache`: one SubmitBatch worth of
/// requests is embedded into a contiguous arena and scored through the SIMD
/// distance kernels in a single pass (SemanticCache::LookupBatch), instead
/// of paying per-request embedding + lock + probe overhead. Hit responses
/// are labeled `spec.name + "+cache"` and the cache's savings ledger is
/// credited with the avoided input cost priced from `spec`, mirroring what
/// CachedLlm::Complete books on a hit.
///
/// The cache must outlive the returned callable (which the Server stores in
/// its Options). This lives in optimize/ rather than serve/ so the server
/// keeps no dependency on the caching layer: it only ever sees the
/// std::function.
serve::BatchCacheProbe MakeBatchCacheProbe(SemanticCache* cache,
                                           llm::ModelSpec spec);

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_
