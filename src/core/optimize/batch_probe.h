#ifndef LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_
#define LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_

#include "llm/model.h"
#include "serve/server.h"

namespace llmdm::optimize {

class SemanticCache;

/// Builds a serve::BatchCacheProbe over `cache`: one SubmitBatch worth of
/// requests is embedded into a contiguous arena and scored through the SIMD
/// distance kernels in a single pass (SemanticCache::LookupBatch), instead
/// of paying per-request embedding + lock + probe overhead. Hit responses
/// are labeled `spec.name + "+cache"` and the cache's savings ledger is
/// credited with the avoided input cost priced from `spec`, mirroring what
/// CachedLlm::Complete books on a hit.
///
/// The cache must outlive the returned callable (which the Server stores in
/// its Options). This lives in optimize/ rather than serve/ so the server
/// keeps no dependency on the caching layer: it only ever sees the
/// std::function.
///
/// `price_at_cached_tier`: credit each hit's avoided input spend at
/// `spec.cached_input_price_per_1k` instead of list. Set this when the
/// server runs with continuous batching on — the call a hit avoided would
/// have ridden a batch, and an exact-duplicate prompt in a batch bills its
/// whole input at the cached tier, so crediting list price would overstate
/// the savings. Defaults off, preserving the historical (list-price)
/// ledger for unbatched deployments.
serve::BatchCacheProbe MakeBatchCacheProbe(SemanticCache* cache,
                                           llm::ModelSpec spec,
                                           bool price_at_cached_tier = false);

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_BATCH_PROBE_H_
