#ifndef LLMDM_CORE_OPTIMIZE_DECOMPOSITION_H_
#define LLMDM_CORE_OPTIMIZE_DECOMPOSITION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/nl2sql_workload.h"
#include "llm/model.h"

namespace llmdm::optimize {

/// The decomposed form of one natural-language query (Fig. 7): a list of
/// atomic sub-questions plus the operator that recombines their answers.
struct DecomposedQuery {
  std::vector<std::string> sub_questions;
  data::Combiner combiner = data::Combiner::kNone;

  bool atomic() const { return sub_questions.size() <= 1; }
};

/// Splits a stadium-family question into its atomic sub-questions.
/// "…concerts in 2014 or had sports meetings in 2015?" becomes
/// {"stadiums that had concerts in 2014", "stadiums that had sports meetings
/// in 2015"} + kOr. Atomic questions come back as a single unit.
common::Result<DecomposedQuery> DecomposeQuestion(const std::string& question);

/// Recombines per-sub-question SQL into the final query using set algebra:
/// kOr -> UNION, kAnd -> INTERSECT, kAndNot -> EXCEPT. The recombination is
/// client-side (no LLM involved), which is why decomposition can raise
/// accuracy: the model only ever sees atomic questions.
std::string RecombineSql(const std::vector<std::string>& sub_sql,
                         data::Combiner combiner);

/// The plan for answering a batch of NL2SQL queries with minimal LLM spend
/// (Sec. III-B.1 "query decomposition and combination").
struct BatchPlan {
  struct Item {
    size_t query_index = 0;
    bool decomposed = false;
    /// Unit texts this query needs (its own text, or its sub-questions).
    std::vector<std::string> units;
    data::Combiner combiner = data::Combiner::kNone;
  };
  std::vector<Item> items;
  /// Deduplicated unit texts = the LLM calls that will actually be made.
  std::vector<std::string> unique_units;
  /// Estimated input tokens under this plan (before combination).
  size_t estimated_tokens = 0;
};

/// Result of executing a batch plan.
struct BatchExecution {
  /// Final SQL per input query (index-aligned with the input).
  std::vector<std::string> sql;
  size_t llm_calls = 0;
  common::Money cost;
  /// ExecuteBatched only: input tokens billed at the provider's cached tier
  /// (the shared prompt head the prefix cache amortized) and the list-price
  /// spend those tokens avoided.
  size_t prefix_cached_tokens = 0;
  common::Money prefix_saved;
};

/// Plans and executes batched NL2SQL translation with sub-query
/// deduplication and prompt combination.
class QueryBatchOptimizer {
 public:
  struct Options {
    /// Decompose a query when the amortized cost of its (shared) sub-queries
    /// beats its direct cost; `false` forces all-direct (the Table II
    /// "Origin" column).
    bool enable_decomposition = true;
    /// Merge prompts that share instructions+examples so the shared tokens
    /// are billed once (the Table II "+Combination" column).
    bool enable_combination = false;
    /// Few-shot examples attached to every translation prompt.
    std::vector<llm::FewShotExample> examples;
    std::string instructions =
        "Translate the question into SQL over the stadium schema "
        "(stadium(id, name, capacity, city), concert(id, stadium_id, year, "
        "attendance), sports_meeting(id, stadium_id, year)).";
  };

  explicit QueryBatchOptimizer(const Options& options) : options_(options) {}

  /// Chooses direct vs decomposed per query. A query is decomposed when
  /// sum over its sub-questions of tokens(sub)/uses(sub) < tokens(direct) —
  /// i.e. sharing amortizes the extra prompts (the Fig. 7 trade-off).
  BatchPlan Plan(const std::vector<std::string>& questions) const;

  /// Executes the plan against `model`: one (possibly combined) call per
  /// unique unit, then client-side recombination. Usage is metered exactly:
  /// combined prompts bill their shared prefix once.
  common::Result<BatchExecution> Execute(
      const BatchPlan& plan, llm::LlmModel& model,
      llm::UsageMeter* meter = nullptr) const;

  /// Executes the plan as ONE LlmModel::CompleteBatch call over the unique
  /// units. Every unit prompt shares instructions + examples, so a model
  /// with a cached input tier (ModelSpec::cached_input_price_per_1k > 0)
  /// bills that shared head once at list price and every repetition at the
  /// cached tier — the serving-side analogue of the Table II combination
  /// column, without rewriting the prompts. Answers are identical to
  /// Execute()'s; only billing and latency change. The meter's batch ledger
  /// itemizes the savings against list price.
  common::Result<BatchExecution> ExecuteBatched(
      const BatchPlan& plan, llm::LlmModel& model,
      llm::UsageMeter* meter = nullptr) const;

  const Options& options() const { return options_; }

 private:
  llm::Prompt MakeUnitPrompt(const std::string& unit) const;

  Options options_;
};

}  // namespace llmdm::optimize

#endif  // LLMDM_CORE_OPTIMIZE_DECOMPOSITION_H_
