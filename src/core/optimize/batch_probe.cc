#include "core/optimize/batch_probe.h"

#include <string_view>
#include <utility>
#include <vector>

#include "common/money.h"
#include "core/optimize/semantic_cache.h"
#include "llm/prompt.h"

namespace llmdm::optimize {

serve::BatchCacheProbe MakeBatchCacheProbe(SemanticCache* cache,
                                           llm::ModelSpec spec,
                                           bool price_at_cached_tier) {
  // The effective price a hit's avoided call would have paid for input:
  // list for per-call serving, the cached tier when the deployment batches
  // (an exact-duplicate prompt in a batch bills its whole input cached).
  const common::Money input_price =
      price_at_cached_tier && spec.cached_input_price_per_1k.micros() > 0
          ? spec.cached_input_price_per_1k
          : spec.input_price_per_1k;
  return [cache, spec = std::move(spec), input_price](
             const std::vector<const serve::Request*>& batch)
             -> std::vector<serve::BatchProbeOutcome> {
    std::vector<std::string_view> queries;
    std::vector<common::Money> avoided;
    queries.reserve(batch.size());
    avoided.reserve(batch.size());
    for (const serve::Request* req : batch) {
      queries.push_back(req->input);
      // The avoided input cost of a hit, priced exactly as CachedLlm's
      // per-call probe prices it — so the savings ledger doesn't depend on
      // whether a request went through the batched or the per-call path.
      size_t input_tokens =
          llm::MakePrompt(req->skill, req->input).CountInputTokens();
      avoided.push_back(common::Money::FromMicros(
          input_price.micros() *
          static_cast<int64_t>(input_tokens) / 1000));
    }
    std::vector<std::optional<SemanticCache::Hit>> hits =
        cache->LookupBatch(queries, avoided, spec.output_price_per_1k);
    std::vector<serve::BatchProbeOutcome> out(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!hits[i].has_value()) continue;
      out[i].hit = true;
      out[i].response = std::move(hits[i]->response);
      out[i].model = spec.name + "+cache";
    }
    return out;
  };
}

}  // namespace llmdm::optimize
