#ifndef LLMDM_CORE_TRANSFORM_PIPELINE_REC_H_
#define LLMDM_CORE_TRANSFORM_PIPELINE_REC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "llm/model.h"
#include "ml/logistic.h"

namespace llmdm::transform {

/// Data-preparation operators (Sec. II-B.4). Each transforms a feature table
/// ahead of training a downstream classifier.
enum class PrepOp {
  kImputeMean,       // NULL numeric cells -> column mean
  kStandardize,      // zero mean / unit variance
  kClipOutliers,     // winsorize at mean +/- 3 sigma
  kDropLowVariance,  // remove near-constant feature columns
  kAddInteractions,  // pairwise products of the top-2 variance features
};

std::string_view PrepOpName(PrepOp op);

/// Applies one operator to a copy of `table` (label column untouched).
common::Result<data::Table> ApplyPrepOp(const data::Table& table,
                                        const std::string& label_column,
                                        PrepOp op);

/// One candidate pipeline and its measured downstream quality.
struct PipelineCandidate {
  std::vector<PrepOp> ops;
  double holdout_accuracy = 0.0;
};

/// Recommends a data-preparation pipeline by beam search over operator
/// sequences, scoring each candidate by the holdout accuracy of a logistic
/// model trained on the transformed table. An LLM (optional) prunes the
/// operator set up front from a profile of the data — the paper's "LLMs
/// recommend candidate pipelines to shrink the search space".
class PipelineRecommender {
 public:
  struct Options {
    size_t beam_width = 3;
    size_t max_depth = 3;
    double holdout_fraction = 0.3;
    uint64_t seed = 99;
    /// When set, an LLM call is made with the data profile; its metered cost
    /// models the recommendation step (the simulated model returns a
    /// deterministic acknowledgement; pruning itself is profile-driven).
    std::shared_ptr<llm::LlmModel> advisor;
  };

  explicit PipelineRecommender(const Options& options) : options_(options) {}

  /// Returns candidates sorted best-first; front() is the recommendation.
  common::Result<std::vector<PipelineCandidate>> Recommend(
      const data::Table& table, const std::string& label_column,
      llm::UsageMeter* meter = nullptr) const;

 private:
  double Evaluate(const data::Table& table, const std::string& label_column)
      const;

  Options options_;
};

}  // namespace llmdm::transform

#endif  // LLMDM_CORE_TRANSFORM_PIPELINE_REC_H_
