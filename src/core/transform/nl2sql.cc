#include "core/transform/nl2sql.h"

#include "core/optimize/decomposition.h"
#include "sql/parser.h"

namespace llmdm::transform {

common::Result<std::string> Nl2SqlEngine::CallModel(const std::string& input,
                                                    llm::UsageMeter* meter) {
  llm::Prompt p;
  p.task_tag = "nl2sql";
  p.instructions =
      "Translate the question into SQL over the stadium schema.";
  p.input = input;
  if (store_ != nullptr) {
    p.examples = store_->Select(input, options_.num_examples,
                                optimize::PromptStore::Selection::kUtilityWeighted);
  }
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));
  // Route outcome feedback (executability as a cheap success proxy) to the
  // examples that were used.
  if (store_ != nullptr) {
    bool ok = sql::ParseStatement(c.text).ok();
    for (uint64_t id : store_->last_selected_ids()) {
      store_->RecordOutcome(id, ok);
    }
  }
  return c.text;
}

common::Result<Nl2SqlResult> Nl2SqlEngine::Translate(
    const std::string& question, sql::Database& db, llm::UsageMeter* meter) {
  Nl2SqlResult result;
  LLMDM_ASSIGN_OR_RETURN(result.sql, CallModel(question, meter));
  result.parse_valid = sql::ParseStatement(result.sql).ok();

  // Chain-of-thought fallback: translate atomic sub-questions and recombine.
  if (!result.parse_valid && options_.enable_cot_fallback) {
    auto decomposed = optimize::DecomposeQuestion(question);
    if (decomposed.ok() && decomposed->sub_questions.size() > 1) {
      std::vector<std::string> parts;
      bool all_valid = true;
      for (const std::string& sub : decomposed->sub_questions) {
        LLMDM_ASSIGN_OR_RETURN(std::string sub_sql, CallModel(sub, meter));
        all_valid = all_valid && sql::ParseStatement(sub_sql).ok();
        parts.push_back(std::move(sub_sql));
      }
      if (all_valid) {
        result.sql = optimize::RecombineSql(parts, decomposed->combiner);
        result.parse_valid = sql::ParseStatement(result.sql).ok();
        result.used_decomposition = true;
      }
    }
  }

  if (options_.execute && result.parse_valid) {
    auto executed = db.Query(result.sql);
    if (executed.ok()) {
      result.executed = true;
      result.result = std::move(*executed);
    }
  }
  return result;
}

}  // namespace llmdm::transform
