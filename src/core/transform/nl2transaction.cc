#include "core/transform/nl2transaction.h"

#include "common/string_util.h"

namespace llmdm::transform {

common::Result<Nl2TxnResult> Nl2TransactionEngine::Run(
    const std::string& request, sql::Database& db, llm::UsageMeter* meter) {
  llm::Prompt p;
  p.task_tag = "nl2txn";
  p.instructions =
      "Translate the payment request into a SQL transaction over "
      "accounts(owner, balance) and transfers(sender, receiver, amount). "
      "Emit debit, credit and ledger insert per transfer.";
  p.input = request;
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));

  Nl2TxnResult result;
  for (const std::string& stmt : common::Split(c.text, '\n')) {
    std::string_view trimmed = common::Trim(stmt);
    if (trimmed.empty()) continue;
    std::string s(trimmed);
    if (!s.empty() && s.back() == ';') s.pop_back();
    result.statements.push_back(std::move(s));
  }
  if (result.statements.empty()) {
    result.failure = "model produced no statements";
    return result;
  }
  if (options_.structural_check && result.statements.size() % 3 != 0) {
    result.failure = "structural check failed: statement count not a "
                     "multiple of 3 (debit+credit+ledger per transfer)";
    return result;
  }
  auto outcome = db.ExecuteAtomically(result.statements);
  if (!outcome.ok()) {
    result.failure = outcome.status().ToString();
    return result;
  }
  result.committed = true;
  result.affected_rows = *outcome;
  return result;
}

}  // namespace llmdm::transform
