#ifndef LLMDM_CORE_TRANSFORM_NL2SQL_H_
#define LLMDM_CORE_TRANSFORM_NL2SQL_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/optimize/prompt_store.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::transform {

/// Outcome of one NL->SQL translation.
struct Nl2SqlResult {
  std::string sql;
  bool used_decomposition = false;
  bool parse_valid = false;    // predicted SQL parses
  bool executed = false;       // predicted SQL executed without error
  data::Table result;          // execution output when executed
};

/// Schema-aware NL2SQL engine (Sec. II-B.1): prompt = schema description +
/// similarity-selected historical examples + question; chain-of-thought
/// fallback decomposes a compound question into atomic sub-questions,
/// translates each, and recombines with set algebra when the direct attempt
/// produces invalid SQL.
class Nl2SqlEngine {
 public:
  struct Options {
    size_t num_examples = 4;
    bool enable_cot_fallback = true;
    /// Validate by executing against the database (vs parse-only).
    bool execute = true;
  };

  /// `store` may be null (no example selection / outcome feedback).
  Nl2SqlEngine(std::shared_ptr<llm::LlmModel> model,
               optimize::PromptStore* store, const Options& options)
      : model_(std::move(model)), store_(store), options_(options) {}

  /// Translates `question` and (optionally) executes it on `db`.
  common::Result<Nl2SqlResult> Translate(const std::string& question,
                                         sql::Database& db,
                                         llm::UsageMeter* meter = nullptr);

 private:
  common::Result<std::string> CallModel(const std::string& input,
                                        llm::UsageMeter* meter);

  std::shared_ptr<llm::LlmModel> model_;
  optimize::PromptStore* store_;
  Options options_;
};

}  // namespace llmdm::transform

#endif  // LLMDM_CORE_TRANSFORM_NL2SQL_H_
