#include "core/transform/table_transform.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "data/csv.h"

namespace llmdm::transform {
namespace {

using data::ColumnType;
using data::Value;

// Classifies a cell string for type-consistency scoring / ingestion.
enum class CellKind { kEmpty, kInt, kDouble, kBool, kDate, kText };

CellKind ClassifyCell(const std::string& cell) {
  if (common::Trim(cell).empty()) return CellKind::kEmpty;
  int64_t i;
  if (common::ParseInt64(cell, &i)) return CellKind::kInt;
  double d;
  if (common::ParseDouble(cell, &d)) return CellKind::kDouble;
  std::string lower = common::ToLower(cell);
  if (lower == "true" || lower == "false") return CellKind::kBool;
  data::Date date;
  if (data::ParseIsoDate(cell, &date)) return CellKind::kDate;
  return CellKind::kText;
}

Value CellToValue(const std::string& cell, ColumnType type) {
  if (common::Trim(cell).empty()) return Value::Null();
  switch (type) {
    case ColumnType::kInt64: {
      int64_t v = 0;
      common::ParseInt64(cell, &v);
      return Value::Int(v);
    }
    case ColumnType::kDouble: {
      double v = 0;
      common::ParseDouble(cell, &v);
      return Value::Real(v);
    }
    case ColumnType::kBool:
      return Value::Bool(common::ToLower(cell) == "true");
    case ColumnType::kDate: {
      data::Date d;
      data::ParseIsoDate(cell, &d);
      return Value::MakeDate(d);
    }
    default:
      return Value::Text(cell);
  }
}

// Narrowest type that fits every non-empty cell of `cells`.
ColumnType InferCellType(const std::vector<std::string>& cells) {
  bool any = false;
  bool all_int = true, all_double = true, all_bool = true, all_date = true;
  for (const std::string& c : cells) {
    CellKind kind = ClassifyCell(c);
    if (kind == CellKind::kEmpty) continue;
    any = true;
    all_int = all_int && kind == CellKind::kInt;
    all_double = all_double &&
                 (kind == CellKind::kInt || kind == CellKind::kDouble);
    all_bool = all_bool && kind == CellKind::kBool;
    all_date = all_date && kind == CellKind::kDate;
  }
  if (!any) return ColumnType::kText;
  if (all_bool) return ColumnType::kBool;
  if (all_int) return ColumnType::kInt64;
  if (all_double) return ColumnType::kDouble;
  if (all_date) return ColumnType::kDate;
  return ColumnType::kText;
}

}  // namespace

// ---- XML -> table -------------------------------------------------------------

common::Result<data::Table> XmlToTable(const data::XmlNode& root) {
  if (root.children.empty()) {
    return common::Status::InvalidArgument(
        "XML root has no record children to relationalize");
  }
  // Records = the majority child tag (robust to stray metadata elements).
  std::map<std::string, size_t> tag_counts;
  for (const auto& child : root.children) ++tag_counts[child->tag];
  std::string record_tag;
  size_t best = 0;
  for (const auto& [tag, n] : tag_counts) {
    if (n > best) {
      best = n;
      record_tag = tag;
    }
  }
  std::vector<const data::XmlNode*> records = root.FindChildren(record_tag);

  // Columns: attributes first (document order), then child tags.
  std::vector<std::string> columns;
  std::set<std::string> seen;
  for (const data::XmlNode* record : records) {
    for (const auto& [attr, value] : record->attributes) {
      if (seen.insert(attr).second) columns.push_back(attr);
    }
    for (const auto& child : record->children) {
      if (seen.insert(child->tag).second) columns.push_back(child->tag);
    }
  }
  if (columns.empty()) {
    return common::Status::InvalidArgument(
        "XML records carry no attributes or child elements");
  }

  // Collect raw cells, then infer per-column types.
  std::vector<std::vector<std::string>> cells(records.size());
  for (size_t r = 0; r < records.size(); ++r) {
    cells[r].resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      std::string_view attr = records[r]->Attribute(columns[c]);
      if (!attr.empty()) {
        cells[r][c] = std::string(attr);
        continue;
      }
      const data::XmlNode* child = records[r]->FindChild(columns[c]);
      if (child != nullptr) cells[r][c] = std::string(common::Trim(child->text));
    }
  }
  data::Schema schema;
  std::vector<ColumnType> types;
  for (size_t c = 0; c < columns.size(); ++c) {
    std::vector<std::string> column_cells;
    for (size_t r = 0; r < records.size(); ++r) column_cells.push_back(cells[r][c]);
    types.push_back(InferCellType(column_cells));
    schema.AddColumn(data::Column{columns[c], types[c], true});
  }
  data::Table table(record_tag, schema);
  for (size_t r = 0; r < records.size(); ++r) {
    data::Row row;
    for (size_t c = 0; c < columns.size(); ++c) {
      row.push_back(CellToValue(cells[r][c], types[c]));
    }
    LLMDM_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

// ---- JSON -> table -------------------------------------------------------------

namespace {

void FlattenObject(const data::JsonValue& obj, const std::string& prefix,
                   std::vector<std::pair<std::string, std::string>>* out) {
  for (const auto& [key, value] : obj.members()) {
    std::string name = prefix.empty() ? key : prefix + "." + key;
    switch (value.kind()) {
      case data::JsonValue::Kind::kObject:
        FlattenObject(value, name, out);
        break;
      case data::JsonValue::Kind::kNull:
        out->emplace_back(name, "");
        break;
      case data::JsonValue::Kind::kArray:
        out->emplace_back(name, value.ToString());
        break;
      case data::JsonValue::Kind::kString:
        out->emplace_back(name, value.AsString());
        break;
      default:
        out->emplace_back(name, value.ToString());
    }
  }
}

}  // namespace

common::Result<data::Table> JsonToTable(const data::JsonValue& array) {
  if (!array.is_array() || array.items().empty()) {
    return common::Status::InvalidArgument(
        "expected a non-empty JSON array of objects");
  }
  std::vector<std::string> columns;
  std::set<std::string> seen;
  std::vector<std::vector<std::pair<std::string, std::string>>> flat_rows;
  for (const data::JsonValue& item : array.items()) {
    if (!item.is_object()) {
      return common::Status::InvalidArgument(
          "JSON array elements must be objects");
    }
    std::vector<std::pair<std::string, std::string>> flat;
    FlattenObject(item, "", &flat);
    for (const auto& [key, value] : flat) {
      if (seen.insert(key).second) columns.push_back(key);
    }
    flat_rows.push_back(std::move(flat));
  }
  std::vector<std::vector<std::string>> cells(flat_rows.size());
  for (size_t r = 0; r < flat_rows.size(); ++r) {
    cells[r].resize(columns.size());
    for (const auto& [key, value] : flat_rows[r]) {
      auto it = std::find(columns.begin(), columns.end(), key);
      cells[r][static_cast<size_t>(it - columns.begin())] = value;
    }
  }
  data::Schema schema;
  std::vector<ColumnType> types;
  for (size_t c = 0; c < columns.size(); ++c) {
    std::vector<std::string> column_cells;
    for (size_t r = 0; r < cells.size(); ++r) column_cells.push_back(cells[r][c]);
    types.push_back(InferCellType(column_cells));
    schema.AddColumn(data::Column{columns[c], types[c], true});
  }
  data::Table table("json", schema);
  for (size_t r = 0; r < cells.size(); ++r) {
    data::Row row;
    for (size_t c = 0; c < columns.size(); ++c) {
      row.push_back(CellToValue(cells[r][c], types[c]));
    }
    LLMDM_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

// ---- operator synthesis ---------------------------------------------------------

std::string_view TableOpName(TableOp op) {
  switch (op) {
    case TableOp::kPromoteHeader:
      return "promote_header";
    case TableOp::kTranspose:
      return "transpose";
    case TableOp::kFillDown:
      return "fill_down";
    case TableOp::kDropEmptyRows:
      return "drop_empty_rows";
    case TableOp::kDropEmptyColumns:
      return "drop_empty_columns";
    case TableOp::kUnpivot:
      return "unpivot";
  }
  return "?";
}

Grid ApplyOp(const Grid& grid, TableOp op) {
  if (grid.empty()) return grid;
  switch (op) {
    case TableOp::kPromoteHeader:
      return grid;  // header interpretation is GridToTable's job; no-op here
    case TableOp::kTranspose: {
      size_t cols = 0;
      for (const auto& row : grid) cols = std::max(cols, row.size());
      Grid out(cols, std::vector<std::string>(grid.size()));
      for (size_t r = 0; r < grid.size(); ++r) {
        for (size_t c = 0; c < grid[r].size(); ++c) out[c][r] = grid[r][c];
      }
      return out;
    }
    case TableOp::kFillDown: {
      Grid out = grid;
      for (size_t r = 1; r < out.size(); ++r) {
        for (size_t c = 0; c < out[r].size(); ++c) {
          if (common::Trim(out[r][c]).empty() && c < out[r - 1].size()) {
            out[r][c] = out[r - 1][c];
          }
        }
      }
      return out;
    }
    case TableOp::kDropEmptyRows: {
      Grid out;
      for (const auto& row : grid) {
        bool empty = true;
        for (const auto& cell : row) empty = empty && common::Trim(cell).empty();
        if (!empty) out.push_back(row);
      }
      return out;
    }
    case TableOp::kDropEmptyColumns: {
      size_t cols = 0;
      for (const auto& row : grid) cols = std::max(cols, row.size());
      std::vector<bool> keep(cols, false);
      for (const auto& row : grid) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (!common::Trim(row[c]).empty()) keep[c] = true;
        }
      }
      Grid out;
      for (const auto& row : grid) {
        std::vector<std::string> nr;
        for (size_t c = 0; c < cols; ++c) {
          if (keep[c]) nr.push_back(c < row.size() ? row[c] : "");
        }
        out.push_back(std::move(nr));
      }
      return out;
    }
    case TableOp::kUnpivot: {
      // Wide -> long: header row (key, attr1, attr2, ...) becomes rows of
      // (key, attribute, value).
      if (grid.size() < 2 || grid[0].size() < 3) return grid;
      Grid out;
      out.push_back({grid[0][0], "attribute", "value"});
      for (size_t r = 1; r < grid.size(); ++r) {
        for (size_t c = 1; c < grid[r].size(); ++c) {
          out.push_back({grid[r][0], grid[0][c], grid[r][c]});
        }
      }
      return out;
    }
  }
  return grid;
}

double RelationalScore(const Grid& grid) {
  if (grid.size() < 2) return 0.0;
  size_t cols = grid[0].size();
  if (cols == 0) return 0.0;
  for (const auto& row : grid) {
    if (row.size() != cols) return 0.05;  // ragged: barely relational
  }
  double score = 0.0;

  // Header plausibility: first row all non-empty distinct text.
  std::set<std::string> header(grid[0].begin(), grid[0].end());
  bool header_texty = true;
  for (const std::string& h : grid[0]) {
    CellKind kind = ClassifyCell(h);
    header_texty = header_texty && kind == CellKind::kText;
  }
  if (header.size() == cols && header_texty) score += 0.3;

  // Column type consistency over the body.
  double consistent = 0.0;
  size_t nonempty_cells = 0, total_cells = 0;
  for (size_t c = 0; c < cols; ++c) {
    std::map<CellKind, size_t> kinds;
    size_t n = 0;
    for (size_t r = 1; r < grid.size(); ++r) {
      ++total_cells;
      CellKind kind = ClassifyCell(grid[r][c]);
      if (kind == CellKind::kEmpty) continue;
      ++nonempty_cells;
      ++kinds[kind];
      ++n;
    }
    if (n == 0) continue;
    size_t mode = 0;
    for (const auto& [kind, count] : kinds) mode = std::max(mode, count);
    consistent += static_cast<double>(mode) / static_cast<double>(n);
  }
  score += 0.4 * consistent / static_cast<double>(cols);

  // Density: few empty cells.
  if (total_cells > 0) {
    score += 0.2 * static_cast<double>(nonempty_cells) /
             static_cast<double>(total_cells);
  }

  // Shape: relational tables are long, not wide.
  if (grid.size() - 1 >= cols) score += 0.1;

  // Duplicate body rows suggest a fabricated record (e.g. fill-down applied
  // to a blank trailing row) — penalize proportionally.
  std::set<std::string> distinct_rows;
  for (size_t r = 1; r < grid.size(); ++r) {
    std::string key;
    for (const auto& cell : grid[r]) {
      key += cell;
      key.push_back('\x1f');
    }
    distinct_rows.insert(std::move(key));
  }
  size_t body = grid.size() - 1;
  if (body > 0) {
    double dup_fraction =
        static_cast<double>(body - distinct_rows.size()) /
        static_cast<double>(body);
    score -= 0.3 * dup_fraction;
  }
  return score;
}

SynthesisResult SynthesizeRelationalization(const Grid& grid,
                                            size_t beam_width,
                                            size_t max_depth) {
  struct Candidate {
    std::vector<TableOp> program;
    Grid grid;
    double score;
  };
  const TableOp kOps[] = {TableOp::kTranspose,      TableOp::kFillDown,
                          TableOp::kDropEmptyRows,  TableOp::kDropEmptyColumns,
                          TableOp::kUnpivot};
  std::vector<Candidate> beam{{{}, grid, RelationalScore(grid)}};
  Candidate best = beam[0];
  for (size_t depth = 0; depth < max_depth; ++depth) {
    std::vector<Candidate> next;
    for (const Candidate& cand : beam) {
      for (TableOp op : kOps) {
        Candidate expanded;
        expanded.program = cand.program;
        expanded.program.push_back(op);
        expanded.grid = ApplyOp(cand.grid, op);
        if (expanded.grid.empty()) continue;
        expanded.score = RelationalScore(expanded.grid);
        // Tiny per-op penalty: prefer shorter programs at equal quality.
        expanded.score -= 0.01 * static_cast<double>(expanded.program.size());
        next.push_back(std::move(expanded));
      }
    }
    if (next.empty()) break;
    std::sort(next.begin(), next.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.score > b.score;
              });
    if (next.size() > beam_width) next.resize(beam_width);
    beam = std::move(next);
    if (beam[0].score > best.score) best = beam[0];
  }
  return SynthesisResult{best.program, best.grid, best.score};
}

common::Result<data::Table> GridToTable(const Grid& grid,
                                        const std::string& name) {
  if (grid.size() < 2) {
    return common::Status::InvalidArgument(
        "grid needs a header row and at least one data row");
  }
  size_t cols = grid[0].size();
  data::Schema schema;
  std::vector<ColumnType> types;
  for (size_t c = 0; c < cols; ++c) {
    std::vector<std::string> cells;
    for (size_t r = 1; r < grid.size(); ++r) {
      cells.push_back(c < grid[r].size() ? grid[r][c] : "");
    }
    types.push_back(InferCellType(cells));
    std::string header = common::Trim(grid[0][c]).empty()
                             ? common::StrFormat("col%zu", c)
                             : grid[0][c];
    schema.AddColumn(data::Column{header, types[c], true});
  }
  data::Table table(name, schema);
  for (size_t r = 1; r < grid.size(); ++r) {
    data::Row row;
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(
          CellToValue(c < grid[r].size() ? grid[r][c] : "", types[c]));
    }
    LLMDM_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace llmdm::transform
