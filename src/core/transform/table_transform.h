#ifndef LLMDM_CORE_TRANSFORM_TABLE_TRANSFORM_H_
#define LLMDM_CORE_TRANSFORM_TABLE_TRANSFORM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/json.h"
#include "data/table.h"
#include "data/xml.h"

namespace llmdm::transform {

/// --- Direct semi-structured -> relational (Fig. 4, left path) ------------
///
/// The "transform directly" approach of Sec. II-B.2: extract the schema from
/// the document structure, then populate rows.

/// XML whose root has repeated record children:
/// <patients><patient id=..><name>..</name>..</patient>...</patients>.
/// Columns = union of attributes and child-element tags across records;
/// types are inferred. Missing fields become NULL.
common::Result<data::Table> XmlToTable(const data::XmlNode& root);

/// JSON array of objects. Nested objects flatten to dotted column names
/// ("address.city"); missing keys become NULL; arrays-of-scalars serialize.
common::Result<data::Table> JsonToTable(const data::JsonValue& array);

/// --- Operator-synthesis relationalization (Fig. 4, right path) -----------
///
/// The "code synthesis" approach: find the operator sequence that turns a
/// messy spreadsheet grid into a relational table, in the spirit of
/// Auto-Tables [30]. The search is a beam search over operator programs
/// scored by how relational the result looks; an LLM can seed the operator
/// priors but the synthesis itself is deterministic.

using Grid = std::vector<std::vector<std::string>>;

enum class TableOp {
  kPromoteHeader,    // first row becomes the header
  kTranspose,
  kFillDown,         // empty cells inherit the value above (merged cells)
  kDropEmptyRows,
  kDropEmptyColumns,
  kUnpivot,          // wide->long: keep col 0 as key, melt remaining columns
};

std::string_view TableOpName(TableOp op);

/// Applies one operator (pure; the input grid is not modified).
Grid ApplyOp(const Grid& grid, TableOp op);

/// How relational a grid is, in [0,1]: rewards a plausible header row,
/// type-consistent columns, few empty cells, and more rows than columns.
double RelationalScore(const Grid& grid);

struct SynthesisResult {
  std::vector<TableOp> program;
  Grid transformed;
  double score = 0.0;
};

/// Beam search over operator sequences (up to `max_depth` ops, beam width
/// `beam_width`) maximizing RelationalScore.
SynthesisResult SynthesizeRelationalization(const Grid& grid,
                                            size_t beam_width = 8,
                                            size_t max_depth = 4);

/// Converts a grid whose first row is the header into a typed Table.
common::Result<data::Table> GridToTable(const Grid& grid,
                                        const std::string& name);

}  // namespace llmdm::transform

#endif  // LLMDM_CORE_TRANSFORM_TABLE_TRANSFORM_H_
