#ifndef LLMDM_CORE_TRANSFORM_COLUMN_PATTERN_H_
#define LLMDM_CORE_TRANSFORM_COLUMN_PATTERN_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace llmdm::transform {

/// --- Column pattern mining (Sec. II-B.3) ---------------------------------
///
/// A pattern is a token sequence over character classes; "Aug 14 2023" mines
/// to `<letter>{3} <digit>{2} <digit>{4}` — the paper's example. Patterns
/// generalize across a column's values and power both transformation
/// synthesis and data-quality (drift) validation.

struct PatternToken {
  enum class Kind { kLiteral, kDigits, kLetters };
  Kind kind = Kind::kLiteral;
  std::string literal;   // kLiteral only
  size_t min_len = 1;    // class tokens: observed length range
  size_t max_len = 1;

  bool operator==(const PatternToken&) const = default;
};

using Pattern = std::vector<PatternToken>;

/// Tokenizes one value into its exact pattern (runs of digits / letters /
/// single punctuation literals).
Pattern ValuePattern(std::string_view value);

/// Generalizes across all values: shared token structure with per-token
/// length ranges. Fails if the values disagree on structure.
common::Result<Pattern> MineColumnPattern(
    const std::vector<std::string>& values);

/// "<letter>{3} <digit>{1,2} <digit>{4}" rendering (paper notation).
std::string PatternToString(const Pattern& pattern);

/// Whether `value` structurally matches `pattern`.
bool MatchesPattern(const Pattern& pattern, std::string_view value);

/// --- Column transformation programs --------------------------------------
///
/// Synthesizes value-level reformatting programs from (source, target)
/// example pairs: the joinable-columns problem ("Aug 14 2023" vs
/// "8/14/2023"). Two program families cover the workloads: date reformatting
/// between known formats, and token rearrangement (permutation + separator
/// change, e.g. "Doe, John" -> "John Doe").

enum class DateStyle {
  kIso,         // 2023-08-14
  kSlashMDY,    // 8/14/2023
  kMonthDY,     // Aug 14 2023
  kDMonthY,     // 14 Aug 2023
};

/// Detects the date style of a value, if any.
common::Result<DateStyle> DetectDateStyle(std::string_view value);

/// Reformats a date value (any recognized style) into `target` style.
common::Result<std::string> ReformatDate(const std::string& value,
                                         DateStyle target);

/// A synthesized column transformation.
class ColumnTransform {
 public:
  /// Learns a transform from aligned (source, target) examples. Tries date
  /// reformatting first, then token rearrangement; fails if neither family
  /// explains all examples.
  static common::Result<ColumnTransform> Synthesize(
      const std::vector<std::pair<std::string, std::string>>& examples);

  /// Applies the learned program to a new value.
  common::Result<std::string> Apply(const std::string& value) const;

  /// Human-readable description ("date: month_d_y -> slash_mdy" or
  /// "tokens: [1,0] sep=' '").
  std::string Describe() const;

 private:
  enum class Family { kDate, kTokenRearrange };
  Family family_ = Family::kDate;
  // kDate
  DateStyle from_style_ = DateStyle::kIso;
  DateStyle to_style_ = DateStyle::kIso;
  // kTokenRearrange
  std::vector<size_t> permutation_;  // target token i = source token perm[i]
  std::string separator_ = " ";
};

/// --- Pattern-based data-quality validation --------------------------------
///
/// Mines the reference column's pattern once, then scores fresh batches:
/// the fraction of values still matching. A drop signals data/schema drift
/// (Sec. II-B.3's data-quality application).
class PatternValidator {
 public:
  /// `reference` is a clean sample of the column.
  static common::Result<PatternValidator> FromReference(
      const std::vector<std::string>& reference);

  struct Report {
    double match_rate = 1.0;
    size_t checked = 0;
    size_t mismatched = 0;
    /// Set when match_rate fell below the drift threshold: the column's
    /// format has changed and downstream models likely need retraining.
    bool drifted = false;
    std::vector<std::string> examples_of_mismatch;  // up to 5
  };

  Report Validate(const std::vector<std::string>& batch,
                  double drift_threshold = 0.9) const;

  const Pattern& pattern() const { return pattern_; }

 private:
  explicit PatternValidator(Pattern pattern) : pattern_(std::move(pattern)) {}
  Pattern pattern_;
};

}  // namespace llmdm::transform

#endif  // LLMDM_CORE_TRANSFORM_COLUMN_PATTERN_H_
