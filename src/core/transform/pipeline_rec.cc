#include "core/transform/pipeline_rec.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace llmdm::transform {
namespace {

using data::ColumnType;
using data::Value;

// Numeric feature column indexes (skips the label and non-numeric columns).
std::vector<size_t> NumericFeatureColumns(const data::Table& table,
                                          const std::string& label_column) {
  std::vector<size_t> out;
  auto label_idx = table.schema().Find(label_column);
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (label_idx.has_value() && c == *label_idx) continue;
    ColumnType t = table.schema().column(c).type;
    if (t == ColumnType::kInt64 || t == ColumnType::kDouble) out.push_back(c);
  }
  return out;
}

// (mean, stddev) of a numeric column, ignoring NULLs.
std::pair<double, double> ColumnStats(const data::Table& table, size_t col) {
  double sum = 0;
  size_t n = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;
    sum += v.AsDouble();
    ++n;
  }
  if (n == 0) return {0.0, 1.0};
  double mean = sum / static_cast<double>(n);
  double var = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;
    var += (v.AsDouble() - mean) * (v.AsDouble() - mean);
  }
  var /= static_cast<double>(n);
  return {mean, std::sqrt(std::max(var, 0.0))};
}

}  // namespace

std::string_view PrepOpName(PrepOp op) {
  switch (op) {
    case PrepOp::kImputeMean:
      return "impute_mean";
    case PrepOp::kStandardize:
      return "standardize";
    case PrepOp::kClipOutliers:
      return "clip_outliers";
    case PrepOp::kDropLowVariance:
      return "drop_low_variance";
    case PrepOp::kAddInteractions:
      return "add_interactions";
  }
  return "?";
}

common::Result<data::Table> ApplyPrepOp(const data::Table& table,
                                        const std::string& label_column,
                                        PrepOp op) {
  data::Table out = table;
  std::vector<size_t> features = NumericFeatureColumns(out, label_column);
  switch (op) {
    case PrepOp::kImputeMean: {
      for (size_t c : features) {
        auto [mean, stddev] = ColumnStats(out, c);
        bool integer = out.schema().column(c).type == ColumnType::kInt64;
        for (size_t r = 0; r < out.NumRows(); ++r) {
          if (out.at(r, c).is_null()) {
            (*out.mutable_row(r))[c] =
                integer ? Value::Int(static_cast<int64_t>(std::llround(mean)))
                        : Value::Real(mean);
          }
        }
      }
      return out;
    }
    case PrepOp::kStandardize: {
      for (size_t c : features) {
        auto [mean, stddev] = ColumnStats(out, c);
        if (stddev < 1e-12) stddev = 1.0;
        out.mutable_schema()->mutable_column(c)->type = ColumnType::kDouble;
        for (size_t r = 0; r < out.NumRows(); ++r) {
          const Value& v = out.at(r, c);
          if (v.is_null()) continue;
          (*out.mutable_row(r))[c] = Value::Real((v.AsDouble() - mean) / stddev);
        }
      }
      return out;
    }
    case PrepOp::kClipOutliers: {
      for (size_t c : features) {
        auto [mean, stddev] = ColumnStats(out, c);
        double lo = mean - 3.0 * stddev, hi = mean + 3.0 * stddev;
        bool integer = out.schema().column(c).type == ColumnType::kInt64;
        for (size_t r = 0; r < out.NumRows(); ++r) {
          const Value& v = out.at(r, c);
          if (v.is_null()) continue;
          double clipped = std::clamp(v.AsDouble(), lo, hi);
          (*out.mutable_row(r))[c] =
              integer ? Value::Int(static_cast<int64_t>(std::llround(clipped)))
                      : Value::Real(clipped);
        }
      }
      return out;
    }
    case PrepOp::kDropLowVariance: {
      std::vector<std::string> keep;
      std::set<size_t> dropped;
      for (size_t c : features) {
        auto [mean, stddev] = ColumnStats(out, c);
        double scale = std::max(std::abs(mean), 1.0);
        if (stddev / scale < 1e-3) dropped.insert(c);
      }
      for (size_t c = 0; c < out.NumColumns(); ++c) {
        if (!dropped.count(c)) keep.push_back(out.schema().column(c).name);
      }
      return out.Project(keep);
    }
    case PrepOp::kAddInteractions: {
      if (features.size() < 2) return out;
      // Pick the two highest-variance features; append their product.
      std::vector<std::pair<double, size_t>> by_variance;
      for (size_t c : features) {
        auto [mean, stddev] = ColumnStats(out, c);
        by_variance.emplace_back(stddev, c);
      }
      std::sort(by_variance.rbegin(), by_variance.rend());
      size_t a = by_variance[0].second, b = by_variance[1].second;
      std::string name = out.schema().column(a).name + "_x_" +
                         out.schema().column(b).name;
      if (out.schema().Find(name).has_value()) return out;  // already added
      out.mutable_schema()->AddColumn(
          data::Column{name, ColumnType::kDouble, true});
      for (size_t r = 0; r < out.NumRows(); ++r) {
        const Value& va = out.at(r, a);
        const Value& vb = out.at(r, b);
        out.mutable_row(r)->push_back(
            (va.is_null() || vb.is_null())
                ? Value::Null()
                : Value::Real(va.AsDouble() * vb.AsDouble()));
      }
      return out;
    }
  }
  return common::Status::Unimplemented("unknown prep op");
}

double PipelineRecommender::Evaluate(const data::Table& table,
                                     const std::string& label_column) const {
  auto dataset = ml::DatasetFromTable(table, label_column);
  if (!dataset.ok() || dataset->size() < 10) return 0.0;
  // Deterministic split: every k-th row to holdout.
  size_t holdout_every = std::max<size_t>(
      2, static_cast<size_t>(1.0 / std::max(options_.holdout_fraction, 0.05)));
  ml::Dataset train, hold;
  train.feature_names = hold.feature_names = dataset->feature_names;
  for (size_t i = 0; i < dataset->size(); ++i) {
    if (i % holdout_every == 0) {
      hold.features.push_back(dataset->features[i]);
      hold.labels.push_back(dataset->labels[i]);
    } else {
      train.features.push_back(dataset->features[i]);
      train.labels.push_back(dataset->labels[i]);
    }
  }
  auto stats = ml::Standardize(&train);
  ml::ApplyStandardization(stats, &hold);
  ml::LogisticRegression model;
  ml::LogisticRegression::TrainOptions train_options;
  train_options.seed = options_.seed;
  model.Train(train, train_options);
  return model.Accuracy(hold);
}

common::Result<std::vector<PipelineCandidate>> PipelineRecommender::Recommend(
    const data::Table& table, const std::string& label_column,
    llm::UsageMeter* meter) const {
  // Profile-driven operator pruning (the LLM-advice step): only consider
  // imputation when NULLs exist, interactions when >= 2 numeric features.
  std::vector<PrepOp> ops{PrepOp::kStandardize, PrepOp::kClipOutliers,
                          PrepOp::kDropLowVariance};
  bool has_nulls = false;
  for (size_t r = 0; r < table.NumRows() && !has_nulls; ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (table.at(r, c).is_null()) {
        has_nulls = true;
        break;
      }
    }
  }
  if (has_nulls) ops.insert(ops.begin(), PrepOp::kImputeMean);
  if (NumericFeatureColumns(table, label_column).size() >= 2) {
    ops.push_back(PrepOp::kAddInteractions);
  }
  if (options_.advisor != nullptr) {
    llm::Prompt p;
    p.task_tag = "freeform";
    p.instructions = "Recommend data preparation operators for this profile.";
    p.input = common::StrFormat(
        "rows=%zu cols=%zu nulls=%s label=%s", table.NumRows(),
        table.NumColumns(), has_nulls ? "yes" : "no", label_column.c_str());
    auto advice = options_.advisor->CompleteMetered(p, meter);
    if (!advice.ok()) return advice.status();
  }

  struct BeamEntry {
    std::vector<PrepOp> program;
    data::Table table;
    double accuracy;
  };
  double baseline = Evaluate(table, label_column);
  std::vector<BeamEntry> beam{{{}, table, baseline}};
  std::vector<PipelineCandidate> all{{{}, baseline}};

  for (size_t depth = 0; depth < options_.max_depth; ++depth) {
    std::vector<BeamEntry> next;
    for (const BeamEntry& entry : beam) {
      for (PrepOp op : ops) {
        // Skip idempotent repeats.
        if (!entry.program.empty() && entry.program.back() == op) continue;
        auto transformed = ApplyPrepOp(entry.table, label_column, op);
        if (!transformed.ok()) continue;
        BeamEntry candidate;
        candidate.program = entry.program;
        candidate.program.push_back(op);
        candidate.accuracy = Evaluate(*transformed, label_column);
        candidate.table = std::move(*transformed);
        all.push_back(PipelineCandidate{candidate.program, candidate.accuracy});
        next.push_back(std::move(candidate));
      }
    }
    if (next.empty()) break;
    std::sort(next.begin(), next.end(),
              [](const BeamEntry& a, const BeamEntry& b) {
                return a.accuracy > b.accuracy;
              });
    if (next.size() > options_.beam_width) next.resize(options_.beam_width);
    beam = std::move(next);
  }
  std::sort(all.begin(), all.end(),
            [](const PipelineCandidate& a, const PipelineCandidate& b) {
              if (a.holdout_accuracy != b.holdout_accuracy) {
                return a.holdout_accuracy > b.holdout_accuracy;
              }
              return a.ops.size() < b.ops.size();
            });
  return all;
}

}  // namespace llmdm::transform
