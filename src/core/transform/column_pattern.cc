#include "core/transform/column_pattern.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "common/string_util.h"

namespace llmdm::transform {
namespace {

const char* const kMonthNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

struct CivilDate {
  int year = 0, month = 0, day = 0;
};

int MonthFromName(std::string_view name) {
  for (int m = 0; m < 12; ++m) {
    if (common::ToLower(name) == common::ToLower(kMonthNames[m])) return m + 1;
  }
  return 0;
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

common::Result<CivilDate> ParseDateAs(std::string_view value,
                                      DateStyle style) {
  CivilDate d;
  auto fail = [&] {
    return common::Status::InvalidArgument("value does not match date style");
  };
  switch (style) {
    case DateStyle::kIso: {
      auto parts = common::Split(std::string(value), '-');
      if (parts.size() != 3 || !AllDigits(parts[0]) || !AllDigits(parts[1]) ||
          !AllDigits(parts[2]))
        return fail();
      d.year = std::stoi(parts[0]);
      d.month = std::stoi(parts[1]);
      d.day = std::stoi(parts[2]);
      break;
    }
    case DateStyle::kSlashMDY: {
      auto parts = common::Split(std::string(value), '/');
      if (parts.size() != 3 || !AllDigits(parts[0]) || !AllDigits(parts[1]) ||
          !AllDigits(parts[2]))
        return fail();
      d.month = std::stoi(parts[0]);
      d.day = std::stoi(parts[1]);
      d.year = std::stoi(parts[2]);
      break;
    }
    case DateStyle::kMonthDY: {
      auto parts = common::SplitWhitespace(value);
      if (parts.size() != 3 || !AllDigits(parts[1]) || !AllDigits(parts[2]))
        return fail();
      d.month = MonthFromName(parts[0]);
      if (d.month == 0) return fail();
      d.day = std::stoi(parts[1]);
      d.year = std::stoi(parts[2]);
      break;
    }
    case DateStyle::kDMonthY: {
      auto parts = common::SplitWhitespace(value);
      if (parts.size() != 3 || !AllDigits(parts[0]) || !AllDigits(parts[2]))
        return fail();
      d.day = std::stoi(parts[0]);
      d.month = MonthFromName(parts[1]);
      if (d.month == 0) return fail();
      d.year = std::stoi(parts[2]);
      break;
    }
  }
  if (d.month < 1 || d.month > 12 || d.day < 1 || d.day > 31 || d.year < 1000)
    return fail();
  return d;
}

std::string FormatDateAs(const CivilDate& d, DateStyle style) {
  switch (style) {
    case DateStyle::kIso:
      return common::StrFormat("%04d-%02d-%02d", d.year, d.month, d.day);
    case DateStyle::kSlashMDY:
      return common::StrFormat("%d/%d/%d", d.month, d.day, d.year);
    case DateStyle::kMonthDY:
      return common::StrFormat("%s %d %d", kMonthNames[d.month - 1], d.day,
                               d.year);
    case DateStyle::kDMonthY:
      return common::StrFormat("%d %s %d", d.day, kMonthNames[d.month - 1],
                               d.year);
  }
  return "";
}

const char* DateStyleName(DateStyle style) {
  switch (style) {
    case DateStyle::kIso:
      return "iso";
    case DateStyle::kSlashMDY:
      return "slash_mdy";
    case DateStyle::kMonthDY:
      return "month_d_y";
    case DateStyle::kDMonthY:
      return "d_month_y";
  }
  return "?";
}

}  // namespace

// ---- pattern mining ---------------------------------------------------------

Pattern ValuePattern(std::string_view value) {
  Pattern out;
  size_t i = 0;
  while (i < value.size()) {
    char c = value[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < value.size() &&
             std::isdigit(static_cast<unsigned char>(value[i])))
        ++i;
      PatternToken tok;
      tok.kind = PatternToken::Kind::kDigits;
      tok.min_len = tok.max_len = i - start;
      out.push_back(tok);
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < value.size() &&
             std::isalpha(static_cast<unsigned char>(value[i])))
        ++i;
      PatternToken tok;
      tok.kind = PatternToken::Kind::kLetters;
      tok.min_len = tok.max_len = i - start;
      out.push_back(tok);
    } else {
      PatternToken tok;
      tok.kind = PatternToken::Kind::kLiteral;
      tok.literal = std::string(1, c);
      out.push_back(tok);
      ++i;
    }
  }
  return out;
}

common::Result<Pattern> MineColumnPattern(
    const std::vector<std::string>& values) {
  if (values.empty()) {
    return common::Status::InvalidArgument("no values to mine a pattern from");
  }
  Pattern mined = ValuePattern(values[0]);
  for (size_t i = 1; i < values.size(); ++i) {
    Pattern p = ValuePattern(values[i]);
    if (p.size() != mined.size()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "value '%s' breaks the column's token structure", values[i].c_str()));
    }
    for (size_t t = 0; t < p.size(); ++t) {
      if (p[t].kind != mined[t].kind ||
          (p[t].kind == PatternToken::Kind::kLiteral &&
           p[t].literal != mined[t].literal)) {
        return common::Status::InvalidArgument(common::StrFormat(
            "value '%s' breaks the column's token structure",
            values[i].c_str()));
      }
      mined[t].min_len = std::min(mined[t].min_len, p[t].min_len);
      mined[t].max_len = std::max(mined[t].max_len, p[t].max_len);
    }
  }
  return mined;
}

std::string PatternToString(const Pattern& pattern) {
  std::string out;
  for (const PatternToken& tok : pattern) {
    switch (tok.kind) {
      case PatternToken::Kind::kLiteral:
        out += tok.literal;
        break;
      case PatternToken::Kind::kDigits:
      case PatternToken::Kind::kLetters: {
        out += tok.kind == PatternToken::Kind::kDigits ? "<digit>" : "<letter>";
        if (tok.min_len == tok.max_len) {
          out += common::StrFormat("{%zu}", tok.min_len);
        } else {
          out += common::StrFormat("{%zu,%zu}", tok.min_len, tok.max_len);
        }
        break;
      }
    }
  }
  return out;
}

bool MatchesPattern(const Pattern& pattern, std::string_view value) {
  Pattern p = ValuePattern(value);
  if (p.size() != pattern.size()) return false;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i].kind != pattern[i].kind) return false;
    if (pattern[i].kind == PatternToken::Kind::kLiteral) {
      if (p[i].literal != pattern[i].literal) return false;
    } else {
      if (p[i].min_len < pattern[i].min_len ||
          p[i].max_len > pattern[i].max_len)
        return false;
    }
  }
  return true;
}

// ---- transformation programs ---------------------------------------------------

common::Result<DateStyle> DetectDateStyle(std::string_view value) {
  for (DateStyle style : {DateStyle::kIso, DateStyle::kSlashMDY,
                          DateStyle::kMonthDY, DateStyle::kDMonthY}) {
    if (ParseDateAs(value, style).ok()) return style;
  }
  return common::Status::NotFound("not a recognized date format");
}

common::Result<std::string> ReformatDate(const std::string& value,
                                         DateStyle target) {
  LLMDM_ASSIGN_OR_RETURN(DateStyle source, DetectDateStyle(value));
  LLMDM_ASSIGN_OR_RETURN(CivilDate d, ParseDateAs(value, source));
  return FormatDateAs(d, target);
}

common::Result<ColumnTransform> ColumnTransform::Synthesize(
    const std::vector<std::pair<std::string, std::string>>& examples) {
  if (examples.empty()) {
    return common::Status::InvalidArgument("no examples");
  }
  // Family 1: date reformatting.
  auto from_style = DetectDateStyle(examples[0].first);
  auto to_style = DetectDateStyle(examples[0].second);
  if (from_style.ok() && to_style.ok()) {
    bool all_fit = true;
    for (const auto& [src, dst] : examples) {
      auto parsed = ParseDateAs(src, *from_style);
      all_fit = all_fit && parsed.ok() &&
                FormatDateAs(*parsed, *to_style) == dst;
    }
    if (all_fit) {
      ColumnTransform t;
      t.family_ = Family::kDate;
      t.from_style_ = *from_style;
      t.to_style_ = *to_style;
      return t;
    }
  }
  // Family 2: token rearrangement. Split source and target into alnum
  // tokens; find the permutation mapping and the output separator.
  auto tokenize = [](const std::string& s) {
    std::vector<std::string> toks;
    std::string cur;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        cur.push_back(c);
      } else if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    }
    if (!cur.empty()) toks.push_back(cur);
    return toks;
  };
  auto src0 = tokenize(examples[0].first);
  auto dst0 = tokenize(examples[0].second);
  if (src0.empty() || dst0.size() > src0.size()) {
    return common::Status::InvalidArgument(
        "examples fit neither transformation family");
  }
  std::vector<size_t> perm;
  for (const std::string& d : dst0) {
    auto it = std::find(src0.begin(), src0.end(), d);
    if (it == src0.end()) {
      return common::Status::InvalidArgument(
          "examples fit neither transformation family");
    }
    perm.push_back(static_cast<size_t>(it - src0.begin()));
  }
  // Output separator: first non-alnum run of the target (default space).
  std::string sep = " ";
  for (size_t i = 0; i < examples[0].second.size(); ++i) {
    if (!std::isalnum(static_cast<unsigned char>(examples[0].second[i]))) {
      size_t start = i;
      while (i < examples[0].second.size() &&
             !std::isalnum(static_cast<unsigned char>(examples[0].second[i])))
        ++i;
      sep = examples[0].second.substr(start, i - start);
      break;
    }
  }
  ColumnTransform t;
  t.family_ = Family::kTokenRearrange;
  t.permutation_ = perm;
  t.separator_ = sep;
  // Verify on all examples.
  for (const auto& [src, dst] : examples) {
    auto applied = t.Apply(src);
    if (!applied.ok() || *applied != dst) {
      return common::Status::InvalidArgument(
          "examples fit neither transformation family");
    }
  }
  return t;
}

common::Result<std::string> ColumnTransform::Apply(
    const std::string& value) const {
  if (family_ == Family::kDate) {
    LLMDM_ASSIGN_OR_RETURN(CivilDate d, ParseDateAs(value, from_style_));
    return FormatDateAs(d, to_style_);
  }
  std::vector<std::string> toks;
  std::string cur;
  for (char c : value) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    } else if (!cur.empty()) {
      toks.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  std::string out;
  for (size_t i = 0; i < permutation_.size(); ++i) {
    if (permutation_[i] >= toks.size()) {
      return common::Status::InvalidArgument(
          "value has fewer tokens than the learned program expects");
    }
    if (i > 0) out += separator_;
    out += toks[permutation_[i]];
  }
  return out;
}

std::string ColumnTransform::Describe() const {
  if (family_ == Family::kDate) {
    return common::StrFormat("date: %s -> %s", DateStyleName(from_style_),
                             DateStyleName(to_style_));
  }
  std::string out = "tokens: [";
  for (size_t i = 0; i < permutation_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(permutation_[i]);
  }
  return out + "] sep='" + separator_ + "'";
}

// ---- pattern validator -----------------------------------------------------------

common::Result<PatternValidator> PatternValidator::FromReference(
    const std::vector<std::string>& reference) {
  LLMDM_ASSIGN_OR_RETURN(Pattern p, MineColumnPattern(reference));
  return PatternValidator(std::move(p));
}

PatternValidator::Report PatternValidator::Validate(
    const std::vector<std::string>& batch, double drift_threshold) const {
  Report report;
  report.checked = batch.size();
  for (const std::string& value : batch) {
    if (!MatchesPattern(pattern_, value)) {
      ++report.mismatched;
      if (report.examples_of_mismatch.size() < 5) {
        report.examples_of_mismatch.push_back(value);
      }
    }
  }
  report.match_rate =
      batch.empty() ? 1.0
                    : 1.0 - static_cast<double>(report.mismatched) /
                                static_cast<double>(batch.size());
  report.drifted = report.match_rate < drift_threshold;
  return report;
}

}  // namespace llmdm::transform
