#ifndef LLMDM_CORE_TRANSFORM_NL2TRANSACTION_H_
#define LLMDM_CORE_TRANSFORM_NL2TRANSACTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::transform {

/// Outcome of one NL->transaction run.
struct Nl2TxnResult {
  std::vector<std::string> statements;
  bool committed = false;
  int64_t affected_rows = 0;
  std::string failure;  // why the transaction rolled back, if it did
};

/// NL2Transaction (Sec. II-B.1): turns a multi-step payment request into a
/// SQL statement sequence and executes it atomically. Guardrails reject
/// obviously-unbalanced translations before execution — and the transaction
/// wrapper guarantees that even an undetected bad translation cannot commit
/// a partial transfer.
class Nl2TransactionEngine {
 public:
  struct Options {
    /// Reject translations whose statement count is not a multiple of 3
    /// (debit+credit+ledger per transfer) — a cheap structural validator.
    bool structural_check = true;
  };

  Nl2TransactionEngine(std::shared_ptr<llm::LlmModel> model,
                       const Options& options)
      : model_(std::move(model)), options_(options) {}

  common::Result<Nl2TxnResult> Run(const std::string& request,
                                   sql::Database& db,
                                   llm::UsageMeter* meter = nullptr);

 private:
  std::shared_ptr<llm::LlmModel> model_;
  Options options_;
};

}  // namespace llmdm::transform

#endif  // LLMDM_CORE_TRANSFORM_NL2TRANSACTION_H_
