#include "core/validate/validators.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "sql/parser.h"

namespace llmdm::validate {

Verdict SqlValidator::ValidateSyntax(const std::string& sql) {
  auto parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) {
    return Verdict{false, 0.0, parsed.status().ToString()};
  }
  return Verdict{true, 1.0, "parses"};
}

Verdict SqlValidator::ValidateExecutes(const std::string& sql,
                                       sql::Database& db) {
  auto result = db.Query(sql);
  if (!result.ok()) {
    return Verdict{false, 0.0, result.status().ToString()};
  }
  return Verdict{true, 1.0,
                 common::StrFormat("executed, %zu rows", result->NumRows())};
}

Verdict SqlValidator::ValidateNonEmptyResult(const std::string& sql,
                                             sql::Database& db) {
  auto result = db.Query(sql);
  if (!result.ok()) {
    return Verdict{false, 0.0, result.status().ToString()};
  }
  if (result->NumRows() == 0) {
    return Verdict{false, 0.3, "executed but returned no rows"};
  }
  return Verdict{true, 1.0,
                 common::StrFormat("executed, %zu rows", result->NumRows())};
}

Verdict ValidateRowAgainstSchema(const std::string& serialized_row,
                                 const data::Schema& schema) {
  size_t matched = 0;
  for (const std::string& part : common::Split(serialized_row, ';')) {
    std::string_view kv = common::Trim(part);
    if (kv.empty()) continue;
    size_t pos = kv.find(" is ");
    if (pos == std::string_view::npos) {
      return Verdict{false, 0.0,
                     "malformed field (expected 'name is value'): " +
                         std::string(kv)};
    }
    std::string key(kv.substr(0, pos));
    std::string value(common::Trim(kv.substr(pos + 4)));
    auto col = schema.Find(key);
    if (!col.has_value()) {
      return Verdict{false, 0.0, "unknown column: " + key};
    }
    data::ColumnType type = schema.column(*col).type;
    bool ok = true;
    switch (type) {
      case data::ColumnType::kInt64: {
        int64_t v;
        ok = common::ParseInt64(value, &v);
        break;
      }
      case data::ColumnType::kDouble: {
        double v;
        ok = common::ParseDouble(value, &v);
        break;
      }
      case data::ColumnType::kBool: {
        std::string lower = common::ToLower(value);
        ok = lower == "true" || lower == "false";
        break;
      }
      default:
        break;  // text accepts anything; dates arrive as text here
    }
    if (!ok) {
      return Verdict{false, 0.0,
                     common::StrFormat(
                         "value '%s' does not fit column %s (%s)",
                         value.c_str(), key.c_str(),
                         std::string(data::ColumnTypeName(type)).c_str())};
    }
    ++matched;
  }
  if (matched == 0) {
    return Verdict{false, 0.0, "no fields found"};
  }
  double coverage =
      static_cast<double>(matched) / static_cast<double>(schema.size());
  return Verdict{true, std::min(coverage, 1.0),
                 common::StrFormat("%zu/%zu columns present", matched,
                                   schema.size())};
}

common::Result<Verdict> SelfConsistencyValidator::Validate(
    llm::LlmModel& model, const llm::Prompt& prompt,
    llm::UsageMeter* meter) const {
  std::map<std::string, size_t> votes;
  for (size_t s = 0; s < samples_; ++s) {
    llm::Prompt sampled = prompt;
    sampled.sample_salt = prompt.sample_salt * 977 + s + 1;
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                           model.CompleteMetered(sampled, meter));
    ++votes[c.text];
  }
  size_t best = 0;
  std::string modal;
  for (const auto& [answer, n] : votes) {
    if (n > best) {
      best = n;
      modal = answer;
    }
  }
  double agreement = static_cast<double>(best) /
                     static_cast<double>(std::max<size_t>(1, samples_));
  Verdict verdict;
  verdict.score = agreement;
  verdict.accepted = agreement >= min_agreement_;
  verdict.reason = common::StrFormat("agreement %.2f on '%s'", agreement,
                                     modal.substr(0, 48).c_str());
  return verdict;
}

Verdict CrowdValidator::Judge(bool output_actually_correct) {
  size_t say_correct = 0;
  for (size_t w = 0; w < num_workers_; ++w) {
    bool worker_right = rng_.Bernoulli(worker_accuracy_);
    bool says_correct = worker_right == output_actually_correct;
    if (says_correct) ++say_correct;
  }
  double fraction = num_workers_ == 0
                        ? 0.0
                        : static_cast<double>(say_correct) /
                              static_cast<double>(num_workers_);
  Verdict verdict;
  verdict.accepted = fraction > 0.5;
  verdict.score = fraction;
  verdict.reason = common::StrFormat("%zu/%zu workers judged correct",
                                     say_correct, num_workers_);
  return verdict;
}

common::Result<std::vector<ExampleAttribution>> AttributeExamples(
    llm::LlmModel& model, const llm::Prompt& prompt, llm::UsageMeter* meter) {
  LLMDM_ASSIGN_OR_RETURN(llm::Completion base,
                         model.CompleteMetered(prompt, meter));
  std::vector<ExampleAttribution> out;
  for (size_t i = 0; i < prompt.examples.size(); ++i) {
    llm::Prompt ablated = prompt;
    ablated.examples.erase(ablated.examples.begin() + static_cast<long>(i));
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                           model.CompleteMetered(ablated, meter));
    ExampleAttribution attribution;
    attribution.example_index = i;
    attribution.answer_changed = c.text != base.text;
    attribution.confidence_delta = base.confidence - c.confidence;
    attribution.importance = (attribution.answer_changed ? 1.0 : 0.0) +
                             std::max(0.0, attribution.confidence_delta);
    out.push_back(attribution);
  }
  return out;
}

}  // namespace llmdm::validate
