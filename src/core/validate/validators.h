#ifndef LLMDM_CORE_VALIDATE_VALIDATORS_H_
#define LLMDM_CORE_VALIDATE_VALIDATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::validate {

/// Outcome of one validation check.
struct Verdict {
  bool accepted = false;
  double score = 0.0;  // check-specific confidence in [0,1]
  std::string reason;
};

/// Deterministic validators for LLM-produced SQL (Sec. III-E: data
/// management outputs must be verified before use).
class SqlValidator {
 public:
  /// Parses only.
  static Verdict ValidateSyntax(const std::string& sql);
  /// Parses and executes against `db`.
  static Verdict ValidateExecutes(const std::string& sql, sql::Database& db);
  /// Executes and additionally requires a non-empty result (useful when the
  /// question presupposes existence).
  static Verdict ValidateNonEmptyResult(const std::string& sql,
                                        sql::Database& db);
};

/// Checks that a generated serialized row ("col is value; ...") conforms to
/// `schema`: every key exists, every value parses as the column's type.
Verdict ValidateRowAgainstSchema(const std::string& serialized_row,
                                 const data::Schema& schema);

/// Self-consistency validation: N independent samples of the same prompt;
/// accept when the modal answer reaches `min_agreement`. The cheapest
/// general-purpose uncertainty probe for black-box models.
class SelfConsistencyValidator {
 public:
  SelfConsistencyValidator(size_t samples, double min_agreement)
      : samples_(samples), min_agreement_(min_agreement) {}

  common::Result<Verdict> Validate(llm::LlmModel& model,
                                   const llm::Prompt& prompt,
                                   llm::UsageMeter* meter = nullptr) const;

 private:
  size_t samples_;
  double min_agreement_;
};

/// Simulated human-in-the-loop validation (Sec. III-E.2): `num_workers`
/// crowd workers each judge the output correctly with probability
/// `worker_accuracy`; majority vote decides. The simulation takes the ground
/// truth so it can model worker noise; the calling experiment measures how
/// often the crowd verdict matches that truth as worker quality / quorum
/// size vary.
class CrowdValidator {
 public:
  CrowdValidator(size_t num_workers, double worker_accuracy, uint64_t seed)
      : num_workers_(num_workers),
        worker_accuracy_(worker_accuracy),
        rng_(seed) {}

  Verdict Judge(bool output_actually_correct);

 private:
  size_t num_workers_;
  double worker_accuracy_;
  common::Rng rng_;
};

/// Leave-one-out attribution over a prompt's few-shot examples (the
/// "interpretable LLMs" direction of Sec. III-E.1): importance of example i
/// = answer-change indicator + confidence drop when i is removed. Costs
/// examples+1 model calls.
struct ExampleAttribution {
  size_t example_index = 0;
  bool answer_changed = false;
  double confidence_delta = 0.0;  // base confidence - ablated confidence
  double importance = 0.0;
};

common::Result<std::vector<ExampleAttribution>> AttributeExamples(
    llm::LlmModel& model, const llm::Prompt& prompt,
    llm::UsageMeter* meter = nullptr);

}  // namespace llmdm::validate

#endif  // LLMDM_CORE_VALIDATE_VALIDATORS_H_
