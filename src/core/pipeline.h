#ifndef LLMDM_CORE_PIPELINE_H_
#define LLMDM_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/exploration/datalake.h"
#include "data/table.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::core {

/// The Fig. 1 pipeline: data generation -> transformation -> integration ->
/// exploration, run end-to-end on a healthcare-flavoured synthetic corpus
/// with per-stage LLM usage metering.
///
/// Stage contents:
///  1. generation    — synthesize patients, inject missingness, annotate the
///                     missing fields via ICL, add LLM-synthesized rows;
///  2. transformation— parse XML diagnostic reports into a relational table,
///                     unify the date column's format;
///  3. integration   — annotate unknown columns' types, resolve duplicate
///                     patient descriptions, clean remaining issues;
///  4. exploration   — ingest everything into the multi-modal data lake and
///                     answer semantic queries.
class DataManagementPipeline {
 public:
  struct Options {
    std::shared_ptr<llm::LlmModel> model;
    size_t num_patients = 60;
    double missing_fraction = 0.15;
    uint64_t seed = 4242;
    /// Simulated-ms budget for the *whole* run (0 = unbounded). All four
    /// stages draw LLM latency from one shared llm::Deadline; a stage that
    /// starts after exhaustion degrades instead of calling the model.
    double deadline_ms = 0.0;
  };

  struct StageReport {
    std::string stage;
    std::string summary;
    size_t llm_calls = 0;
    common::Money llm_cost;
    /// The stage hit an unrecoverable error and delivered partial (or no)
    /// artifacts; `summary` carries the status. Later stages still ran.
    bool degraded = false;
    /// Resilience accounting for the stage's LLM traffic.
    llm::UsageMeter::RetryStats retry;
    /// Simulated-ms budget left when the stage finished (0 when the run is
    /// unbounded or the budget is spent).
    double deadline_remaining_ms = 0.0;
  };

  struct Report {
    std::vector<StageReport> stages;
    size_t total_llm_calls = 0;
    common::Money total_cost;
    size_t degraded_stages = 0;
    /// The run's deadline (if any) ran out before the last stage finished.
    bool deadline_exhausted = false;
  };

  explicit DataManagementPipeline(const Options& options)
      : options_(options) {}

  /// Runs all four stages. A stage that fails mid-flight is reported as
  /// degraded instead of aborting the pipeline — the remaining stages run
  /// on whatever artifacts exist. Run() itself only errors on configuration
  /// problems (no model). After a run, `database()` holds the relational
  /// artifacts and `lake()` the explorable corpus.
  common::Result<Report> Run();

  sql::Database& database() { return db_; }
  exploration::MultiModalDataLake& lake() { return lake_; }

 private:
  Options options_;
  sql::Database db_;
  exploration::MultiModalDataLake lake_;
};

}  // namespace llmdm::core

#endif  // LLMDM_CORE_PIPELINE_H_
