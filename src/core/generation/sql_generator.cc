#include "core/generation/sql_generator.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace llmdm::generation {
namespace {

std::string QuoteText(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  return out + "'";
}

}  // namespace

std::string_view GeneratedSqlKindName(GeneratedSql::Kind kind) {
  switch (kind) {
    case GeneratedSql::Kind::kSimple:
      return "simple";
    case GeneratedSql::Kind::kMultiJoin:
      return "multi_join";
    case GeneratedSql::Kind::kSubquery:
      return "subquery";
    case GeneratedSql::Kind::kAggregate:
      return "aggregate";
  }
  return "?";
}

common::Result<std::vector<SqlGenerator::TableProfile>>
SqlGenerator::ProfileCatalog(sql::Database& db) {
  std::vector<TableProfile> out;
  for (const std::string& name : db.catalog().TableNames()) {
    LLMDM_ASSIGN_OR_RETURN(const data::Table* table,
                           db.catalog().GetTable(name));
    TableProfile profile;
    profile.name = table->name();
    for (const auto& col : table->schema().columns()) {
      if (col.type == data::ColumnType::kInt64) {
        profile.int_columns.push_back(col.name);
      } else if (col.type == data::ColumnType::kText) {
        profile.text_columns.push_back(col.name);
      }
    }
    // Sample literal values so predicates are selective but satisfiable.
    for (size_t r = 0; r < table->NumRows(); r += std::max<size_t>(1, table->NumRows() / 8)) {
      for (const auto& col : table->schema().columns()) {
        size_t c = *table->schema().Find(col.name);
        const data::Value& v = table->at(r, c);
        if (v.is_null()) continue;
        if (col.type == data::ColumnType::kInt64 &&
            profile.sample_ints.size() < 16) {
          profile.sample_ints.push_back(v.AsInt());
        } else if (col.type == data::ColumnType::kText &&
                   profile.sample_texts.size() < 16) {
          profile.sample_texts.push_back(v.AsText());
        }
      }
    }
    if (!profile.int_columns.empty() || !profile.text_columns.empty()) {
      out.push_back(std::move(profile));
    }
  }
  if (out.empty()) {
    return common::Status::FailedPrecondition(
        "catalog has no profileable tables");
  }
  return out;
}

std::string SqlGenerator::MakePredicate(const TableProfile& t,
                                        const std::string& alias) {
  std::string prefix = alias.empty() ? "" : alias + ".";
  if (!t.int_columns.empty() &&
      (t.text_columns.empty() || rng_.Bernoulli(0.6))) {
    const std::string& col = rng_.Choice(t.int_columns);
    int64_t value = t.sample_ints.empty()
                        ? rng_.UniformInt(0, 100)
                        : rng_.Choice(t.sample_ints);
    const char* ops[] = {">", "<", ">=", "<=", "=", "<>"};
    return common::StrFormat("%s%s %s %lld", prefix.c_str(), col.c_str(),
                             ops[rng_.NextBelow(6)], (long long)value);
  }
  if (!t.text_columns.empty() && !t.sample_texts.empty()) {
    const std::string& col = rng_.Choice(t.text_columns);
    const std::string& value = rng_.Choice(t.sample_texts);
    if (rng_.Bernoulli(0.3) && value.size() > 2) {
      return prefix + col + " LIKE " + QuoteText("%" + value.substr(1, 2) + "%");
    }
    return prefix + col + " = " + QuoteText(value);
  }
  return "1 = 1";
}

std::string SqlGenerator::MakeSimple(const TableProfile& t) {
  std::string projection = "*";
  if (!t.text_columns.empty() && rng_.Bernoulli(0.5)) {
    projection = rng_.Choice(t.text_columns);
  } else if (!t.int_columns.empty()) {
    projection = rng_.Choice(t.int_columns);
  }
  std::string sql = "SELECT " + projection + " FROM " + t.name + " WHERE " +
                    MakePredicate(t, "");
  if (rng_.Bernoulli(0.3) && projection != "*") {
    sql += " ORDER BY " + projection;
    if (rng_.Bernoulli(0.5)) sql += " DESC";
  }
  if (rng_.Bernoulli(0.3)) {
    sql += common::StrFormat(" LIMIT %lld", (long long)rng_.UniformInt(1, 20));
  }
  return sql;
}

std::string SqlGenerator::MakeAggregate(const TableProfile& t) {
  const char* aggs[] = {"COUNT(*)", "MIN", "MAX", "SUM", "AVG"};
  size_t pick = rng_.NextBelow(5);
  std::string agg;
  if (pick == 0 || t.int_columns.empty()) {
    agg = "COUNT(*)";
  } else {
    agg = std::string(aggs[pick]) + "(" + rng_.Choice(t.int_columns) + ")";
  }
  if (!t.text_columns.empty() && rng_.Bernoulli(0.5)) {
    const std::string& group_col = rng_.Choice(t.text_columns);
    std::string sql = "SELECT " + group_col + ", " + agg + " FROM " + t.name +
                      " GROUP BY " + group_col;
    if (rng_.Bernoulli(0.4)) sql += " HAVING COUNT(*) >= 1";
    return sql;
  }
  return "SELECT " + agg + " FROM " + t.name + " WHERE " + MakePredicate(t, "");
}

common::Result<std::string> SqlGenerator::MakeMultiJoin(
    const std::vector<TableProfile>& tables) {
  // Joinable pair: a table with a "<x>_id" column and a table <x> with "id"
  // (the foreign-key naming convention of the generated schemas), or any two
  // tables sharing an int column name.
  for (int attempt = 0; attempt < 30; ++attempt) {
    const TableProfile& left = tables[rng_.NextBelow(tables.size())];
    for (const std::string& col : left.int_columns) {
      if (!common::EndsWith(col, "_id")) continue;
      std::string target = col.substr(0, col.size() - 3);
      for (const TableProfile& right : tables) {
        if (common::ToLower(right.name) != common::ToLower(target)) continue;
        if (std::find(right.int_columns.begin(), right.int_columns.end(),
                      "id") == right.int_columns.end())
          continue;
        std::string projection =
            right.text_columns.empty() ? "r.id" : "r." + right.text_columns[0];
        return "SELECT " + projection + " FROM " + left.name + " l JOIN " +
               right.name + " r ON l." + col + " = r.id WHERE " +
               MakePredicate(left, "l");
      }
    }
  }
  return common::Status::NotFound("no joinable table pair in catalog");
}

common::Result<std::string> SqlGenerator::MakeSubquery(
    const std::vector<TableProfile>& tables) {
  for (int attempt = 0; attempt < 30; ++attempt) {
    const TableProfile& inner = tables[rng_.NextBelow(tables.size())];
    for (const std::string& col : inner.int_columns) {
      if (!common::EndsWith(col, "_id")) continue;
      std::string target = col.substr(0, col.size() - 3);
      for (const TableProfile& outer : tables) {
        if (common::ToLower(outer.name) != common::ToLower(target)) continue;
        std::string projection =
            outer.text_columns.empty() ? "id" : outer.text_columns[0];
        std::string negation = rng_.Bernoulli(0.3) ? " NOT" : "";
        return "SELECT " + projection + " FROM " + outer.name + " WHERE id" +
               negation + " IN (SELECT " + col + " FROM " + inner.name +
               " WHERE " + MakePredicate(inner, "") + ")";
      }
    }
  }
  return common::Status::NotFound("no subquery-compatible tables in catalog");
}

common::Result<std::vector<GeneratedSql>> SqlGenerator::Generate(
    sql::Database& db, const SqlGenConstraints& constraints,
    llm::UsageMeter* meter) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<TableProfile> tables, ProfileCatalog(db));

  if (advisor_ != nullptr) {
    llm::Prompt p;
    p.task_tag = "freeform";
    p.instructions =
        "Generate diverse SQL queries satisfying the constraints.";
    p.input = db.catalog().DescribeForPrompt() +
              common::StrFormat("constraints: count=%zu multi_join=%.2f "
                                "subquery=%.2f aggregate=%.2f executable=%d",
                                constraints.count,
                                constraints.multi_join_fraction,
                                constraints.subquery_fraction,
                                constraints.aggregate_fraction,
                                constraints.require_executable ? 1 : 0);
    auto advice = advisor_->CompleteMetered(p, meter);
    if (!advice.ok()) return advice.status();
  }

  // Shape schedule honoring the requested mix.
  std::vector<GeneratedSql::Kind> schedule;
  auto add_kind = [&](GeneratedSql::Kind kind, double fraction) {
    size_t n = static_cast<size_t>(fraction * double(constraints.count) + 0.5);
    for (size_t i = 0; i < n && schedule.size() < constraints.count; ++i) {
      schedule.push_back(kind);
    }
  };
  add_kind(GeneratedSql::Kind::kMultiJoin, constraints.multi_join_fraction);
  add_kind(GeneratedSql::Kind::kSubquery, constraints.subquery_fraction);
  add_kind(GeneratedSql::Kind::kAggregate, constraints.aggregate_fraction);
  while (schedule.size() < constraints.count) {
    schedule.push_back(GeneratedSql::Kind::kSimple);
  }
  rng_.Shuffle(schedule);

  std::vector<GeneratedSql> out;
  std::set<std::string> emitted;  // diversity: no duplicates
  for (GeneratedSql::Kind kind : schedule) {
    bool done = false;
    for (size_t attempt = 0;
         attempt < constraints.max_attempts_per_query && !done; ++attempt) {
      common::Result<std::string> sql = common::Status::NotFound("");
      switch (kind) {
        case GeneratedSql::Kind::kSimple:
          sql = MakeSimple(tables[rng_.NextBelow(tables.size())]);
          break;
        case GeneratedSql::Kind::kAggregate:
          sql = MakeAggregate(tables[rng_.NextBelow(tables.size())]);
          break;
        case GeneratedSql::Kind::kMultiJoin:
          sql = MakeMultiJoin(tables);
          break;
        case GeneratedSql::Kind::kSubquery:
          sql = MakeSubquery(tables);
          break;
      }
      if (!sql.ok()) break;  // catalog cannot produce this shape
      if (emitted.count(*sql)) continue;
      GeneratedSql gen;
      gen.sql = *sql;
      gen.kind = kind;
      auto executed = db.Query(gen.sql);
      gen.executable = executed.ok();
      if (gen.executable) gen.result_rows = executed->NumRows();
      if (constraints.require_executable && !gen.executable) continue;
      emitted.insert(gen.sql);
      out.push_back(std::move(gen));
      done = true;
    }
  }
  return out;
}

common::Result<std::vector<std::pair<std::string, std::string>>>
SqlGenerator::GenerateEquivalentPairs(sql::Database& db, size_t count,
                                      llm::UsageMeter* meter) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<TableProfile> tables, ProfileCatalog(db));
  (void)meter;
  std::vector<std::pair<std::string, std::string>> out;
  size_t guard = 0;
  while (out.size() < count && guard++ < count * 50) {
    const TableProfile& t = tables[rng_.NextBelow(tables.size())];
    if (t.int_columns.empty()) continue;
    const std::string& col = rng_.Choice(t.int_columns);
    std::string projection = "*";
    switch (rng_.NextBelow(3)) {
      case 0: {
        // BETWEEN <-> conjunction of range predicates.
        int64_t lo = t.sample_ints.empty() ? 0 : rng_.Choice(t.sample_ints);
        int64_t hi = lo + rng_.UniformInt(1, 100);
        std::string a = common::StrFormat(
            "SELECT %s FROM %s WHERE %s BETWEEN %lld AND %lld",
            projection.c_str(), t.name.c_str(), col.c_str(), (long long)lo,
            (long long)hi);
        std::string b = common::StrFormat(
            "SELECT %s FROM %s WHERE %s >= %lld AND %s <= %lld",
            projection.c_str(), t.name.c_str(), col.c_str(), (long long)lo,
            col.c_str(), (long long)hi);
        out.emplace_back(a, b);
        break;
      }
      case 1: {
        // IN-list <-> OR chain.
        int64_t v1 = t.sample_ints.empty() ? 1 : rng_.Choice(t.sample_ints);
        int64_t v2 = v1 + rng_.UniformInt(1, 10);
        std::string a = common::StrFormat(
            "SELECT %s FROM %s WHERE %s IN (%lld, %lld)", projection.c_str(),
            t.name.c_str(), col.c_str(), (long long)v1, (long long)v2);
        std::string b = common::StrFormat(
            "SELECT %s FROM %s WHERE %s = %lld OR %s = %lld",
            projection.c_str(), t.name.c_str(), col.c_str(), (long long)v1,
            col.c_str(), (long long)v2);
        out.emplace_back(a, b);
        break;
      }
      default: {
        // Commuted conjuncts.
        std::string p1 = MakePredicate(t, "");
        std::string p2 = MakePredicate(t, "");
        std::string a = "SELECT " + projection + " FROM " + t.name +
                        " WHERE " + p1 + " AND " + p2;
        std::string b = "SELECT " + projection + " FROM " + t.name +
                        " WHERE " + p2 + " AND " + p1;
        out.emplace_back(a, b);
        break;
      }
    }
    // Equivalence is a hard contract: verify by execution and drop pairs
    // that fail to run (e.g. vacuous predicates on empty tables still run,
    // so drops are rare).
    auto ra = db.Query(out.back().first);
    auto rb = db.Query(out.back().second);
    if (!ra.ok() || !rb.ok() || !ra->BagEquals(*rb)) {
      out.pop_back();
    }
  }
  return out;
}

}  // namespace llmdm::generation
