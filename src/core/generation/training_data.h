#ifndef LLMDM_CORE_GENERATION_TRAINING_DATA_H_
#define LLMDM_CORE_GENERATION_TRAINING_DATA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"
#include "llm/model.h"
#include "ml/linear.h"
#include "sql/database.h"

namespace llmdm::generation {

/// One <query, execution_time> training pair for a learned cost model
/// (Fig. 3). Features are what a real learned cost estimator would extract.
struct QueryCostExample {
  std::string sql;
  double num_joins = 0;
  double num_predicates = 0;
  double scan_rows = 0;     // sum of base-table cardinalities touched
  double execution_time_ms = 0;

  std::vector<double> Features() const {
    return {num_joins, num_predicates, scan_rows};
  }
  /// "num_joins is X; num_predicates is Y; scan_rows is Z" serialization for
  /// ICL prompts.
  std::string SerializeFeatures() const;
};

/// Generates <query, execution_time> pairs against `db`: queries come from
/// the schema-grounded generator, execution time from a synthetic-but-
/// structured cost model (linear in joins/predicates/scanned rows with
/// multiplicative noise). This stands in for the expensive real collection
/// the paper says makes training data scarce.
common::Result<std::vector<QueryCostExample>> GenerateQueryCostDataset(
    sql::Database& db, size_t n, common::Rng& rng);

/// ICL execution-time predictor (Fig. 3): feeds k labelled examples to the
/// model as a tabular_predict prompt and parses the predicted time.
class IclCostPredictor {
 public:
  IclCostPredictor(std::shared_ptr<llm::LlmModel> model, size_t num_examples)
      : model_(std::move(model)), num_examples_(num_examples) {}

  /// Predicts execution time for `target`, using the `num_examples` nearest
  /// (by feature distance, chosen client-side) examples from `corpus`.
  common::Result<double> Predict(const QueryCostExample& target,
                                 const std::vector<QueryCostExample>& corpus,
                                 llm::UsageMeter* meter = nullptr) const;

 private:
  std::shared_ptr<llm::LlmModel> model_;
  size_t num_examples_;
};

/// LLM-augmented training (Fig. 3's punchline): asks the model to synthesize
/// additional <features, time> rows mimicking `real`, then returns
/// real + synthetic. `augmentation_factor` = synthetic rows per real row.
common::Result<std::vector<QueryCostExample>> AugmentCostDataset(
    const std::vector<QueryCostExample>& real, double augmentation_factor,
    llm::LlmModel& model, llm::UsageMeter* meter = nullptr);

/// Trains the learned cost model and reports holdout MAPE. Used to compare
/// real-only vs real+augmented training sets.
double EvaluateCostModel(const std::vector<QueryCostExample>& train,
                         const std::vector<QueryCostExample>& holdout);

}  // namespace llmdm::generation

#endif  // LLMDM_CORE_GENERATION_TRAINING_DATA_H_
