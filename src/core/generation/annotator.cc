#include "core/generation/annotator.h"

#include <cmath>

#include "common/string_util.h"

namespace llmdm::generation {
namespace {

using data::ColumnType;
using data::Value;

// Serializes a row skipping `skip_col` (the column being predicted) and any
// NULL cells.
std::string SerializeRowWithout(const data::Table& table, size_t row,
                                size_t skip_col) {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c == skip_col) continue;
    const Value& v = table.at(row, c);
    if (v.is_null()) continue;
    if (!out.empty()) out += "; ";
    out += table.schema().column(c).name + " is " + v.ToString();
  }
  return out;
}

common::Result<Value> ParsePrediction(const std::string& text,
                                      ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: {
      double d = 0;
      if (!common::ParseDouble(text, &d)) {
        return common::Status::InvalidArgument("not numeric: " + text);
      }
      return Value::Int(static_cast<int64_t>(std::llround(d)));
    }
    case ColumnType::kDouble: {
      double d = 0;
      if (!common::ParseDouble(text, &d)) {
        return common::Status::InvalidArgument("not numeric: " + text);
      }
      return Value::Real(d);
    }
    case ColumnType::kBool: {
      std::string lower = common::ToLower(text);
      if (lower == "true") return Value::Bool(true);
      if (lower == "false") return Value::Bool(false);
      return common::Status::InvalidArgument("not boolean: " + text);
    }
    case ColumnType::kText:
      return Value::Text(text);
    default:
      return common::Status::Unimplemented("unsupported annotation type");
  }
}

}  // namespace

common::Result<MissingFieldAnnotator::Report> MissingFieldAnnotator::Annotate(
    data::Table* table, const std::string& column, llm::UsageMeter* meter) {
  auto col = table->schema().Find(column);
  if (!col.has_value()) {
    return common::Status::NotFound("no column " + column);
  }
  ColumnType type = table->schema().column(*col).type;

  // Complete rows become the example pool.
  std::vector<size_t> complete, incomplete;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    (table->at(r, *col).is_null() ? incomplete : complete).push_back(r);
  }
  Report report;
  report.missing = incomplete.size();
  if (incomplete.empty()) return report;
  if (complete.empty()) {
    return common::Status::FailedPrecondition(
        "no complete rows to use as ICL examples");
  }

  for (size_t target : incomplete) {
    llm::Prompt p;
    p.task_tag = "tabular_predict";
    p.instructions = "Predict the value of '" + column +
                     "' for the row from the examples.";
    p.sample_salt = options_.sample_salt + target;
    // Rotate through the example pool so prompts differ per row.
    for (size_t i = 0; i < std::min(options_.num_examples, complete.size());
         ++i) {
      size_t ex_row = complete[(target + i) % complete.size()];
      p.examples.push_back(
          {SerializeRowWithout(*table, ex_row, *col),
           table->at(ex_row, *col).ToString()});
    }
    p.input = SerializeRowWithout(*table, target, *col);
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                           model_->CompleteMetered(p, meter));
    auto parsed = ParsePrediction(c.text, type);
    if (!parsed.ok()) {
      ++report.unparseable;
      continue;
    }
    (*table->mutable_row(target))[*col] = *parsed;
    ++report.filled;
  }
  return report;
}

common::Result<data::Table> TabularSynthesizer::Synthesize(
    const data::Table& real, size_t num_rows, llm::UsageMeter* meter) {
  if (real.empty()) {
    return common::Status::InvalidArgument("empty source table");
  }
  data::Table out("synthetic_" + real.name(), real.schema());
  for (size_t i = 0; i < num_rows; ++i) {
    llm::Prompt p;
    p.task_tag = "tabular_generate";
    p.instructions = "Generate one more row like the examples.";
    p.sample_salt = i;
    for (size_t j = 0; j < std::min<size_t>(8, real.NumRows()); ++j) {
      size_t row = (i * 3 + j) % real.NumRows();
      p.examples.push_back({real.SerializeRowAsText(row), "ok"});
    }
    p.input = "generate one more row";
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c,
                           model_->CompleteMetered(p, meter));
    // Parse "k is v; ..." back into a typed row; malformed cells become NULL.
    data::Row row(real.NumColumns(), data::Value::Null());
    for (const std::string& part : common::Split(c.text, ';')) {
      std::string_view kv = common::Trim(part);
      size_t pos = kv.find(" is ");
      if (pos == std::string_view::npos) continue;
      auto col = real.schema().Find(kv.substr(0, pos));
      if (!col.has_value()) continue;
      auto parsed = ParsePrediction(std::string(common::Trim(kv.substr(pos + 4))),
                                    real.schema().column(*col).type);
      if (parsed.ok()) row[*col] = *parsed;
    }
    LLMDM_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

}  // namespace llmdm::generation
