#include "core/generation/training_data.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "core/generation/sql_generator.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace llmdm::generation {
namespace {

// Counts joins and predicates in a parsed SELECT (sub-queries included).
void CountShape(const sql::SelectStmt& sel, double* joins, double* predicates);

void CountExprPredicates(const sql::Expr& e, double* joins,
                         double* predicates) {
  switch (e.kind) {
    case sql::ExprKind::kBinary:
      if (e.op == "AND" || e.op == "OR") {
        CountExprPredicates(*e.args[0], joins, predicates);
        CountExprPredicates(*e.args[1], joins, predicates);
      } else if (e.op == "=" || e.op == "<>" || e.op == "<" || e.op == "<=" ||
                 e.op == ">" || e.op == ">=") {
        *predicates += 1;
      }
      return;
    case sql::ExprKind::kLike:
    case sql::ExprKind::kBetween:
    case sql::ExprKind::kIsNull:
    case sql::ExprKind::kInList:
      *predicates += 1;
      return;
    case sql::ExprKind::kInSubquery:
    case sql::ExprKind::kExists:
    case sql::ExprKind::kScalarSubquery:
      *predicates += 1;
      if (e.subquery) CountShape(*e.subquery, joins, predicates);
      return;
    default:
      for (const auto& a : e.args) CountExprPredicates(*a, joins, predicates);
  }
}

void CountTableRef(const sql::TableRef& ref, double* joins,
                   double* predicates) {
  if (ref.kind == sql::TableRef::Kind::kJoin) {
    *joins += 1;
    CountTableRef(*ref.left, joins, predicates);
    CountTableRef(*ref.right, joins, predicates);
    if (ref.on) CountExprPredicates(*ref.on, joins, predicates);
  } else if (ref.kind == sql::TableRef::Kind::kSubquery && ref.subquery) {
    CountShape(*ref.subquery, joins, predicates);
  }
}

void CountShape(const sql::SelectStmt& sel, double* joins,
                double* predicates) {
  for (const auto& f : sel.from) CountTableRef(*f, joins, predicates);
  if (sel.from.size() > 1) *joins += static_cast<double>(sel.from.size() - 1);
  if (sel.where) CountExprPredicates(*sel.where, joins, predicates);
  if (sel.having) CountExprPredicates(*sel.having, joins, predicates);
}

void CollectBaseTables(const sql::TableRef& ref,
                       std::vector<std::string>* out) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kBase:
      out->push_back(ref.table_name);
      return;
    case sql::TableRef::Kind::kSubquery:
      if (ref.subquery) {
        for (const auto& f : ref.subquery->from) CollectBaseTables(*f, out);
      }
      return;
    case sql::TableRef::Kind::kJoin:
      CollectBaseTables(*ref.left, out);
      CollectBaseTables(*ref.right, out);
      return;
  }
}

}  // namespace

std::string QueryCostExample::SerializeFeatures() const {
  return common::StrFormat(
      "num_joins is %.0f; num_predicates is %.0f; scan_rows is %.0f",
      num_joins, num_predicates, scan_rows);
}

common::Result<std::vector<QueryCostExample>> GenerateQueryCostDataset(
    sql::Database& db, size_t n, common::Rng& rng) {
  SqlGenerator generator(nullptr, rng.Next());
  SqlGenConstraints constraints;
  constraints.count = n;
  constraints.multi_join_fraction = 0.35;
  constraints.subquery_fraction = 0.25;
  constraints.aggregate_fraction = 0.2;
  LLMDM_ASSIGN_OR_RETURN(std::vector<GeneratedSql> queries,
                         generator.Generate(db, constraints));

  std::vector<QueryCostExample> out;
  for (const GeneratedSql& q : queries) {
    auto parsed = sql::ParseSelect(q.sql);
    if (!parsed.ok()) continue;
    QueryCostExample ex;
    ex.sql = q.sql;
    CountShape(**parsed, &ex.num_joins, &ex.num_predicates);
    std::vector<std::string> tables;
    for (const auto& f : (*parsed)->from) CollectBaseTables(*f, &tables);
    for (const std::string& t : tables) {
      auto table = db.catalog().GetTable(t);
      if (table.ok()) ex.scan_rows += static_cast<double>((*table)->NumRows());
    }
    // Synthetic-but-structured cost: scans are linear, each join multiplies
    // work, predicates add per-row evaluation; multiplicative log-normal
    // noise models runtime variance. The *structure* is what the learned
    // model must recover.
    double base = 0.05 * ex.scan_rows * (1.0 + 0.8 * ex.num_joins) +
                  0.4 * ex.num_predicates + 1.0;
    double noise = std::exp(rng.Normal(0.0, 0.12));
    ex.execution_time_ms = base * noise;
    out.push_back(std::move(ex));
  }
  return out;
}

common::Result<double> IclCostPredictor::Predict(
    const QueryCostExample& target, const std::vector<QueryCostExample>& corpus,
    llm::UsageMeter* meter) const {
  if (corpus.empty()) {
    return common::Status::InvalidArgument("empty example corpus");
  }
  // Nearest examples by normalized feature distance (client-side example
  // selection, the paper's Fig. 3 setup).
  std::vector<double> target_features = target.Features();
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::vector<double> f = corpus[i].Features();
    double d = 0;
    for (size_t j = 0; j < f.size(); ++j) {
      double scale = std::max(std::abs(target_features[j]), 1.0);
      d += std::abs(f[j] - target_features[j]) / scale;
    }
    ranked.emplace_back(d, i);
  }
  std::sort(ranked.begin(), ranked.end());

  llm::Prompt p;
  p.task_tag = "tabular_predict";
  p.instructions =
      "Predict execution_time_ms for the query features from the examples.";
  size_t k = std::min(num_examples_, ranked.size());
  for (size_t i = 0; i < k; ++i) {
    const QueryCostExample& ex = corpus[ranked[i].second];
    p.examples.push_back(
        {ex.SerializeFeatures(),
         common::StrFormat("%.2f", ex.execution_time_ms)});
  }
  p.input = target.SerializeFeatures();
  LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model_->CompleteMetered(p, meter));
  double value = 0;
  if (!common::ParseDouble(c.text, &value)) {
    return common::Status::Internal("model returned non-numeric time: " +
                                    c.text);
  }
  return value;
}

common::Result<std::vector<QueryCostExample>> AugmentCostDataset(
    const std::vector<QueryCostExample>& real, double augmentation_factor,
    llm::LlmModel& model, llm::UsageMeter* meter) {
  std::vector<QueryCostExample> out = real;
  size_t synth = static_cast<size_t>(augmentation_factor *
                                     static_cast<double>(real.size()));
  for (size_t i = 0; i < synth; ++i) {
    llm::Prompt p;
    p.task_tag = "tabular_generate";
    p.instructions = "Generate one more <query features, time> row.";
    // Rotate a window of examples so draws vary.
    for (size_t j = 0; j < std::min<size_t>(8, real.size()); ++j) {
      const QueryCostExample& ex = real[(i + j) % real.size()];
      p.examples.push_back(
          {ex.SerializeFeatures() +
               common::StrFormat("; execution_time_ms is %.2f",
                                 ex.execution_time_ms),
           "ok"});
    }
    p.input = "generate one more row";
    p.sample_salt = i;
    LLMDM_ASSIGN_OR_RETURN(llm::Completion c, model.CompleteMetered(p, meter));
    // Parse the serialized row back.
    QueryCostExample ex;
    bool ok = true;
    double time = 0;
    for (const std::string& part : common::Split(c.text, ';')) {
      std::string_view kv = common::Trim(part);
      size_t pos = kv.find(" is ");
      if (pos == std::string_view::npos) continue;
      std::string key(kv.substr(0, pos));
      double value = 0;
      if (!common::ParseDouble(kv.substr(pos + 4), &value)) {
        ok = false;
        break;
      }
      if (key == "num_joins") ex.num_joins = std::max(0.0, value);
      else if (key == "num_predicates") ex.num_predicates = std::max(0.0, value);
      else if (key == "scan_rows") ex.scan_rows = std::max(0.0, value);
      else if (key == "execution_time_ms") time = value;
    }
    if (!ok || time <= 0) continue;  // discard malformed synthetic rows
    ex.sql = "-- synthetic";
    ex.execution_time_ms = time;
    out.push_back(std::move(ex));
  }
  return out;
}

double EvaluateCostModel(const std::vector<QueryCostExample>& train,
                         const std::vector<QueryCostExample>& holdout) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const QueryCostExample& ex : train) {
    x.push_back(ex.Features());
    y.push_back(ex.execution_time_ms);
  }
  ml::LinearRegression model;
  model.Train(x, y);
  std::vector<std::vector<double>> hx;
  std::vector<double> hy;
  for (const QueryCostExample& ex : holdout) {
    hx.push_back(ex.Features());
    hy.push_back(ex.execution_time_ms);
  }
  return model.Mape(hx, hy);
}

}  // namespace llmdm::generation
