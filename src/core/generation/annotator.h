#ifndef LLMDM_CORE_GENERATION_ANNOTATOR_H_
#define LLMDM_CORE_GENERATION_ANNOTATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "llm/model.h"

namespace llmdm::generation {

/// Fills missing fields in tabular data via few-shot ICL (Sec. II-A.2):
/// complete rows are serialized as natural language examples, incomplete
/// rows are completed by the model, and predictions are parsed back into
/// typed cells.
class MissingFieldAnnotator {
 public:
  struct Options {
    size_t num_examples = 8;
    uint64_t sample_salt = 0;
  };

  MissingFieldAnnotator(std::shared_ptr<llm::LlmModel> model,
                        const Options& options)
      : model_(std::move(model)), options_(options) {}

  struct Report {
    size_t missing = 0;
    size_t filled = 0;
    size_t unparseable = 0;  // model output didn't fit the column type
  };

  /// Fills NULLs in `column` of `table` in place.
  common::Result<Report> Annotate(data::Table* table,
                                  const std::string& column,
                                  llm::UsageMeter* meter = nullptr);

 private:
  std::shared_ptr<llm::LlmModel> model_;
  Options options_;
};

/// Generates a synthetic table mimicking `real`'s marginal distributions via
/// the model's tabular_generate skill (Sec. II-A.2, footnote 1: synthetic
/// data as a privacy-safe replacement training set).
class TabularSynthesizer {
 public:
  explicit TabularSynthesizer(std::shared_ptr<llm::LlmModel> model)
      : model_(std::move(model)) {}

  common::Result<data::Table> Synthesize(const data::Table& real,
                                         size_t num_rows,
                                         llm::UsageMeter* meter = nullptr);

 private:
  std::shared_ptr<llm::LlmModel> model_;
};

}  // namespace llmdm::generation

#endif  // LLMDM_CORE_GENERATION_ANNOTATOR_H_
