#ifndef LLMDM_CORE_GENERATION_SQL_GENERATOR_H_
#define LLMDM_CORE_GENERATION_SQL_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "llm/model.h"
#include "sql/database.h"

namespace llmdm::generation {

/// Constraints on a generation batch (Fig. 2's "SQL constraints" input).
struct SqlGenConstraints {
  size_t count = 10;
  /// Every emitted query must execute without error on the target database.
  bool require_executable = true;
  /// Target mix of query shapes (fractions of `count`, best effort).
  double multi_join_fraction = 0.3;
  double subquery_fraction = 0.2;
  double aggregate_fraction = 0.3;
  /// Generation attempts per emitted query before giving up.
  size_t max_attempts_per_query = 20;
};

/// One generated query with its classification.
struct GeneratedSql {
  std::string sql;
  enum class Kind { kSimple, kMultiJoin, kSubquery, kAggregate } kind;
  bool executable = false;
  size_t result_rows = 0;
};

std::string_view GeneratedSqlKindName(GeneratedSql::Kind kind);

/// Schema-grounded SQL generator (Sec. II-A.1, Fig. 2): reads the catalog,
/// emits diverse queries of the requested shapes, validates executability by
/// running them, and can emit semantically-equivalent query pairs for logic
/// bug detection (pivoted-query-synthesis style [20]).
///
/// The (optional) LLM is consulted once per batch with the schema + the
/// constraints — its metered cost models the Fig. 2 interaction; the
/// schema-grounded enumeration and the executability/equivalence checking
/// are exact local algorithms (they are the verification loop the paper says
/// users run around the LLM).
class SqlGenerator {
 public:
  SqlGenerator(std::shared_ptr<llm::LlmModel> advisor, uint64_t seed)
      : advisor_(std::move(advisor)), rng_(seed) {}

  /// Generates queries meeting `constraints` against `db`.
  common::Result<std::vector<GeneratedSql>> Generate(
      sql::Database& db, const SqlGenConstraints& constraints,
      llm::UsageMeter* meter = nullptr);

  /// Generates pairs of queries that must produce identical results
  /// (rewrites: IN-list <-> OR chain, BETWEEN <-> range conjunction,
  /// commuted conjuncts). Each pair is verified by execution; a mismatch
  /// would indicate a logic bug in the engine under test.
  common::Result<std::vector<std::pair<std::string, std::string>>>
  GenerateEquivalentPairs(sql::Database& db, size_t count,
                          llm::UsageMeter* meter = nullptr);

 private:
  struct TableProfile {
    std::string name;
    std::vector<std::string> int_columns;
    std::vector<std::string> text_columns;
    std::vector<int64_t> sample_ints;
    std::vector<std::string> sample_texts;
  };

  common::Result<std::vector<TableProfile>> ProfileCatalog(sql::Database& db);
  std::string MakeSimple(const TableProfile& t);
  std::string MakeAggregate(const TableProfile& t);
  common::Result<std::string> MakeMultiJoin(
      const std::vector<TableProfile>& tables);
  common::Result<std::string> MakeSubquery(
      const std::vector<TableProfile>& tables);
  std::string MakePredicate(const TableProfile& t, const std::string& alias);

  std::shared_ptr<llm::LlmModel> advisor_;
  common::Rng rng_;
};

}  // namespace llmdm::generation

#endif  // LLMDM_CORE_GENERATION_SQL_GENERATOR_H_
