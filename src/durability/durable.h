#ifndef LLMDM_DURABILITY_DURABLE_H_
#define LLMDM_DURABILITY_DURABLE_H_

#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "durability/format.h"

namespace llmdm::durability {

/// A component whose state can be captured as a point-in-time byte image and
/// restored from one. The image is the component's *durable* state — the
/// bytes that cost money to rebuild (queries, responses, vectors, outcome
/// tallies). Process-local heat (ticks, hit counters, doorkeeper windows,
/// metric counters) is deliberately excluded: it is cheap to re-learn, and
/// excluding it makes "recovered state == reference state" a byte-equality
/// check (two stores that applied the same operations serialize identically
/// even if one of them also served lookups).
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  /// Drops all state, returning the component to its freshly constructed
  /// (empty) form. Recovery-time only: not thread-safe against concurrent
  /// use of the component.
  virtual void ResetToEmpty() = 0;

  /// Appends the durable image to `out`. Must be a pure function of durable
  /// state: save → load → save must reproduce the bytes exactly.
  virtual common::Status SaveSnapshot(std::string* out) const = 0;

  /// Rebuilds state from an image produced by SaveSnapshot. Called on an
  /// empty component (after ResetToEmpty); derived data (embeddings, token
  /// counts, index graphs) is recomputed deterministically.
  virtual common::Status LoadSnapshot(ByteReader& in) = 0;
};

/// A component that can re-apply its own WAL records. Records are *physical*
/// (insert this entry, evict this slot, compact this shard) rather than
/// logical, so replay bypasses admission/eviction heuristics and lands in
/// exactly the state the original process reached — heuristics may consult
/// non-durable heat, and re-running them on replay would diverge.
class WalReplayable {
 public:
  virtual ~WalReplayable() = default;

  /// Applies one record payload (as passed to DurableStore::Append). Returns
  /// an error only for structurally impossible records (a checksummed-valid
  /// record referencing a missing slot means a format bug or a WAL from an
  /// incompatible configuration) — torn/corrupt tails never reach here.
  virtual common::Status ApplyWalRecord(std::string_view payload) = 0;
};

/// What DurableStore manages: snapshot + WAL over one component.
class DurableState : public Snapshottable, public WalReplayable {};

/// Shared-side handle on a store's commit gate. A component holds one across
/// "mutate state, then append the WAL record" so a concurrent Checkpoint
/// (which takes the exclusive side) can never serialize a snapshot between
/// the mutation and its record — the torn interleaving that would replay an
/// operation on top of a snapshot that already contains it. Default
/// constructed = empty (no durability attached); cheap to move.
class MutationGuard {
 public:
  MutationGuard() = default;
  explicit MutationGuard(std::shared_mutex& mu) : lock_(mu) {}

  bool held() const { return lock_.owns_lock(); }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_DURABLE_H_
