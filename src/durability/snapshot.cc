#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "durability/format.h"

namespace llmdm::durability {

namespace {

constexpr char kSnapMagic[8] = {'L', 'D', 'M', 'S', 'N', 'A', 'P', '1'};
constexpr uint64_t kMaxSnapshotPayload = 1ull << 40;

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

common::Status WriteFully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(std::string("write: ") +
                                      std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return common::Status::Ok();
}

}  // namespace

SnapshotView ParseSnapshot(std::string_view bytes) {
  SnapshotView out;
  if (bytes.size() < kSnapshotHeaderSize) return out;
  if (std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return out;
  }
  ByteReader header(
      bytes.substr(sizeof(kSnapMagic), kSnapshotHeaderSize - sizeof(kSnapMagic)));
  uint32_t version = 0;
  uint64_t epoch = 0;
  uint64_t payload_len = 0;
  if (!header.ReadU32(&version).ok() || !header.ReadU64(&epoch).ok() ||
      !header.ReadU64(&payload_len).ok()) {
    return out;
  }
  if (version != kSnapshotVersion) return out;
  if (payload_len > kMaxSnapshotPayload) return out;
  if (bytes.size() - kSnapshotHeaderSize < payload_len + sizeof(uint64_t)) {
    return out;  // truncated payload or missing trailing checksum
  }
  std::string_view payload = bytes.substr(kSnapshotHeaderSize, payload_len);
  ByteReader trailer(
      bytes.substr(kSnapshotHeaderSize + payload_len, sizeof(uint64_t)));
  uint64_t checksum = 0;
  if (!trailer.ReadU64(&checksum).ok()) return out;
  // The checksum covers everything after the magic — version, epoch, length
  // AND payload — so a bit flip in the epoch cannot validate and silently
  // pair the snapshot with the wrong WAL.
  std::string_view covered =
      bytes.substr(sizeof(kSnapMagic), kSnapshotHeaderSize -
                                           sizeof(kSnapMagic) + payload_len);
  if (common::Fnv1a(covered) != checksum) return out;
  out.valid = true;
  out.epoch = epoch;
  out.payload = payload;
  return out;
}

common::Status WriteSnapshotFile(const std::string& path, uint64_t epoch,
                                 std::string_view payload, bool fsync) {
  std::string bytes;
  bytes.reserve(kSnapshotHeaderSize + payload.size() + sizeof(uint64_t));
  bytes.append(kSnapMagic, sizeof(kSnapMagic));
  AppendU32(&bytes, kSnapshotVersion);
  AppendU64(&bytes, epoch);
  AppendU64(&bytes, payload.size());
  bytes.append(payload.data(), payload.size());
  AppendU64(&bytes, common::Fnv1a(std::string_view(bytes).substr(
                        sizeof(kSnapMagic))));

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return common::Status::Internal("open(" + tmp +
                                    "): " + std::strerror(errno));
  }
  common::Status s = WriteFully(fd, bytes.data(), bytes.size());
  if (s.ok() && fsync && ::fdatasync(fd) != 0) {
    s = common::Status::Internal("fdatasync(" + tmp +
                                 "): " + std::strerror(errno));
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return common::Status::Internal("rename(" + tmp + ", " + path +
                                    "): " + std::strerror(err));
  }
  if (fsync) {
    // Make the rename itself durable: the directory entry is metadata of the
    // directory, not the file.
    int dfd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return common::Status::Ok();
}

}  // namespace llmdm::durability
