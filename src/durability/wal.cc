#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/hash.h"
#include "durability/format.h"
#include "durability/mmap_file.h"

namespace llmdm::durability {

namespace {

constexpr char kWalMagic[8] = {'L', 'D', 'M', 'W', 'A', 'L', '0', '1'};
// Corruption guard: a torn length prefix must not be believed when it claims
// a record bigger than anything the library writes.
constexpr uint32_t kMaxRecordLen = 1u << 30;

std::string HeaderBytes(uint64_t epoch) {
  std::string h;
  h.append(kWalMagic, sizeof(kWalMagic));
  AppendU32(&h, kWalVersion);
  AppendU64(&h, epoch);
  return h;
}

common::Status WriteFully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(std::string("write: ") +
                                      std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return common::Status::Ok();
}

}  // namespace

WalWriter::WalWriter(std::string path, int fd, uint64_t epoch, uint64_t size,
                     bool fsync)
    : path_(std::move(path)),
      fd_(fd),
      epoch_(epoch),
      size_(size),
      fsync_(fsync) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    (void)FlushLocked();  // best effort; a clean close loses nothing
    if (fsync_) ::fdatasync(fd_);
    ::close(fd_);
  }
}

common::Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::string& path, uint64_t epoch, bool fsync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return common::Status::Internal("open(" + path +
                                    "): " + std::strerror(errno));
  }
  std::string header = HeaderBytes(epoch);
  common::Status s = WriteFully(fd, header.data(), header.size());
  if (s.ok() && fsync && ::fdatasync(fd) != 0) {
    s = common::Status::Internal("fdatasync(" + path +
                                 "): " + std::strerror(errno));
  }
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, epoch, header.size(), fsync));
}

common::Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t epoch, uint64_t valid_size,
    bool fsync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return common::Status::Internal("open(" + path +
                                    "): " + std::strerror(errno));
  }
  // Cut the torn tail before the first new append: the verified prefix must
  // be contiguous with everything written from here on.
  if (::ftruncate(fd, static_cast<off_t>(valid_size)) != 0) {
    int err = errno;
    ::close(fd);
    return common::Status::Internal("ftruncate(" + path +
                                    "): " + std::strerror(err));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    int err = errno;
    ::close(fd);
    return common::Status::Internal("lseek(" + path +
                                    "): " + std::strerror(err));
  }
  if (fsync && ::fdatasync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return common::Status::Internal("fdatasync(" + path +
                                    "): " + std::strerror(err));
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, epoch, valid_size, fsync));
}

common::Status WalWriter::Append(std::string_view payload) {
  std::string record;
  record.reserve(kWalRecordOverhead + payload.size());
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU64(&record, common::Fnv1a(payload));
  record.append(payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mu_);
  pending_.append(record);
  if (group_commit_bytes_ == 0 || pending_.size() >= group_commit_bytes_) {
    return FlushLocked();
  }
  return common::Status::Ok();
}

common::Status WalWriter::FlushLocked() {
  size_t to_write = pending_.size();
  if (crash_after_bytes_ >= 0) {
    uint64_t limit = static_cast<uint64_t>(crash_after_bytes_);
    if (size_ >= limit) {
      // The simulated power cut already happened; the writer stays dead
      // even for empty flushes (Sync after a torn batch must not report ok).
      pending_.clear();
      return common::Status::Aborted("simulated crash: WAL write limit hit");
    }
    to_write = std::min<size_t>(to_write, limit - size_);
  }
  if (pending_.empty()) return common::Status::Ok();
  common::Status written = WriteFully(fd_, pending_.data(), to_write);
  if (!written.ok()) return written;
  size_ += to_write;
  bool torn = to_write < pending_.size();
  pending_.clear();
  if (torn) {
    return common::Status::Aborted("simulated crash: record torn at byte " +
                                   std::to_string(size_));
  }
  return common::Status::Ok();
}

common::Status WalWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

common::Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  LLMDM_RETURN_IF_ERROR(FlushLocked());
  if (::fdatasync(fd_) != 0) {
    return common::Status::Internal("fdatasync(" + path_ +
                                    "): " + std::strerror(errno));
  }
  return common::Status::Ok();
}

uint64_t WalWriter::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_ + pending_.size();
}

void WalWriter::set_group_commit_bytes(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  group_commit_bytes_ = n;
}

void WalWriter::set_crash_after_bytes(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_bytes_ = n;
}

bool PeekWalHeader(std::string_view bytes, uint64_t* epoch) {
  if (bytes.size() < kWalHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return false;
  }
  ByteReader header(bytes.substr(sizeof(kWalMagic),
                                 kWalHeaderSize - sizeof(kWalMagic)));
  uint32_t version = 0;
  uint64_t e = 0;
  if (!header.ReadU32(&version).ok() || !header.ReadU64(&e).ok()) return false;
  if (version != kWalVersion) return false;
  *epoch = e;
  return true;
}

common::Result<WalReplayResult> ReplayWalFile(
    const std::string& path,
    const std::function<common::Status(std::string_view)>& fn) {
  LLMDM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  std::string_view bytes = file.data();
  WalReplayResult out;

  // Header: anything short of a full, matching header means "no committed
  // records" (crash before the first sync, or a foreign file) — a valid
  // empty log, with every byte reported as discarded.
  if (bytes.size() < kWalHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    out.discarded_bytes = bytes.size();
    out.torn_tail = !bytes.empty();
    return out;
  }
  ByteReader header(bytes.substr(sizeof(kWalMagic), kWalHeaderSize -
                                                        sizeof(kWalMagic)));
  uint32_t version = 0;
  (void)header.ReadU32(&version).ok();
  (void)header.ReadU64(&out.epoch).ok();
  if (version != kWalVersion) {
    out.discarded_bytes = bytes.size();
    out.torn_tail = true;
    return out;
  }
  out.header_valid = true;
  out.valid_bytes = kWalHeaderSize;

  size_t off = kWalHeaderSize;
  while (off < bytes.size()) {
    if (bytes.size() - off < kWalRecordOverhead) break;  // torn record header
    ByteReader rec(bytes.substr(off, kWalRecordOverhead));
    uint32_t len = 0;
    uint64_t checksum = 0;
    (void)rec.ReadU32(&len).ok();
    (void)rec.ReadU64(&checksum).ok();
    if (len > kMaxRecordLen) break;  // corrupt length prefix
    if (bytes.size() - off - kWalRecordOverhead < len) break;  // torn payload
    std::string_view payload = bytes.substr(off + kWalRecordOverhead, len);
    if (common::Fnv1a(payload) != checksum) break;  // garbled payload
    LLMDM_RETURN_IF_ERROR(fn(payload));
    off += kWalRecordOverhead + len;
    ++out.records;
    out.valid_bytes = off;
  }
  out.discarded_bytes = bytes.size() - out.valid_bytes;
  out.torn_tail = out.discarded_bytes > 0;
  return out;
}

}  // namespace llmdm::durability
