#include "durability/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "durability/mmap_file.h"
#include "durability/snapshot.h"

namespace llmdm::durability {

namespace {

void FsyncDir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Parses the epoch suffix of "<stem>.wal.<digits>". Returns false when
/// `filename` is not a WAL of this stem.
bool ParseWalEpoch(const std::string& filename, const std::string& stem,
                   uint64_t* epoch) {
  const std::string prefix = stem + ".wal.";
  if (filename.size() <= prefix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < filename.size(); ++i) {
    char c = filename[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

DurableStore::DurableStore(Options options, DurableState* state)
    : options_(std::move(options)), state_(state) {
  obs::Registry* registry = options_.registry;
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  const obs::Labels labels = {{"store", options_.name}};
  metrics_.wal_records =
      registry->GetCounter("llmdm_durability_wal_records_total", labels);
  metrics_.wal_bytes =
      registry->GetCounter("llmdm_durability_wal_bytes_total", labels);
  metrics_.wal_syncs =
      registry->GetCounter("llmdm_durability_wal_syncs_total", labels);
  metrics_.checkpoints =
      registry->GetCounter("llmdm_durability_checkpoints_total", labels);
  metrics_.snapshot_bytes =
      registry->GetGauge("llmdm_durability_snapshot_bytes", labels);
  metrics_.recoveries =
      registry->GetCounter("llmdm_durability_recoveries_total", labels);
  metrics_.torn_recoveries =
      registry->GetCounter("llmdm_durability_torn_recoveries_total", labels);
  metrics_.recovery_replayed_records = registry->GetCounter(
      "llmdm_durability_recovery_replayed_records_total", labels);
  metrics_.recovery_discarded_bytes = registry->GetCounter(
      "llmdm_durability_recovery_discarded_bytes_total", labels);
}

common::Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const Options& options, DurableState* state) {
  if (options.dir.empty() || options.name.empty()) {
    return common::Status::InvalidArgument(
        "DurableStore needs a directory and a name");
  }
  if (state == nullptr) {
    return common::Status::InvalidArgument("DurableStore needs a component");
  }
  std::unique_ptr<DurableStore> store(new DurableStore(options, state));
  LLMDM_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string DurableStore::snapshot_path() const {
  return options_.dir + "/" + options_.name + ".snap";
}

std::string DurableStore::wal_path(uint64_t epoch) const {
  return options_.dir + "/" + options_.name + ".wal." + std::to_string(epoch);
}

common::Status DurableStore::Recover() {
  recovery_ = RecoveryInfo{};
  recovery_trace_ =
      std::make_unique<obs::TraceContext>("durability_recovery", 0.0);
  obs::Span* snap_span =
      recovery_trace_->StartSpan("snapshot_load", 0.0);

  state_->ResetToEmpty();

  // Phase 1: snapshot. A missing file is a cold start; a file that fails to
  // verify (truncated copy, external corruption — the rename protocol never
  // produces one) falls back to empty-but-valid at epoch 0 rather than
  // refusing to start.
  {
    auto mapped = MappedFile::Open(snapshot_path());
    if (mapped.ok()) {
      SnapshotView view = ParseSnapshot(mapped.value().data());
      if (view.valid) {
        ByteReader reader(view.payload);
        common::Status loaded = state_->LoadSnapshot(reader);
        if (loaded.ok()) {
          recovery_.snapshot_loaded = true;
          recovery_.epoch = view.epoch;
          epoch_ = view.epoch;
        } else {
          // Checksummed-valid bytes the component rejects: treat like
          // corruption (empty-but-valid), not a crash loop on startup.
          state_->ResetToEmpty();
          recovery_.snapshot_corrupt = true;
        }
      } else {
        recovery_.snapshot_corrupt = true;
      }
    } else if (mapped.status().code() != common::StatusCode::kNotFound) {
      return mapped.status();
    }
  }
  recovery_trace_->SetAttr(snap_span, "loaded",
                           recovery_.snapshot_loaded ? "true" : "false");
  recovery_trace_->SetAttr(snap_span, "corrupt",
                           recovery_.snapshot_corrupt ? "true" : "false");
  recovery_trace_->SetAttr(snap_span, "epoch", std::to_string(epoch_));
  recovery_trace_->EndSpan(snap_span, 1.0);

  // Phase 2: the WAL for the recovered epoch. Replay stops at the first
  // record whose length or checksum fails; the tail past that point is
  // truncated before appends resume. A WAL whose header does not verify or
  // whose embedded epoch disagrees with its filename carries no trustworthy
  // records and is recreated empty.
  obs::Span* wal_span = recovery_trace_->StartSpan("wal_replay", 1.0);
  const std::string wal_file = wal_path(epoch_);
  bool wal_exists = true;
  bool wal_usable = false;
  {
    auto mapped = MappedFile::Open(wal_file);
    if (mapped.ok()) {
      // Check the embedded epoch before replay starts — ReplayWalFile applies
      // records as it scans, and records from a mismatched epoch must never
      // reach the component.
      uint64_t header_epoch = 0;
      if (PeekWalHeader(mapped.value().data(), &header_epoch) &&
          header_epoch == epoch_) {
        auto replayed = ReplayWalFile(
            wal_file, [this](std::string_view payload) {
              return state_->ApplyWalRecord(payload);
            });
        LLMDM_RETURN_IF_ERROR(replayed.status());
        const WalReplayResult& r = replayed.value();
        wal_usable = true;
        recovery_.wal_records_replayed = r.records;
        recovery_.wal_valid_bytes = r.valid_bytes;
        recovery_.wal_discarded_bytes = r.discarded_bytes;
        recovery_.torn_tail = r.torn_tail;
      } else {
        recovery_.wal_discarded_bytes = mapped.value().size();
        recovery_.torn_tail = mapped.value().size() > 0;
      }
    } else if (mapped.status().code() == common::StatusCode::kNotFound) {
      wal_exists = false;
    } else {
      return mapped.status();
    }
  }
  if (wal_usable) {
    LLMDM_ASSIGN_OR_RETURN(
        writer_, WalWriter::OpenForAppend(wal_file, epoch_,
                                          recovery_.wal_valid_bytes,
                                          options_.fsync));
  } else {
    LLMDM_ASSIGN_OR_RETURN(
        writer_, WalWriter::Create(wal_file, epoch_, options_.fsync));
  }
  writer_->set_group_commit_bytes(options_.group_commit_bytes);
  (void)wal_exists;
  recovery_trace_->SetAttr(wal_span, "records",
                           std::to_string(recovery_.wal_records_replayed));
  recovery_trace_->SetAttr(wal_span, "discarded_bytes",
                           std::to_string(recovery_.wal_discarded_bytes));
  recovery_trace_->SetAttr(wal_span, "torn",
                           recovery_.torn_tail ? "true" : "false");
  recovery_trace_->EndSpan(wal_span, 2.0);

  // Phase 3: sweep files a crash may have stranded — WALs of other epochs
  // (left when a crash hit between a checkpoint's rename and its delete) and
  // an unpublished snapshot tmp.
  recovery_.orphans_removed = RemoveOrphans(epoch_);
  recovery_trace_->EndSpan(recovery_trace_->root_span(), 2.0);

  metrics_.recoveries->Add(1);
  if (recovery_.torn_tail || recovery_.snapshot_corrupt) {
    metrics_.torn_recoveries->Add(1);
  }
  metrics_.recovery_replayed_records->Add(recovery_.wal_records_replayed);
  metrics_.recovery_discarded_bytes->Add(recovery_.wal_discarded_bytes);
  return common::Status::Ok();
}

size_t DurableStore::RemoveOrphans(uint64_t keep_epoch) {
  size_t removed = 0;
  std::vector<std::string> doomed;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return 0;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string filename = entry->d_name;
    uint64_t epoch = 0;
    if (ParseWalEpoch(filename, options_.name, &epoch)) {
      if (epoch != keep_epoch) doomed.push_back(filename);
    } else if (filename == options_.name + ".snap.tmp") {
      doomed.push_back(filename);
    }
  }
  ::closedir(dir);
  for (const std::string& filename : doomed) {
    if (::unlink((options_.dir + "/" + filename).c_str()) == 0) ++removed;
  }
  if (removed > 0 && options_.fsync) FsyncDir(options_.dir);
  return removed;
}

common::Status DurableStore::Append(const MutationGuard& guard,
                                    std::string_view payload) {
  if (!guard.held()) {
    return common::Status::FailedPrecondition(
        "Append requires a guard from BeginMutation");
  }
  std::lock_guard<std::mutex> lock(mu_);
  LLMDM_RETURN_IF_ERROR(writer_->Append(payload));
  metrics_.wal_records->Add(1);
  metrics_.wal_bytes->Add(kWalRecordOverhead + payload.size());
  return common::Status::Ok();
}

common::Status DurableStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  LLMDM_RETURN_IF_ERROR(writer_->Sync());
  metrics_.wal_syncs->Add(1);
  return common::Status::Ok();
}

common::Status DurableStore::Checkpoint() {
  // Exclusive side of the commit gate: no mutate+append pair is in flight,
  // so the serialized image and the record stream cannot interleave.
  std::unique_lock<std::shared_mutex> gate(gate_);
  std::string payload;
  LLMDM_RETURN_IF_ERROR(state_->SaveSnapshot(&payload));

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t next = epoch_ + 1;
  LLMDM_RETURN_IF_ERROR(
      WriteSnapshotFile(snapshot_path(), next, payload, options_.fsync));
  // From here the published snapshot already covers everything in the old
  // WAL; a crash before the swap below recovers from snap@next alone and
  // sweeps wal.epoch_ as an orphan.
  LLMDM_ASSIGN_OR_RETURN(
      auto next_writer, WalWriter::Create(wal_path(next), next,
                                          options_.fsync));
  next_writer->set_group_commit_bytes(options_.group_commit_bytes);
  const std::string old_wal = wal_path(epoch_);
  writer_ = std::move(next_writer);
  epoch_ = next;
  ::unlink(old_wal.c_str());
  if (options_.fsync) FsyncDir(options_.dir);

  metrics_.checkpoints->Add(1);
  metrics_.snapshot_bytes->Set(static_cast<int64_t>(payload.size()));
  return common::Status::Ok();
}

uint64_t DurableStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t DurableStore::wal_size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_->size_bytes();
}

void DurableStore::set_crash_after_bytes(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  writer_->set_crash_after_bytes(n);
}

}  // namespace llmdm::durability
