#ifndef LLMDM_DURABILITY_FORMAT_H_
#define LLMDM_DURABILITY_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace llmdm::durability {

/// Byte-level encoding shared by the WAL and snapshot formats. Everything is
/// explicit little-endian fixed width, so files written on one platform
/// replay on any other and two serializations of the same state are
/// byte-identical — the property every crash-consistency assertion in the
/// durability suite rests on. Floats are written as raw IEEE-754 bit
/// patterns (bit-stable, no text round-trip).

void AppendU8(std::string* out, uint8_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendI64(std::string* out, int64_t v);
/// Raw IEEE-754 double bit pattern (bit-stable, like AppendFloats).
void AppendF64(std::string* out, double v);
/// u32 length prefix + raw bytes.
void AppendString(std::string* out, std::string_view s);
/// u32 count prefix + raw 4-byte IEEE-754 floats.
void AppendFloats(std::string* out, const std::vector<float>& v);

/// Bounds-checked sequential reader over a serialized buffer. Every Read
/// fails with kOutOfRange instead of reading past the end, so a truncated or
/// corrupted payload surfaces as a clean Status — never as UB. The reader
/// does not own the bytes; keep the backing buffer (or mmap) alive.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  common::Status ReadU8(uint8_t* v);
  common::Status ReadU32(uint32_t* v);
  common::Status ReadU64(uint64_t* v);
  common::Status ReadI64(int64_t* v);
  common::Status ReadF64(double* v);
  common::Status ReadString(std::string* s);
  common::Status ReadFloats(std::vector<float>* v);

  size_t remaining() const { return data_.size() - offset_; }
  bool empty() const { return remaining() == 0; }
  size_t offset() const { return offset_; }

 private:
  common::Status Take(size_t n, const char** p);

  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_FORMAT_H_
