#ifndef LLMDM_DURABILITY_SNAPSHOT_H_
#define LLMDM_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace llmdm::durability {

/// Point-in-time snapshot file. On-disk layout:
///
///   [8B magic "LDMSNAP1"] [u32 version=1] [u64 epoch]
///   [u64 payload_len] [payload bytes] [u64 fnv1a(version..payload)]
///
/// The checksum trails the payload so a crash mid-write cannot leave a file
/// that both claims its full length and carries a matching checksum — and it
/// covers every header field after the magic, not just the payload, so a
/// corrupted epoch can never validate and pair the image with the wrong WAL.
/// Publication is atomic: the bytes go to `<path>.tmp`, are fsynced, and the
/// tmp is renamed over `<path>` (then the directory is fsynced), so `<path>`
/// only ever names a complete image or the previous one — never a partial.
constexpr size_t kSnapshotHeaderSize = 8 + 4 + 8 + 8;
constexpr uint32_t kSnapshotVersion = 1;

/// Result of validating mapped snapshot bytes. A structurally broken file
/// (short, foreign magic, bad length, checksum mismatch) comes back with
/// valid=false rather than an error status: recovery's contract is to fall
/// back to empty-but-valid, and the caller decides whether that is fatal.
struct SnapshotView {
  bool valid = false;
  uint64_t epoch = 0;
  std::string_view payload;  // borrows the caller's buffer/mapping
};

SnapshotView ParseSnapshot(std::string_view bytes);

/// Atomically publishes `payload` as the snapshot at `path` (tmp + fsync +
/// rename + directory fsync). When `fsync` is false the sync calls are
/// skipped (tests on tmpfs); the rename is still atomic.
common::Status WriteSnapshotFile(const std::string& path, uint64_t epoch,
                                 std::string_view payload, bool fsync);

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_SNAPSHOT_H_
