#ifndef LLMDM_DURABILITY_WAL_H_
#define LLMDM_DURABILITY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace llmdm::durability {

/// Append-only write-ahead log. On-disk layout:
///
///   header:  [8B magic "LDMWAL01"] [u32 version=1] [u64 epoch]
///   record:  [u32 payload_len] [u64 fnv1a(payload)] [payload bytes]*
///
/// Each Append issues the whole record as one write(2), so a crash leaves at
/// most one torn record at the tail — and the reader's contract is to stop
/// cleanly at the first record whose length or checksum does not verify,
/// treating everything before it as the committed prefix. The epoch ties a
/// WAL to the snapshot it extends (see DurableStore): records only make
/// sense on top of the matching base image.
constexpr size_t kWalHeaderSize = 8 + 4 + 8;
constexpr size_t kWalRecordOverhead = 4 + 8;
constexpr uint32_t kWalVersion = 1;

class WalWriter {
 public:
  /// Creates (or truncates) the file, writes the header, fsyncs.
  static common::Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint64_t epoch, bool fsync);

  /// Opens an existing WAL for append. `valid_size` is the verified prefix
  /// length from replay (header + complete records); the file is truncated
  /// to it first, so a torn tail can never sit between old and new records.
  static common::Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t epoch, uint64_t valid_size,
      bool fsync);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one length-prefixed checksummed record. Without group commit
  /// (the default) the whole record is issued as one write call; with it,
  /// records accumulate in an in-memory buffer that Flush/Sync/destruction
  /// — or the buffer crossing the threshold — pushes out as one write(2).
  /// Thread-safe.
  common::Status Append(std::string_view payload);

  /// Group commit: batch appended records in memory and write them as a
  /// single write(2) once the buffer holds at least `n` bytes. 0 (default)
  /// writes each record immediately. Buffered records are *not* durable
  /// until flushed — a real crash loses them, which is the usual group
  /// commit trade (bounded-loss window for fewer syscalls). The byte stream
  /// that reaches the file is identical to the unbatched one.
  void set_group_commit_bytes(size_t n);

  /// Writes out any buffered records (group commit). No-op when empty.
  common::Status Flush();

  /// Flushes buffered records, then fdatasync(2) the file.
  common::Status Sync();

  /// Logical size in bytes: header + appended records, including records
  /// still sitting in the group-commit buffer.
  uint64_t size_bytes() const;
  uint64_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }

  /// Crash-injection hook for the durability harness: once the file would
  /// grow past `n` bytes, Append writes only the bytes up to the limit
  /// (possibly tearing a record mid-header or mid-payload) and then fails
  /// every subsequent write with kAborted — the exact shape a power cut
  /// leaves behind, made deterministic. Negative disables (default).
  void set_crash_after_bytes(int64_t n);

 private:
  WalWriter(std::string path, int fd, uint64_t epoch, uint64_t size,
            bool fsync);

  /// Writes pending_ to the file. Crash injection (crash_after_bytes)
  /// applies here, against the *durable* size — exactly where a real power
  /// cut would tear a batched write.
  common::Status FlushLocked();

  std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t epoch_ = 0;
  uint64_t size_ = 0;  // durable bytes (written, possibly not yet synced)
  bool fsync_ = true;
  int64_t crash_after_bytes_ = -1;
  size_t group_commit_bytes_ = 0;  // 0 = write through
  std::string pending_;            // buffered records awaiting one write(2)
};

/// Outcome of scanning one WAL file.
struct WalReplayResult {
  /// Header parsed and magic/version matched. False for empty, partially
  /// written, or foreign files — which replay as zero records, not errors
  /// (a crash before the first sync must recover to empty-but-valid).
  bool header_valid = false;
  uint64_t epoch = 0;
  size_t records = 0;
  /// Verified prefix: header + complete checksummed records. Pass to
  /// WalWriter::OpenForAppend.
  uint64_t valid_bytes = 0;
  /// Bytes after the verified prefix (torn tail, checksum mismatch, or
  /// garbage). Recovery discards them.
  uint64_t discarded_bytes = 0;
  bool torn_tail = false;
};

/// Parses just the WAL header out of `bytes`. Returns false (without
/// touching `epoch`) when the header is short, foreign, or of the wrong
/// version. Recovery uses this to reject a WAL whose embedded epoch
/// disagrees with its filename *before* replaying any of its records.
bool PeekWalHeader(std::string_view bytes, uint64_t* epoch);

/// Replays a WAL file via the mmap read path, invoking `fn` once per valid
/// record in order. Stops cleanly at the first record that fails its length
/// or checksum; a torn tail is reported, never an error. Errors are: the
/// file cannot be opened/mapped, or `fn` itself fails (a component replay
/// failure is real and aborts recovery).
common::Result<WalReplayResult> ReplayWalFile(
    const std::string& path,
    const std::function<common::Status(std::string_view)>& fn);

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_WAL_H_
