#include "durability/format.h"

#include <cstring>

namespace llmdm::durability {

namespace {
// A single corrupted length prefix must not turn into a multi-gigabyte
// allocation: any length beyond this is treated as corruption. Far above any
// payload the library writes (the largest are whole-cache snapshots).
constexpr uint32_t kMaxLength = 1u << 30;
}  // namespace

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendFloats(std::string* out, const std::vector<float>& v) {
  AppendU32(out, static_cast<uint32_t>(v.size()));
  for (float f : v) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    AppendU32(out, bits);
  }
}

common::Status ByteReader::Take(size_t n, const char** p) {
  if (n > remaining()) {
    return common::Status::OutOfRange(
        "serialized payload truncated: need " + std::to_string(n) +
        " bytes at offset " + std::to_string(offset_) + ", have " +
        std::to_string(remaining()));
  }
  *p = data_.data() + offset_;
  offset_ += n;
  return common::Status::Ok();
}

common::Status ByteReader::ReadU8(uint8_t* v) {
  const char* p = nullptr;
  LLMDM_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return common::Status::Ok();
}

common::Status ByteReader::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  LLMDM_RETURN_IF_ERROR(Take(4, &p));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return common::Status::Ok();
}

common::Status ByteReader::ReadU64(uint64_t* v) {
  const char* p = nullptr;
  LLMDM_RETURN_IF_ERROR(Take(8, &p));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return common::Status::Ok();
}

common::Status ByteReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  LLMDM_RETURN_IF_ERROR(ReadU64(&u));
  *v = static_cast<int64_t>(u);
  return common::Status::Ok();
}

common::Status ByteReader::ReadF64(double* v) {
  uint64_t bits = 0;
  LLMDM_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return common::Status::Ok();
}

common::Status ByteReader::ReadString(std::string* s) {
  uint32_t len = 0;
  LLMDM_RETURN_IF_ERROR(ReadU32(&len));
  if (len > kMaxLength) {
    return common::Status::OutOfRange("string length " + std::to_string(len) +
                                      " exceeds sanity cap");
  }
  const char* p = nullptr;
  LLMDM_RETURN_IF_ERROR(Take(len, &p));
  s->assign(p, len);
  return common::Status::Ok();
}

common::Status ByteReader::ReadFloats(std::vector<float>* v) {
  uint32_t count = 0;
  LLMDM_RETURN_IF_ERROR(ReadU32(&count));
  if (count > kMaxLength / sizeof(float)) {
    return common::Status::OutOfRange("float count " + std::to_string(count) +
                                      " exceeds sanity cap");
  }
  v->clear();
  v->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t bits = 0;
    LLMDM_RETURN_IF_ERROR(ReadU32(&bits));
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    v->push_back(f);
  }
  return common::Status::Ok();
}

}  // namespace llmdm::durability
