#ifndef LLMDM_DURABILITY_STORE_H_
#define LLMDM_DURABILITY_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "durability/durable.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace llmdm::durability {

/// Snapshot + WAL management for one DurableState component. On disk a store
/// named `cache` in directory `dir` is:
///
///   dir/cache.snap        last published snapshot (epoch E)
///   dir/cache.wal.E       records appended since that snapshot
///
/// Checkpoint advances the epoch: snapshot at E+1 is renamed into place,
/// wal.(E+1) is created, then wal.E is deleted. Every crash window leaves a
/// recoverable pair: before the rename, snap@E + wal.E still recover; after
/// the rename, snap@(E+1) alone recovers (wal.E is for the old image and is
/// ignored as an orphan); wal.(E+1) missing just means zero new records.
///
/// Open() is recovery: reset the component, load the snapshot if one
/// verifies (a corrupt or partial snapshot falls back to empty-but-valid —
/// never an error), replay the matching WAL up to its first torn record,
/// truncate the tail, delete orphans, and reopen the WAL for append.
class DurableStore {
 public:
  struct Options {
    std::string dir;        // must exist
    std::string name;       // file stem; also the {store=...} metric label
    bool fsync = true;      // false for tmpfs-heavy tests
    /// Group commit: batch WAL appends in memory and issue them as one
    /// write(2) once at least this many bytes are buffered (Sync and
    /// Checkpoint flush regardless). 0 = one write per record. The on-disk
    /// byte stream is identical either way; what changes is the write-call
    /// count and the crash window — buffered records are lost by a crash
    /// until the next flush/sync, which is the classic group-commit trade.
    size_t group_commit_bytes = 0;
    obs::Registry* registry = nullptr;  // shared registry, or private if null
  };

  /// What recovery found. Exposed for tests, logs, and the bench's
  /// warm-start rows.
  struct RecoveryInfo {
    bool snapshot_loaded = false;   // a valid snapshot was applied
    bool snapshot_corrupt = false;  // a snapshot file existed but failed to verify
    uint64_t epoch = 0;             // epoch recovered into (and now appending to)
    size_t wal_records_replayed = 0;
    uint64_t wal_valid_bytes = 0;
    uint64_t wal_discarded_bytes = 0;  // torn tail dropped at the truncation point
    bool torn_tail = false;
    size_t orphans_removed = 0;  // stale-epoch WALs and leftover .snap.tmp
  };

  /// Recovers `state` from disk and opens the store for appends. `state`
  /// must outlive the returned store.
  static common::Result<std::unique_ptr<DurableStore>> Open(
      const Options& options, DurableState* state);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Shared side of the commit gate. Hold the returned guard across
  /// "mutate component state, then Append the record" so Checkpoint (the
  /// exclusive side) can never snapshot between the two.
  MutationGuard BeginMutation() { return MutationGuard(gate_); }

  /// Appends one record. The guard must come from BeginMutation() — passing
  /// it proves the mutation/append pair is inside the commit gate.
  common::Status Append(const MutationGuard& guard, std::string_view payload);

  /// fdatasync the WAL.
  common::Status Sync();

  /// Serializes the component, publishes it as the next-epoch snapshot, and
  /// retires the current WAL. Takes the exclusive side of the commit gate.
  common::Status Checkpoint();

  const RecoveryInfo& recovery_info() const { return recovery_; }
  /// Deterministic span tree of the recovery that Open() performed.
  const obs::TraceContext& recovery_trace() const { return *recovery_trace_; }
  uint64_t epoch() const;
  uint64_t wal_size_bytes() const;

  std::string snapshot_path() const;
  std::string wal_path(uint64_t epoch) const;

  /// Forwards to WalWriter::set_crash_after_bytes — the harness's
  /// deterministic torn-write injection point. Applies to the *current*
  /// writer; Checkpoint clears it with the WAL it retires.
  void set_crash_after_bytes(int64_t n);

 private:
  DurableStore(Options options, DurableState* state);

  common::Status Recover();
  size_t RemoveOrphans(uint64_t keep_epoch);

  Options options_;
  DurableState* state_;  // not owned

  // Commit gate: mutators shared, Checkpoint exclusive. Ordering: gate_ →
  // component locks → WalWriter's internal mutex.
  std::shared_mutex gate_;
  mutable std::mutex mu_;  // writer_/epoch_ swap during Checkpoint
  std::unique_ptr<WalWriter> writer_;
  uint64_t epoch_ = 0;

  RecoveryInfo recovery_;
  std::unique_ptr<obs::TraceContext> recovery_trace_;

  std::unique_ptr<obs::Registry> owned_registry_;
  struct Metrics {
    obs::Counter* wal_records = nullptr;
    obs::Counter* wal_bytes = nullptr;
    obs::Counter* wal_syncs = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Gauge* snapshot_bytes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* torn_recoveries = nullptr;
    obs::Counter* recovery_replayed_records = nullptr;
    obs::Counter* recovery_discarded_bytes = nullptr;
  } metrics_;
};

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_STORE_H_
