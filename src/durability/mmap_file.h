#ifndef LLMDM_DURABILITY_MMAP_FILE_H_
#define LLMDM_DURABILITY_MMAP_FILE_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace llmdm::durability {

/// Read-only memory-mapped file: the shared read path under WAL replay and
/// snapshot loading (parsers run directly over the mapping, no copy). An
/// empty file maps to an empty view (mmap(2) rejects length 0, so that case
/// is handled without a mapping) — a zero-length WAL or snapshot left by a
/// crash before the first sync must open cleanly, not error. Move-only;
/// unmaps on destruction. Keep the object alive for as long as any
/// string_view into data() is in use.
class MappedFile {
 public:
  /// kNotFound if the path does not exist; kInternal for I/O errors.
  static common::Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view data() const {
    if (size_ == 0) return std::string_view();
    return std::string_view(static_cast<const char*>(addr_), size_);
  }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // size 0 files have no mapping to release
};

}  // namespace llmdm::durability

#endif  // LLMDM_DURABILITY_MMAP_FILE_H_
