#include "durability/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace llmdm::durability {

common::Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return common::Status::NotFound("no such file: " + path);
    }
    return common::Status::Internal("open(" + path +
                                    "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return common::Status::Internal("fstat(" + path +
                                    "): " + std::strerror(err));
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return common::Status::Internal("mmap(" + path +
                                      "): " + std::strerror(err));
    }
    out.addr_ = addr;
    out.mapped_ = true;
  }
  ::close(fd);  // the mapping survives the descriptor
  return out;
}

MappedFile::~MappedFile() {
  if (mapped_) ::munmap(addr_, size_);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (mapped_) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.addr_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

}  // namespace llmdm::durability
