#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace llmdm::obs {
namespace {

/// Sorted `key="value"` join — the canonical identity/export form of a label
/// set. Values are escaped for the Prometheus exposition format.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string LabelString(const Labels& canonical) {
  std::string out;
  for (const auto& [k, v] : canonical) {
    if (!out.empty()) out.push_back(',');
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  return out;
}

/// Compact float rendering for bucket bounds: "1", "2.5", "1e+06".
std::string FormatBound(double v) { return common::StrFormat("%g", v); }

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonLabels(const Labels& canonical) {
  std::string out = "{";
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += common::StrFormat("\"%s\":\"%s\"",
                             JsonEscape(canonical[i].first).c_str(),
                             JsonEscape(canonical[i].second).c_str());
  }
  out.push_back('}');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  // upper_bound finds the first bound > value, but Prometheus buckets are
  // `le` (inclusive): back up when the value sits exactly on an edge.
  if (b > 0 && bounds_[b - 1] == value) --b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<int64_t>(std::llround(value * 1e6)),
                        std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::LatencyBoundsVms() {
  return {1,    2,    5,    10,   20,    50,    100,   200,
          500,  1000, 2000, 5000, 10000, 20000, 50000, 100000};
}

Registry::Instrument* Registry::GetOrCreate(const std::string& name,
                                            const Labels& labels, Kind kind,
                                            std::vector<double> bounds) {
  Labels canonical = Canonicalize(labels);
  Key key{name, LabelString(canonical)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    // Re-registering under a different kind is a caller bug; surface it as
    // a null instrument rather than silently aliasing.
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Instrument inst;
  inst.kind = kind;
  inst.labels = std::move(canonical);
  switch (kind) {
    case Kind::kCounter:
      inst.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      inst.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      inst.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  return &instruments_.emplace(std::move(key), std::move(inst)).first->second;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  Instrument* inst = GetOrCreate(name, labels, Kind::kCounter, {});
  return inst == nullptr ? nullptr : inst->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  Instrument* inst = GetOrCreate(name, labels, Kind::kGauge, {});
  return inst == nullptr ? nullptr : inst->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, const Labels& labels,
                                  std::vector<double> bounds) {
  Instrument* inst =
      GetOrCreate(name, labels, Kind::kHistogram, std::move(bounds));
  return inst == nullptr ? nullptr : inst->histogram.get();
}

size_t Registry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

std::string Registry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string* last_name = nullptr;
  for (const auto& [key, inst] : instruments_) {
    const std::string& name = key.first;
    const std::string& label_str = key.second;
    if (last_name == nullptr || *last_name != name) {
      const char* type = inst.kind == Kind::kCounter    ? "counter"
                         : inst.kind == Kind::kGauge    ? "gauge"
                                                        : "histogram";
      out += common::StrFormat("# TYPE %s %s\n", name.c_str(), type);
      last_name = &name;
    }
    auto series = [&](const std::string& suffix, const std::string& extra) {
      std::string s = name + suffix;
      std::string merged = label_str;
      if (!extra.empty()) {
        if (!merged.empty()) merged += ",";
        merged += extra;
      }
      if (!merged.empty()) s += "{" + merged + "}";
      return s;
    };
    switch (inst.kind) {
      case Kind::kCounter:
        out += common::StrFormat("%s %llu\n", series("", "").c_str(),
                                 static_cast<unsigned long long>(
                                     inst.counter->value()));
        break;
      case Kind::kGauge:
        out += common::StrFormat(
            "%s %lld\n", series("", "").c_str(),
            static_cast<long long>(inst.gauge->value()));
        break;
      case Kind::kHistogram: {
        Histogram::Snapshot snap = inst.histogram->TakeSnapshot();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.buckets.size(); ++b) {
          cumulative += snap.buckets[b];
          std::string le = b < snap.bounds.size()
                               ? FormatBound(snap.bounds[b])
                               : "+Inf";
          out += common::StrFormat(
              "%s %llu\n",
              series("_bucket", "le=\"" + le + "\"").c_str(),
              static_cast<unsigned long long>(cumulative));
        }
        out += common::StrFormat("%s %.6f\n", series("_sum", "").c_str(),
                                 snap.sum());
        out += common::StrFormat(
            "%s %llu\n", series("_count", "").c_str(),
            static_cast<unsigned long long>(snap.count));
        break;
      }
    }
  }
  return out;
}

std::string Registry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, inst] : instruments_) {
    if (!first) out.push_back(',');
    first = false;
    out += common::StrFormat("{\"name\":\"%s\",\"labels\":%s",
                             JsonEscape(key.first).c_str(),
                             JsonLabels(inst.labels).c_str());
    switch (inst.kind) {
      case Kind::kCounter:
        out += common::StrFormat(
            ",\"type\":\"counter\",\"value\":%llu}",
            static_cast<unsigned long long>(inst.counter->value()));
        break;
      case Kind::kGauge:
        out += common::StrFormat(
            ",\"type\":\"gauge\",\"value\":%lld}",
            static_cast<long long>(inst.gauge->value()));
        break;
      case Kind::kHistogram: {
        Histogram::Snapshot snap = inst.histogram->TakeSnapshot();
        out += ",\"type\":\"histogram\",\"bounds\":[";
        for (size_t b = 0; b < snap.bounds.size(); ++b) {
          if (b > 0) out.push_back(',');
          out += FormatBound(snap.bounds[b]);
        }
        out += "],\"buckets\":[";
        for (size_t b = 0; b < snap.buckets.size(); ++b) {
          if (b > 0) out.push_back(',');
          out += common::StrFormat(
              "%llu", static_cast<unsigned long long>(snap.buckets[b]));
        }
        out += common::StrFormat(
            "],\"count\":%llu,\"sum_micros\":%lld}",
            static_cast<unsigned long long>(snap.count),
            static_cast<long long>(snap.sum_micros));
        break;
      }
    }
  }
  out += "]}";
  return out;
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: process lifetime
  return *global;
}

}  // namespace llmdm::obs
