#ifndef LLMDM_OBS_TRACE_H_
#define LLMDM_OBS_TRACE_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace llmdm::obs {

/// One timed operation inside a request. Times are *simulated* milliseconds
/// in whatever frame the request uses (the serve layer anchors them at the
/// request's virtual arrival), so a span tree from a deterministic workload
/// is byte-identical across runs and thread counts — unlike wall-clock
/// traces. Children are appended in the order the work was issued.
struct Span {
  std::string name;
  double start_vms = 0.0;
  double end_vms = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<Span>> children;
};

/// The span tree of one request. Created where the request enters the system
/// and carried through every layer on llm::Prompt (next to the Deadline), so
/// a cascade rung, a cache probe, and a third retry all land in one tree.
///
/// Thread-safe: a request's hedge attempts may touch the tree from the same
/// worker sequentially today, but the contract is guarded by a mutex so
/// layers never need to know who else holds a span pointer. Span* handles
/// remain valid for the TraceContext's lifetime (children own their nodes).
class TraceContext {
 public:
  explicit TraceContext(std::string root_name, double start_vms = 0.0);

  /// Opens a child of `parent` (the root when null). The returned handle is
  /// owned by the tree; use it for EndSpan/SetAttr and as a parent.
  Span* StartSpan(std::string name, double start_vms, Span* parent = nullptr);
  void EndSpan(Span* span, double end_vms);
  void SetAttr(Span* span, std::string key, std::string value);

  Span* root_span() { return root_.get(); }
  /// Start time of `span` (the root when null) — layers that keep their own
  /// relative clocks use this to anchor child spans in the parent's frame.
  double SpanStart(const Span* span) const;

  size_t span_count() const;

  /// Deterministic JSON rendering of the whole tree.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::unique_ptr<Span> root_;
};

}  // namespace llmdm::obs

#endif  // LLMDM_OBS_TRACE_H_
