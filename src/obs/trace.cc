#include "obs/trace.h"

#include "common/string_util.h"

namespace llmdm::obs {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendSpanJson(const Span& span, std::string* out) {
  *out += common::StrFormat("{\"name\":\"%s\",\"start_vms\":%.3f,"
                            "\"end_vms\":%.3f",
                            JsonEscape(span.name).c_str(), span.start_vms,
                            span.end_vms);
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out->push_back(',');
      *out += common::StrFormat("\"%s\":\"%s\"",
                                JsonEscape(span.attrs[i].first).c_str(),
                                JsonEscape(span.attrs[i].second).c_str());
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendSpanJson(*span.children[i], out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

size_t CountSpans(const Span& span) {
  size_t n = 1;
  for (const auto& child : span.children) n += CountSpans(*child);
  return n;
}

}  // namespace

TraceContext::TraceContext(std::string root_name, double start_vms) {
  root_ = std::make_unique<Span>();
  root_->name = std::move(root_name);
  root_->start_vms = start_vms;
  root_->end_vms = start_vms;
}

Span* TraceContext::StartSpan(std::string name, double start_vms,
                              Span* parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (parent == nullptr) parent = root_.get();
  auto span = std::make_unique<Span>();
  span->name = std::move(name);
  span->start_vms = start_vms;
  span->end_vms = start_vms;
  Span* handle = span.get();
  parent->children.push_back(std::move(span));
  return handle;
}

void TraceContext::EndSpan(Span* span, double end_vms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span == nullptr) span = root_.get();
  span->end_vms = end_vms;
}

void TraceContext::SetAttr(Span* span, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span == nullptr) span = root_.get();
  span->attrs.emplace_back(std::move(key), std::move(value));
}

double TraceContext::SpanStart(const Span* span) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (span == nullptr) span = root_.get();
  return span->start_vms;
}

size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CountSpans(*root_);
}

std::string TraceContext::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  AppendSpanJson(*root_, &out);
  return out;
}

}  // namespace llmdm::obs
