#ifndef LLMDM_OBS_METRICS_H_
#define LLMDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace llmdm::obs {

/// Label pairs identifying one time series of an instrument ("shard" -> "0",
/// "model" -> "gpt-sim"). Order given by the caller does not matter: the
/// registry canonicalizes to sorted-by-key before using labels as part of an
/// instrument's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Lock-free; safe to bump from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue length, breaker state, high-water mark).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below it (high-water-mark semantics);
  /// concurrent SetMax calls converge on the true maximum.
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary histogram. Bucket boundaries are chosen at construction
/// and never adapt, and the running sum is accumulated in integer micro-units
/// rather than floating point — both so that a snapshot of a deterministic
/// workload is byte-identical regardless of how many threads observed into it
/// or in what order (integer addition commutes; float addition does not).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; each bucket b counts observations
  /// with value <= bounds[b], plus one implicit +Inf bucket at the end.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;     // upper edges, +Inf bucket implicit
    std::vector<uint64_t> buckets;  // bounds.size() + 1 cumulative-free counts
    uint64_t count = 0;
    int64_t sum_micros = 0;  // sum of observations in 1e-6 units
    double sum() const { return static_cast<double>(sum_micros) / 1e6; }
  };
  Snapshot TakeSnapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Canonical latency boundaries (virtual milliseconds) shared by every
  /// latency-shaped series in the tree, so cross-layer histograms line up.
  static std::vector<double> LatencyBoundsVms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
};

/// Owner of named instruments. Components either receive a registry from
/// their caller (so one process-wide registry can aggregate every layer of a
/// stack) or construct a private one, which keeps their legacy stats structs
/// per-instance. Instrument pointers are stable for the registry's lifetime;
/// Get* returns the existing instrument when (name, labels) was already
/// registered. Two instances writing the same (name, labels) into one shared
/// registry share the series — give each instance a distinguishing label if
/// that is not what you want.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels,
                          std::vector<double> bounds);

  /// Prometheus text exposition. Series are emitted in (name, sorted-labels)
  /// order, so two exports of the same instrument values are byte-identical.
  std::string PrometheusText() const;

  /// JSON snapshot with the same deterministic ordering; histogram sums are
  /// reported in exact integer micro-units.
  std::string JsonSnapshot() const;

  size_t instrument_count() const;

  /// Process-wide registry for truly global series (e.g. the tokenizer's
  /// count-cache memo, which is itself a process-wide singleton).
  static Registry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    Labels labels;  // canonical (sorted) form, for export
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::string>;  // (name, label string)

  Instrument* GetOrCreate(const std::string& name, const Labels& labels,
                          Kind kind, std::vector<double> bounds);

  mutable std::mutex mu_;
  std::map<Key, Instrument> instruments_;
};

}  // namespace llmdm::obs

#endif  // LLMDM_OBS_METRICS_H_
