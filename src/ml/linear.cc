#include "ml/linear.h"

#include <algorithm>
#include <cmath>

namespace llmdm::ml {

void LinearRegression::Train(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& targets,
                             const TrainOptions& options) {
  size_t n = features.size();
  size_t dim = n == 0 ? 0 : features[0].size();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  feature_stats_.assign(dim, {0.0, 1.0});
  if (n == 0) return;

  // Standardize features and center/scale targets for stable GD.
  for (size_t d = 0; d < dim; ++d) {
    double mean = 0;
    for (const auto& x : features) mean += x[d];
    mean /= static_cast<double>(n);
    double var = 0;
    for (const auto& x : features) var += (x[d] - mean) * (x[d] - mean);
    var /= static_cast<double>(n);
    feature_stats_[d] = {mean, std::sqrt(std::max(var, 1e-12))};
  }
  target_mean_ = 0;
  for (double t : targets) target_mean_ += t;
  target_mean_ /= static_cast<double>(n);
  double tvar = 0;
  for (double t : targets) tvar += (t - target_mean_) * (t - target_mean_);
  target_scale_ = std::sqrt(std::max(tvar / static_cast<double>(n), 1e-12));

  std::vector<std::vector<double>> xs(n, std::vector<double>(dim));
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      xs[i][d] = (features[i][d] - feature_stats_[d].first) /
                 feature_stats_[d].second;
    }
    ys[i] = (targets[i] - target_mean_) / target_scale_;
  }

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<double> grad_w(dim, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double pred = bias_;
      for (size_t d = 0; d < dim; ++d) pred += weights_[d] * xs[i][d];
      double err = pred - ys[i];
      for (size_t d = 0; d < dim; ++d) grad_w[d] += err * xs[i][d];
      grad_b += err;
    }
    for (size_t d = 0; d < dim; ++d) {
      weights_[d] -= options.learning_rate *
                     (grad_w[d] / static_cast<double>(n) + options.l2 * weights_[d]);
    }
    bias_ -= options.learning_rate * grad_b / static_cast<double>(n);
  }
}

double LinearRegression::Predict(const std::vector<double>& x) const {
  double pred = bias_;
  for (size_t d = 0; d < x.size() && d < weights_.size(); ++d) {
    double standardized =
        (x[d] - feature_stats_[d].first) / feature_stats_[d].second;
    pred += weights_[d] * standardized;
  }
  return pred * target_scale_ + target_mean_;
}

double LinearRegression::Mape(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets) const {
  if (features.empty()) return 0.0;
  double acc = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    double denom = std::max(std::abs(targets[i]), 1e-9);
    acc += std::abs(Predict(features[i]) - targets[i]) / denom;
  }
  return acc / static_cast<double>(features.size());
}

}  // namespace llmdm::ml
