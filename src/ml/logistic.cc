#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace llmdm::ml {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

common::Result<Dataset> DatasetFromTable(const data::Table& table,
                                         const std::string& label_column) {
  auto label_idx = table.schema().Find(label_column);
  if (!label_idx.has_value()) {
    return common::Status::NotFound("no label column " + label_column);
  }
  if (table.schema().column(*label_idx).type != data::ColumnType::kBool) {
    return common::Status::InvalidArgument("label column must be BOOL");
  }
  Dataset ds;
  std::vector<size_t> feature_cols;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c == *label_idx) continue;
    // Identifier columns are keys, not signal; leaving them in just adds
    // noise dimensions.
    std::string name = common::ToLower(table.schema().column(c).name);
    if (name == "id" || common::EndsWith(name, "_id")) continue;
    data::ColumnType t = table.schema().column(c).type;
    if (t == data::ColumnType::kInt64 || t == data::ColumnType::kDouble ||
        t == data::ColumnType::kBool) {
      feature_cols.push_back(c);
      ds.feature_names.push_back(table.schema().column(c).name);
    }
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const data::Row& row = table.row(r);
    if (row[*label_idx].is_null()) continue;
    std::vector<double> x;
    bool skip = false;
    for (size_t c : feature_cols) {
      if (row[c].is_null()) {
        skip = true;
        break;
      }
      if (row[c].is_bool()) {
        x.push_back(row[c].AsBool() ? 1.0 : 0.0);
      } else {
        x.push_back(row[c].AsDouble());
      }
    }
    if (skip) continue;
    ds.features.push_back(std::move(x));
    ds.labels.push_back(row[*label_idx].AsBool() ? 1 : 0);
  }
  return ds;
}

std::vector<std::pair<double, double>> Standardize(Dataset* dataset) {
  std::vector<std::pair<double, double>> stats(dataset->dim(), {0.0, 1.0});
  if (dataset->size() == 0) return stats;
  for (size_t d = 0; d < dataset->dim(); ++d) {
    double mean = 0;
    for (const auto& x : dataset->features) mean += x[d];
    mean /= static_cast<double>(dataset->size());
    double var = 0;
    for (const auto& x : dataset->features) var += (x[d] - mean) * (x[d] - mean);
    var /= static_cast<double>(dataset->size());
    double stddev = std::sqrt(std::max(var, 1e-12));
    stats[d] = {mean, stddev};
  }
  ApplyStandardization(stats, dataset);
  return stats;
}

void ApplyStandardization(
    const std::vector<std::pair<double, double>>& stats, Dataset* dataset) {
  for (auto& x : dataset->features) {
    for (size_t d = 0; d < x.size() && d < stats.size(); ++d) {
      x[d] = (x[d] - stats[d].first) / stats[d].second;
    }
  }
}

double LogisticRegression::Train(const Dataset& train,
                                 const TrainOptions& options) {
  size_t n = train.size();
  size_t dim = train.dim();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  if (n == 0) return 0.0;
  common::Rng rng(options.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  double last_loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += options.batch_size) {
      size_t end = std::min(n, start + options.batch_size);
      std::vector<double> grad_w(dim, 0.0);
      double grad_b = 0.0;
      for (size_t i = start; i < end; ++i) {
        const auto& x = train.features[order[i]];
        int y = train.labels[order[i]];
        double p = PredictProbability(x);
        double err = p - y;
        // Per-example gradient (optionally clipped for DP-SGD).
        std::vector<double> g(dim);
        for (size_t d = 0; d < dim; ++d) g[d] = err * x[d];
        double gb = err;
        if (options.clip_norm > 0.0) {
          double norm = gb * gb;
          for (double v : g) norm += v * v;
          norm = std::sqrt(norm);
          if (norm > options.clip_norm) {
            double scale = options.clip_norm / norm;
            for (double& v : g) v *= scale;
            gb *= scale;
          }
        }
        for (size_t d = 0; d < dim; ++d) grad_w[d] += g[d];
        grad_b += gb;
      }
      double batch = static_cast<double>(end - start);
      if (options.noise_multiplier > 0.0 && options.clip_norm > 0.0) {
        double sigma = options.noise_multiplier * options.clip_norm;
        for (size_t d = 0; d < dim; ++d) grad_w[d] += rng.Normal(0.0, sigma);
        grad_b += rng.Normal(0.0, sigma);
      }
      for (size_t d = 0; d < dim; ++d) {
        weights_[d] -= options.learning_rate *
                       (grad_w[d] / batch + options.l2 * weights_[d]);
      }
      bias_ -= options.learning_rate * grad_b / batch;
    }
    // Track full loss once per epoch (cheap at our scale).
    double loss = 0;
    for (size_t i = 0; i < n; ++i) {
      loss += ExampleLoss(train.features[i], train.labels[i]);
    }
    last_loss = loss / static_cast<double>(n);
  }
  return last_loss;
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& x) const {
  double z = bias_;
  for (size_t d = 0; d < x.size() && d < weights_.size(); ++d) {
    z += weights_[d] * x[d];
  }
  return Sigmoid(z);
}

double LogisticRegression::Accuracy(const Dataset& eval) const {
  if (eval.size() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < eval.size(); ++i) {
    if (Predict(eval.features[i]) == eval.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(eval.size());
}

double LogisticRegression::ExampleLoss(const std::vector<double>& x,
                                       int label) const {
  double p = std::clamp(PredictProbability(x), 1e-9, 1.0 - 1e-9);
  return label == 1 ? -std::log(p) : -std::log(1.0 - p);
}

LogisticRegression FederatedAverage(
    const std::vector<LogisticRegression>& models,
    const std::vector<size_t>& client_sizes) {
  LogisticRegression out;
  if (models.empty()) return out;
  size_t dim = models[0].weights().size();
  std::vector<double> w(dim, 0.0);
  double b = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < models.size(); ++i) {
    double weight = static_cast<double>(
        i < client_sizes.size() ? client_sizes[i] : 1);
    total += weight;
    for (size_t d = 0; d < dim; ++d) w[d] += weight * models[i].weights()[d];
    b += weight * models[i].bias();
  }
  for (double& v : w) v /= total;
  out.SetParameters(std::move(w), b / total);
  return out;
}

}  // namespace llmdm::ml
