#ifndef LLMDM_ML_LOGISTIC_H_
#define LLMDM_ML_LOGISTIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace llmdm::ml {

/// A numeric feature matrix + binary labels extracted from a Table.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;  // 0/1
  std::vector<std::string> feature_names;

  size_t size() const { return features.size(); }
  size_t dim() const { return features.empty() ? 0 : features[0].size(); }
};

/// Builds a Dataset from a table: numeric/bool columns become features
/// (bool -> 0/1, text is skipped), `label_column` (BOOL) becomes the label.
/// Rows with NULL in any used column are dropped.
common::Result<Dataset> DatasetFromTable(const data::Table& table,
                                         const std::string& label_column);

/// Standardizes features to zero mean / unit variance (in place); returns
/// the (mean, stddev) per feature so a holdout can reuse the scaling.
std::vector<std::pair<double, double>> Standardize(Dataset* dataset);
void ApplyStandardization(
    const std::vector<std::pair<double, double>>& stats, Dataset* dataset);

/// L2-regularized logistic regression trained by (optionally noisy)
/// mini-batch gradient descent. The DP-SGD path (clip + Gaussian noise,
/// Abadi et al.) is what Sec. III-D's "integrate DP into training" proposes.
class LogisticRegression {
 public:
  struct TrainOptions {
    size_t epochs = 30;
    size_t batch_size = 16;
    double learning_rate = 0.1;
    double l2 = 1e-3;
    /// DP-SGD: per-example gradient clip norm; <= 0 disables clipping.
    double clip_norm = 0.0;
    /// DP-SGD: Gaussian noise stddev added to the summed clipped gradient
    /// (scaled by clip_norm / batch). 0 = no noise.
    double noise_multiplier = 0.0;
    uint64_t seed = 1;
  };

  /// Trains on `train`; returns the final training loss.
  double Train(const Dataset& train, const TrainOptions& options);

  /// P(y=1 | x).
  double PredictProbability(const std::vector<double>& x) const;
  int Predict(const std::vector<double>& x) const {
    return PredictProbability(x) >= 0.5 ? 1 : 0;
  }

  double Accuracy(const Dataset& eval) const;
  /// Per-example log loss (used by membership-inference attacks).
  double ExampleLoss(const std::vector<double>& x, int label) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  void SetParameters(std::vector<double> weights, double bias) {
    weights_ = std::move(weights);
    bias_ = bias;
  }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Federated averaging: averages parameters of `models` weighted by
/// `client_sizes` (Sec. III-D data collaboration).
LogisticRegression FederatedAverage(
    const std::vector<LogisticRegression>& models,
    const std::vector<size_t>& client_sizes);

}  // namespace llmdm::ml

#endif  // LLMDM_ML_LOGISTIC_H_
