#ifndef LLMDM_ML_LINEAR_H_
#define LLMDM_ML_LINEAR_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace llmdm::ml {

/// Ridge-regularized linear regression trained by gradient descent. Used as
/// the "learned cost estimator" downstream of training-data generation
/// (Fig. 3): real + LLM-augmented <query features, execution time> pairs.
class LinearRegression {
 public:
  struct TrainOptions {
    size_t epochs = 200;
    double learning_rate = 0.05;
    double l2 = 1e-3;
  };

  /// Trains on (features, targets); features are standardized internally.
  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<double>& targets,
             const TrainOptions& options);
  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<double>& targets) {
    Train(features, targets, TrainOptions{});
  }

  double Predict(const std::vector<double>& x) const;

  /// Mean absolute percentage error on an eval set (targets must be > 0).
  double Mape(const std::vector<std::vector<double>>& features,
              const std::vector<double>& targets) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<std::pair<double, double>> feature_stats_;  // (mean, stddev)
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace llmdm::ml

#endif  // LLMDM_ML_LINEAR_H_
