#ifndef LLMDM_SERVE_CLOCK_H_
#define LLMDM_SERVE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace llmdm::serve {

/// The serving layer's notion of "now", in *simulated* milliseconds — the
/// same virtual time base as ModelSpec::latency_ms_per_1k_tokens. Real
/// worker threads finish requests in scheduling-dependent wall-clock order,
/// but each request's virtual completion time is derived only from its
/// deterministic admission state and completion latency; the clock is just
/// the monotone maximum of those times, so it converges to the same value
/// on every run regardless of interleaving.
class SimulatedClock {
 public:
  /// Simulated milliseconds: the latest virtual completion observed so far.
  double NowMs() const {
    return static_cast<double>(now_micros_.load(std::memory_order_relaxed)) /
           1000.0;
  }

  /// Monotone CAS-max: concurrent advances never move the clock backwards.
  void AdvanceTo(double vms) {
    int64_t target = static_cast<int64_t>(vms * 1000.0 + 0.5);
    int64_t cur = now_micros_.load(std::memory_order_relaxed);
    while (cur < target && !now_micros_.compare_exchange_weak(
                               cur, target, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> now_micros_{0};
};

}  // namespace llmdm::serve

#endif  // LLMDM_SERVE_CLOCK_H_
