#ifndef LLMDM_SERVE_QOS_H_
#define LLMDM_SERVE_QOS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace llmdm::serve {

struct Request;  // see serve/server.h

/// Identifies *who* is asking. Tenants are the unit of isolation in the
/// serving layer: quotas, queue shares, spend ledgers and metric labels are
/// all keyed by this id. The empty string maps to the catch-all "default"
/// tenant.
using TenantId = std::string;

/// Per-tenant resource policy. A tenant's weight buys it a proportional
/// share of the virtual model slots (deficit-round-robin, see
/// WeightedFairScheduler); its quota bounds the *rate* it may inject work
/// regardless of how idle the rest of the system is.
struct TenantConfig {
  TenantId id;
  /// Relative share of service capacity under contention. Clamped to a
  /// small positive floor so every configured tenant owns a nonzero share —
  /// a zero weight would reintroduce starvation by configuration.
  double weight = 1.0;
  /// Token-bucket refill rate in estimated tokens per virtual second
  /// (input + estimated output, the same estimate admission prices service
  /// time with). 0 means unmetered: the tenant is bounded only by its queue
  /// share.
  double quota_tokens_per_vs = 0.0;
  /// Bucket capacity — the burst a tenant may inject after sitting idle.
  /// 0 with a nonzero rate defaults to one virtual second of refill.
  double quota_burst_tokens = 0.0;
  /// Waiting-request bound for this tenant. 0 derives a share of the
  /// server's queue_depth proportional to weight (at least 2).
  size_t queue_limit = 0;
};

/// Scheduler-wide QoS knobs. QoS is enabled on a Server by configuring at
/// least one tenant.
struct QosOptions {
  std::vector<TenantConfig> tenants;
  /// Deficit credited per round-robin visit per unit of weight, in the same
  /// token units as TenantConfig quotas. One quantum should cover a typical
  /// request so a weight-1 tenant advances every round.
  double quantum_tokens = 64.0;
  /// Priority aging: once a tenant's head-of-queue request has waited this
  /// many virtual ms, the tenant bypasses the deficit order entirely (oldest
  /// head first). This is the starvation bound — however skewed the weights,
  /// no queued request waits more than this plus one service time before it
  /// is dispatched.
  double aging_threshold_vms = 2000.0;

  bool enabled() const { return !tenants.empty(); }
};

/// Deterministic token bucket on the virtual clock. All refill arithmetic is
/// a pure function of (config, the sequence of TryTake calls), so identical
/// workloads drain identical buckets on every run and worker count.
class TokenBucket {
 public:
  /// rate <= 0 builds an unmetered bucket: TryTake always succeeds.
  TokenBucket(double tokens_per_vs, double burst_tokens);

  /// Refills to `now_vms`, then takes `cost` tokens if the bucket holds
  /// them. On refusal, *retry_after_vms (when non-null) is set to the
  /// virtual ms until the bucket will have refilled enough — the
  /// cause-specific hint a quota-shed response should carry.
  bool TryTake(double now_vms, double cost, double* retry_after_vms);

  double level() const { return level_; }
  bool metered() const { return rate_per_vms_ > 0.0; }

 private:
  double rate_per_vms_ = 0.0;  // tokens per virtual *ms*
  double burst_ = 0.0;
  double level_ = 0.0;
  double last_refill_vms_ = 0.0;
};

/// Weighted-fair dispatcher over per-tenant FIFO queues: deficit round-robin
/// with priority aging, simulated entirely in virtual time. The serving
/// layer enqueues admitted requests here (in arrival order, under its
/// admission lock) and calls AdvanceTo, which plays the dispatch decisions a
/// real fair scheduler would have made as slots freed — so which request
/// starts when is a pure function of the workload, byte-identical across
/// runs and worker counts.
///
/// Dispatch rule, each time the earliest-free virtual slot and at least one
/// queued request are both ready at u <= now:
///   1. aged tenants first — any tenant whose head has waited >=
///      aging_threshold_vms at u runs immediately, oldest head first (the
///      anti-starvation escape hatch; the charge still hits its deficit, so
///      an aged tenant borrows against its own future share, not the
///      others');
///   2. otherwise classic DRR — visit tenants round-robin, credit
///      quantum * weight per visit, dispatch while the head's cost fits the
///      accumulated deficit. A tenant's deficit resets when its queue
///      drains (no hoarding while idle).
class WeightedFairScheduler {
 public:
  struct Entry {
    uint64_t id = 0;             // caller's request id (dispatch handle)
    double arrival_vms = 0.0;
    double cost_tokens = 0.0;    // DRR charge (estimated tokens)
    double service_vms = 0.0;    // estimated service time, occupies the slot
  };

  struct Dispatch {
    uint64_t id = 0;
    size_t tenant = 0;
    double start_vms = 0.0;  // assigned virtual start (>= arrival)
  };

  WeightedFairScheduler(const QosOptions& options, size_t num_slots);

  /// Index of a configured tenant id, or npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t TenantIndex(const TenantId& id) const;

  /// Appends to tenant `tenant_idx`'s FIFO. Depth policy is the caller's
  /// (check QueueLen first); the scheduler itself never refuses work.
  void Enqueue(size_t tenant_idx, const Entry& entry);

  /// Dispatches every queued entry whose virtual start is <= now_vms,
  /// appending the decisions in dispatch order. Pass +infinity to flush.
  void AdvanceTo(double now_vms, std::vector<Dispatch>* out);

  size_t QueueLen(size_t tenant_idx) const;
  size_t TotalQueued() const { return total_queued_; }
  /// When the earliest virtual slot frees — the (global) retry hint for
  /// queue-shed responses.
  double EarliestSlotFreeVms() const;
  size_t num_tenants() const { return tenants_.size(); }
  const TenantConfig& tenant_config(size_t idx) const {
    return tenants_[idx].config;
  }

 private:
  struct TenantQueue {
    TenantConfig config;
    std::deque<Entry> fifo;
    double deficit = 0.0;
  };

  /// Picks the tenant to run at virtual time u among those whose head has
  /// arrived. Requires at least one such tenant.
  size_t PickTenant(double u);

  std::vector<TenantQueue> tenants_;
  std::vector<double> slot_free_vms_;
  double quantum_tokens_;
  double aging_threshold_vms_;
  size_t rr_ = 0;           // round-robin cursor
  bool fresh_visit_ = true;  // credit tenants_[rr_] once on arrival of cursor
  size_t total_queued_ = 0;
};

/// Jain's fairness index over a vector of non-negative allocations:
/// (sum x)^2 / (n * sum x^2). 1.0 is perfectly fair; 1/n is maximally
/// unfair. Empty or all-zero input returns 1.0 (nothing to be unfair
/// about).
double JainFairnessIndex(const std::vector<double>& values);

/// Synthetic multi-tenant population: zipf-skewed tenant sizes, a diurnal
/// arrival-rate curve, and designated hot tenants that add clustered bursts
/// on top of their base traffic. Entirely seeded — the same options produce
/// the same request stream byte for byte.
struct PopulationOptions {
  size_t tenants = 16;
  /// Zipf exponent for tenant popularity (tenant 0 is the biggest).
  double zipf_s = 1.1;
  /// Base (non-burst) requests to generate.
  size_t requests = 2000;
  /// Mean aggregate inter-arrival gap in virtual ms (exponential draws).
  double mean_gap_vms = 10.0;
  /// Diurnal modulation: instantaneous rate = base * (1 + amplitude *
  /// sin(2*pi*t/period)). Amplitude is clamped to [0, 0.95].
  double diurnal_period_vms = 20000.0;
  double diurnal_amplitude = 0.5;
  /// The first `hot_tenants` tenants additionally emit a burst of
  /// `burst_size` requests (spaced burst_gap_vms apart) every
  /// burst_every_vms.
  size_t hot_tenants = 1;
  double burst_every_vms = 8000.0;
  size_t burst_size = 32;
  double burst_gap_vms = 1.0;
  /// Deadline stamped on every request (0 = none).
  double deadline_ms = 1000.0;
  /// Distinct query texts per tenant (queries repeat with this period).
  size_t inputs_per_tenant = 25;
  uint64_t seed = 1;
};

/// Tenant ids are "t00".."tNN" in popularity order. Requests come back
/// sorted by arrival_vms with ids 0..n-1 assigned in that order — ready to
/// Submit() directly.
std::vector<Request> GeneratePopulation(const PopulationOptions& options);

}  // namespace llmdm::serve

#endif  // LLMDM_SERVE_QOS_H_
