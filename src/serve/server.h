#ifndef LLMDM_SERVE_SERVER_H_
#define LLMDM_SERVE_SERVER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/money.h"
#include "common/status.h"
#include "llm/model.h"
#include "llm/usage.h"
#include "obs/metrics.h"
#include "serve/clock.h"
#include "serve/qos.h"

namespace llmdm::obs {
class TraceContext;  // see obs/trace.h
}  // namespace llmdm::obs

namespace llmdm::serve {

/// What the admission controller does when the queue model says a new
/// request cannot start soon.
enum class ShedPolicy {
  /// Admit everything (unbounded queue): the baseline whose p99 collapses
  /// under overload — every admitted request waits behind the whole backlog.
  kNone,
  /// Reject (kResourceExhausted + retry-after hint) once the number of
  /// waiting requests reaches Options::queue_depth.
  kQueueFull,
  /// kQueueFull, plus: reject a request whose estimated queue wait already
  /// exceeds its own deadline — it would be dead on arrival, so shedding it
  /// at the door costs nothing and frees its slot for a request that can
  /// still make it.
  kDeadlineAware,
};

/// Admission priority. Batch traffic is confined to a fraction of the queue
/// so it can never crowd out interactive requests; interactive traffic gets
/// reserved headroom above the nominal depth.
enum class Priority { kBatch, kNormal, kInteractive };

/// Why a request was refused at the door. Distinguishing the causes matters
/// for the retry hint: a queue-shed request should come back when a slot
/// frees (global state), a quota-shed request when *its own tenant's* bucket
/// has refilled — retrying sooner is guaranteed to be refused again.
enum class ShedCause {
  kNone,      // not shed
  kQueue,     // queue (or tenant queue share) full
  kDeadline,  // kDeadlineAware: estimated wait already exceeds the deadline
  kQuota,     // tenant token-bucket quota exhausted
};

/// One unit of offered load. `arrival_vms` is the request's arrival in
/// simulated time (assigned by the workload generator); Submit() must be
/// called in non-decreasing arrival order.
struct Request {
  uint64_t id = 0;
  std::string skill = "freeform";
  std::string input;
  /// Who is asking. Only consulted when the server has tenants configured
  /// (Options::qos); unknown or empty ids fall back to the catch-all
  /// "default" tenant. Propagated onto the prompt (llm::Prompt::tenant_id),
  /// trace spans, and every per-tenant metric label.
  TenantId tenant;
  Priority priority = Priority::kNormal;
  /// Request-wide budget in simulated ms (0 = none). Queue wait spends it
  /// first; the remainder rides the prompt as an llm::Deadline.
  double deadline_ms = 0.0;
  double arrival_vms = 0.0;
};

/// Outcome of one request, in virtual time. Shed requests get a response
/// too (status kResourceExhausted), so offered load == |responses|.
struct Response {
  uint64_t id = 0;
  TenantId tenant;  // copied from the request
  common::Status status;
  std::string text;
  std::string model;
  common::Money cost;
  double queue_wait_vms = 0.0;
  double service_vms = 0.0;  // execution (incl. hedge overlap), virtual ms
  double latency_vms = 0.0;  // queue_wait + service
  bool shed = false;
  ShedCause shed_cause = ShedCause::kNone;
  /// When shed: simulated ms after arrival at which retrying has a chance.
  /// Cause-specific: for queue sheds, the earliest virtual slot becoming
  /// free; for quota sheds, when the tenant's own bucket has refilled enough
  /// to admit a request of this size.
  double retry_after_vms = 0.0;
  bool deadline_missed = false;
  bool hedged = false;     // a hedge attempt was launched
  bool hedge_won = false;  // ...and it beat the primary
  /// Single-flight: this request was collapsed onto an identical in-flight
  /// leader call and served the leader's completion at zero marginal cost.
  bool coalesced = false;
  /// Span tree of this request (queue → attempt → retry → cache probe ...),
  /// populated when Options::tracing is on; null otherwise. Exportable as
  /// JSON via obs::TraceContext::ToJson.
  std::shared_ptr<obs::TraceContext> trace;
};

/// Per-request outcome of a batched admission-time cache probe (see
/// Server::Options::batch_probe). A hit short-circuits admission entirely:
/// the request is answered on the submitting thread with `response`/`model`
/// at zero cost, never touching the virtual queue or the endpoint.
struct BatchProbeOutcome {
  bool hit = false;
  std::string response;
  std::string model;
};

/// Batched cache probe: called once per SubmitBatch with the whole batch
/// (arrival order preserved), returns one outcome per request. Batching lets
/// the probe amortize embedding + distance evaluation across the batch
/// (SemanticCache::LookupBatch packs the query embeddings into one arena and
/// runs the SIMD distance kernels over it). See optimize::MakeBatchCacheProbe.
using BatchCacheProbe =
    std::function<std::vector<BatchProbeOutcome>(const std::vector<const Request*>&)>;

/// Aggregate serving metrics, valid after Drain().
struct ServerStats {
  size_t submitted = 0;
  size_t admitted = 0;
  size_t shed = 0;
  size_t completed = 0;  // admitted requests that produced an OK completion
  size_t failed = 0;     // admitted requests whose every attempt failed
  size_t deadline_missed = 0;
  size_t hedges_launched = 0;
  size_t hedge_wins = 0;
  /// Requests collapsed onto an identical in-flight call (single-flight).
  size_t coalesced = 0;
  /// Requests answered by the admission-time batched cache probe
  /// (Options::batch_probe) — served at zero cost without entering the
  /// virtual queue. Counted in both submitted and admitted.
  size_t cache_probe_hits = 0;
  /// Continuous batching (Options::batching): model-boundary batches closed
  /// and the requests they carried.
  size_t batches_closed = 0;
  size_t batched_requests = 0;
  /// Input tokens the batches served from the shared-prefix KV cache, and
  /// the list-price spend that avoided (views over the llmdm_batch_*
  /// counters; the meter's BatchStats ledger itemizes the same per model).
  size_t prefix_cached_tokens = 0;
  common::Money prefix_saved;
  /// Spend of losing hedge attempts: paid to the endpoint, never committed
  /// to the main meter (the virtual cancellation arrived too late).
  common::Money hedge_cancelled_cost;
  double p50_latency_vms = 0.0;  // over non-shed responses
  double p99_latency_vms = 0.0;
  double max_queue_len = 0.0;
  /// Completions that were OK *and* inside their deadline, per virtual
  /// second — the number that collapses when an unbounded queue melts down.
  double goodput_per_vs = 0.0;
};

/// Per-tenant serving metrics (QoS mode), valid after Drain(). Like
/// ServerStats, a read-time view over the registry's {tenant=...} series
/// plus a per-response scan for the SLO/latency fields.
struct TenantStats {
  TenantId tenant;
  size_t submitted = 0;
  size_t admitted = 0;   // includes coalesced followers
  size_t coalesced = 0;
  /// Requests answered by the admission-time batch cache probe on this
  /// tenant's behalf (counted in admitted, charged against its quota).
  size_t cache_probe_hits = 0;
  size_t shed_quota = 0;
  size_t shed_queue = 0;
  size_t completed = 0;
  size_t failed = 0;
  size_t deadline_missed = 0;
  /// Committed spend of this tenant's winning attempts (the ledger a
  /// per-tenant bill is cut from).
  common::Money spend;
  /// OK completions inside their deadline / submitted — the per-tenant SLO
  /// attainment the overload bench enforces bounds on. Requests without a
  /// deadline count as attained when they complete OK.
  double slo_attainment = 0.0;
  double p99_latency_vms = 0.0;  // over this tenant's non-shed responses
};

/// A multi-threaded request scheduler in front of one (typically resilient)
/// LLM endpoint: bounded admission queue, deadline/priority-aware load
/// shedding, and hedged requests.
///
/// Determinism: admission decisions are made synchronously in Submit(),
/// in arrival order, against a virtual queue model fed by *estimated*
/// service times (spec latency x estimated tokens) — exactly the
/// information a real admission controller has. Execution then happens on
/// real worker threads, but every per-request output (completion text,
/// virtual latency, hedge outcome) is a pure function of the request and
/// its admission-time state, so Drain()'s id-sorted responses and the
/// aggregate stats are byte-stable across runs and thread counts. That
/// guarantee is only as strong as the endpoint's own purity: a decorator
/// with shared reactive state — e.g. a CircuitBreaker that actually trips —
/// makes per-request outcomes depend on real completion order again.
///
/// Hedging: when a request's actual service latency exceeds the seeded
/// percentile (Options::hedge_percentile) of estimated service times of
/// requests admitted so far — or its primary attempt fails outright — a
/// second attempt races on the hedge model. The attempt with the earliest
/// virtual finish wins; only the winner's scratch meter is committed
/// (UsageMeter::MergeFrom), the loser's spend is booked as
/// hedge_cancelled_cost.
///
/// Single-flight (Options::single_flight): coalescing is *decided* in
/// Submit() against the virtual queue model — a request coalesces iff its
/// arrival precedes the leader's estimated virtual finish — never by real
/// thread timing, so which requests coalesce is byte-stable across runs and
/// worker counts. Followers wait for the leader's actual result on their
/// worker thread; FIFO dispatch guarantees a leader is dequeued before any
/// of its followers, so that wait cannot deadlock the pool.
///
/// Multi-tenant QoS (Options::qos, see qos.h): with tenants configured,
/// Submit() charges the request's tenant token bucket (quota-shed with a
/// bucket-refill retry hint when empty), bounds the tenant's queue share
/// (queue-shed with the global slot hint), and parks admitted work in the
/// tenant's FIFO inside a WeightedFairScheduler. Virtual dispatch — which
/// request gets the next free virtual slot, DRR over tenant weights with
/// priority aging — happens inside Submit()/Drain() under the admission
/// lock, in arrival order, so every scheduling decision is as deterministic
/// as legacy admission. Real workers only ever execute work whose virtual
/// start, queue wait and hedge trigger were already fixed at dispatch.
/// Single-flight composes: flights register at dispatch (not admission), so
/// a leader is always in the worker queue before any follower that rides
/// it.
class Server {
 public:
  struct Options {
    /// Real worker threads executing admitted requests.
    size_t worker_threads = 4;
    /// Simulated parallel model slots in the virtual queue model.
    size_t virtual_concurrency = 4;
    /// Waiting-request bound for kQueueFull / kDeadlineAware.
    size_t queue_depth = 32;
    ShedPolicy shed_policy = ShedPolicy::kQueueFull;
    /// Fraction of queue_depth usable by Priority::kBatch requests.
    double batch_queue_fraction = 0.5;
    /// Extra headroom (fraction of queue_depth) reserved for
    /// Priority::kInteractive requests once the nominal queue is full.
    double interactive_reserve_fraction = 0.25;
    bool hedging = false;
    /// Estimated-service-time percentile after which a hedge launches.
    double hedge_percentile = 0.95;
    /// Virtual ms a failed attempt is deemed to have occupied its slot
    /// (timeouts and retry storms burn time even when nothing is returned).
    double failed_attempt_penalty_ms = 1000.0;
    /// Expected completion length used in service-time estimation.
    size_t est_output_tokens = 48;
    /// Single-flight request coalescing: a request whose (skill, input)
    /// matches a call still in flight (by the virtual queue model) does not
    /// occupy a slot or reach the endpoint — it waits for the leader and is
    /// served the leader's completion. Only the leader's spend is committed
    /// to the meter; followers are itemized in UsageMeter::coalesce_stats().
    /// Note followers deliberately lose per-request sampling independence:
    /// identical concurrent queries get byte-identical answers.
    bool single_flight = false;
    /// Continuous batching at the model boundary: admitted work accumulates
    /// in a per-model open batch that closes on size (max_batch), when a
    /// later arrival crosses the batch's virtual-time window deadline
    /// (first member's arrival + batch_window_vms), or at Drain(). A closed
    /// batch executes as one LlmModel::CompleteBatch call, so an endpoint
    /// with a KV-cache cost model (SimulatedLlm +
    /// ModelSpec::cached_input_price_per_1k) prices each member's longest
    /// prompt prefix shared with an earlier member once, at the cached
    /// tier, and skips its prefill latency. Membership is decided at
    /// admission time on the virtual clock — the same contract as
    /// single-flight — so which requests share a batch (and therefore every
    /// cost/latency) is byte-stable across runs and worker counts. Note the
    /// window deadline is *observed* at the next arrival (or Drain): virtual
    /// time only advances when something arrives, so a lone tail request
    /// waits for the next event, not a wall-clock timer. Completion text is
    /// unchanged by batching; only cost, latency and the batch/prefix
    /// ledgers differ.
    bool batching = false;
    /// Batch size at which the open batch closes immediately.
    size_t max_batch = 8;
    /// Virtual ms after the open batch's first member during which later
    /// admissions join it.
    double batch_window_vms = 20.0;
    /// Attach an obs::TraceContext to every executed request (published on
    /// Response::trace). Costs one small allocation tree per request; off by
    /// default.
    bool tracing = false;
    /// Metrics registry for the server's instruments. Null gives the server
    /// a private registry (stats() stays per-instance); inject one registry
    /// per server to aggregate a stack (two servers sharing a registry share
    /// series).
    obs::Registry* registry = nullptr;
    /// Periodic maintenance driven by *virtual* time: when interval > 0 and
    /// a hook is set, Submit() fires the hook synchronously (on the
    /// submitting thread, under the admission lock, in arrival order) each
    /// time a request's arrival_vms crosses the next interval boundary. The
    /// deterministic home for durability checkpoints / WAL compaction — the
    /// same workload fires maintenance at the same points regardless of
    /// thread count or wall-clock speed. Keep the hook bounded: it blocks
    /// admission while it runs.
    double maintenance_interval_vms = 0.0;
    std::function<void()> maintenance_hook;
    /// Admission-time batched cache probe, consulted by SubmitBatch() before
    /// admission. Runs once per batch on the submitting thread, so hit/miss
    /// decisions stay in arrival order and are as deterministic as admission
    /// itself. Hits are answered immediately (status Ok, zero cost, one
    /// virtual ms of service); misses fall through to the normal Submit()
    /// path. Null (the default) makes SubmitBatch() a plain loop over
    /// Submit(). Wire a SemanticCache in with optimize::MakeBatchCacheProbe.
    BatchCacheProbe batch_probe;
    /// Completion sink for push-style consumers (the network front door):
    /// called exactly once per response — shed refusals included, so offered
    /// load == sink calls — after the response's metrics are recorded.
    /// Sheds and cache-probe hits invoke it on the submitting thread (for
    /// sheds: under the admission lock), completions on a worker thread, so
    /// the sink must be thread-safe, bounded, and must never call back into
    /// Submit()/Drain(). Also settable after construction via
    /// set_response_sink() (e.g. by net::NetServer, which outlives neither).
    std::function<void(const Response&)> response_sink;
    /// Retain every response for Drain(). A long-running server draining
    /// responses through response_sink instead sets this false so memory
    /// stays bounded by in-flight work; Drain() then returns only what was
    /// retained (nothing) and percentile stats come from the registry
    /// histograms alone.
    bool retain_responses = true;
    /// Multi-tenant QoS: configuring at least one tenant switches admission
    /// from the single shared queue to per-tenant token-bucket quotas +
    /// weighted-fair (deficit-round-robin) queuing with priority aging —
    /// see qos.h and the class comment. In QoS mode shed_policy's queue
    /// carve-outs (batch_queue_fraction / interactive_reserve_fraction) are
    /// superseded by per-tenant queue shares.
    QosOptions qos;
  };

  /// `model` serves primaries; `hedge_model` (defaults to `model`) serves
  /// hedge attempts — typically the fallback-chain/cheaper endpoint.
  /// Workers start immediately.
  Server(std::shared_ptr<llm::LlmModel> model, const Options& options,
         std::shared_ptr<llm::LlmModel> hedge_model = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission control + enqueue. Must be called in non-decreasing
  /// `arrival_vms` order (one submitting thread, or external ordering).
  /// Shed requests are answered immediately; admitted ones complete on a
  /// worker thread. Not callable after Drain().
  void Submit(const Request& request);

  /// Batched submission: when Options::batch_probe is set, probes the whole
  /// batch once (amortizing embedding + distance work across it), answers
  /// hits immediately at zero cost, and Submit()s the misses in arrival
  /// order. Without a probe this is exactly a loop over Submit(). The same
  /// ordering contract applies: batches (and the requests within them) must
  /// arrive in non-decreasing `arrival_vms` order.
  void SubmitBatch(const std::vector<Request>& batch);

  /// Waits for all admitted work, stops the workers, and returns every
  /// response sorted by request id. Call once.
  std::vector<Response> Drain();

  /// Installs (or replaces) the completion sink after construction. Must be
  /// called before the first Submit(); the sink is read under the results
  /// lock, so a quiesced server may also swap it between workloads.
  void set_response_sink(std::function<void(const Response&)> sink);

  /// Aggregate metrics; stable only after Drain().
  ServerStats stats() const;

  /// Per-tenant metrics in configuration order (the catch-all "default"
  /// tenant last when it was synthesized); empty when QoS is off. Stable
  /// only after Drain().
  std::vector<TenantStats> tenant_stats() const;

  /// Committed usage across all winning attempts (thread-safe itself).
  const llm::UsageMeter& meter() const { return meter_; }

  /// The registry holding the server's instruments (the injected one, or
  /// the private per-instance registry).
  obs::Registry* registry() const { return registry_; }

  const SimulatedClock& clock() const { return clock_; }

 private:
  /// Shared state of one coalesced flight. The admission-side fields are
  /// written once in Submit() under admission_mu_; the completion fields are
  /// published by the leader's worker under `mu` and consumed by follower
  /// workers blocking on `cv`.
  struct FlightGroup {
    // Admission-time (admission_mu_).
    uint64_t leader_id = 0;
    double est_finish_vms = 0.0;  // leader est_start + est_service

    // Completion (mu/cv).
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    common::Status status;  // leader's final status
    std::string text;
    std::string model;
    double finish_vms = 0.0;  // leader's actual virtual finish
  };

  /// Per-tenant instrument handles + admission state (QoS mode). The bucket
  /// is only touched in Submit() under admission_mu_; the counters are
  /// written from admission (under the lock) and completion (worker
  /// threads) sides — commutative integer adds, like the global metrics.
  struct TenantState {
    size_t index = 0;  // scheduler tenant index
    TokenBucket bucket;
    size_t queue_limit = 0;
    obs::Counter* submitted = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* cache_probe_hits = nullptr;
    obs::Counter* shed_quota = nullptr;
    obs::Counter* shed_queue = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Counter* spend_micros = nullptr;
    obs::Histogram* latency_vms = nullptr;

    TenantState(double rate, double burst) : bucket(rate, burst) {}
  };

  struct Work {
    Request request;
    double est_start_vms = 0.0;
    double est_service_vms = 0.0;
    double queue_wait_vms = 0.0;
    double hedge_trigger_vms = 0.0;  // service latency that launches a hedge
    /// Single-flight: the flight this work leads (coalesced_follower false)
    /// or rides (true). Null when coalescing is off or nothing coalesced.
    std::shared_ptr<FlightGroup> group;
    bool coalesced_follower = false;
    /// QoS mode: the tenant this work bills to (stable pointer, owned by
    /// tenants_). Null when QoS is off.
    TenantState* tenant_state = nullptr;
    /// Continuous batching: when set, this queue entry is a whole closed
    /// batch (members in admission order, executed by one worker through a
    /// single CompleteBatch call) and the per-request fields above are
    /// unused.
    std::shared_ptr<std::vector<Work>> batch;
  };

  /// The open (accumulating) batch, under admission_mu_. Followers whose
  /// leader is parked here are parked alongside and released right after
  /// the batch, preserving the leader-before-follower FIFO ordering the
  /// no-deadlock argument needs.
  struct OpenBatch {
    double close_vms = 0.0;  // first member's arrival + batch_window_vms
    std::vector<Work> members;
    std::vector<Work> followers;
  };

  /// Admitted-but-not-yet-dispatched request (QoS mode): parked here while
  /// it waits in its tenant's FIFO inside the scheduler.
  struct PendingQos {
    Request request;
    double est_service_vms = 0.0;
    TenantState* tenant_state = nullptr;
  };

  /// Instrument handles; ServerStats is a read-time view over these (plus
  /// the per-response scan for percentiles/goodput), so a registry export
  /// and the legacy struct always agree.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* cache_probe_hits = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Counter* hedges_launched = nullptr;
    obs::Counter* hedge_wins = nullptr;
    obs::Counter* hedge_cancelled_cost_micros = nullptr;
    obs::Counter* coalesce_saved_micros = nullptr;
    obs::Counter* maintenance_runs = nullptr;
    obs::Counter* batch_closed_size = nullptr;    // llmdm_batch_closed_total
    obs::Counter* batch_closed_window = nullptr;  //   {cause=...}
    obs::Counter* batch_closed_drain = nullptr;
    obs::Counter* batch_requests = nullptr;
    obs::Counter* batch_prefix_cached_tokens = nullptr;
    obs::Counter* batch_prefix_saved_micros = nullptr;
    obs::Gauge* max_queue_len = nullptr;
    obs::Histogram* queue_wait_vms = nullptr;
    obs::Histogram* latency_vms = nullptr;
    obs::Histogram* batch_occupancy = nullptr;
  };

  void WorkerLoop();
  void Execute(const Work& work);
  /// Executes one closed batch: per-member trace/queue-deadline/prompt
  /// setup, one CompleteBatch over the surviving members, then the shared
  /// per-member tail (FinishExecute) with the batch's discounted
  /// completions.
  void ExecuteBatch(const std::vector<Work>& members);
  /// Shared post-model-call tail of Execute/ExecuteBatch: hedge race,
  /// winner-commit metering, response assembly and publication. `r` arrives
  /// with id/tenant/queue_wait filled; `primary_finish` is the primary
  /// attempt's virtual service time.
  void FinishExecute(const Work& work, Response r,
                     const std::shared_ptr<obs::TraceContext>& trace,
                     const llm::Prompt& prompt,
                     common::Result<llm::Completion> primary,
                     double primary_finish, llm::UsageMeter& primary_meter);
  /// Bumps the llmdm_batch_prefix_* counters for a committed batched
  /// completion. Called at commit time (FinishExecute), not batch-execution
  /// time, so the counters equal the meter's winner-committed BatchStats
  /// ledger even when a hedge steals the member's win.
  void BookPrefixReuse(const llm::Completion& completion);
  /// Routes admitted work to the worker queue, or parks it in the open
  /// batch when batching is on (admission_mu_ held).
  void EnqueueWork(Work work);
  /// Closes the open batch if `now_vms` crossed its window deadline
  /// (admission_mu_ held; called before each admission decision).
  void MaybeCloseBatch(double now_vms);
  /// Pushes the open batch (if any) to the workers as one queue entry,
  /// followed by its parked followers (admission_mu_ held). `cause` is
  /// "size", "window" or "drain".
  void FlushOpenBatch(const char* cause);
  /// Follower path: wait for the leader's published result and answer with
  /// it (zero cost, virtual latency = leader finish - own arrival).
  void ExecuteCoalesced(const Work& work);
  /// Publishes the leader's outcome to its flight group (no-op if null).
  static void ResolveFlight(const std::shared_ptr<FlightGroup>& group,
                            const Response& response, double finish_vms);
  double EstimateTokens(const Request& request) const;
  double EstimateServiceVms(const Request& request) const;
  void PushResponse(Response response, TenantState* tenant_state = nullptr);

  /// QoS admission path (admission_mu_ held): quota + queue-share check,
  /// then park in the tenant FIFO and let the virtual dispatcher run.
  void SubmitQos(const Request& request);
  /// Plays virtual dispatch up to now_vms and hands every dispatched
  /// request to the worker pool (admission_mu_ held).
  void DispatchReadyQos(double now_vms);
  TenantState* ResolveTenant(const TenantId& id);

  std::shared_ptr<llm::LlmModel> model_;
  std::shared_ptr<llm::LlmModel> hedge_model_;
  Options options_;

  /// Private registry when Options::registry is null; registry_ always
  /// points at the registry in use. Declared before metrics_ so the
  /// instruments outlive every handle.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;

  // Admission state: touched only under admission_mu_, only from Submit().
  // The admission counters (submitted/admitted/shed/coalesced) live in
  // metrics_; being written under admission_mu_ keeps them as deterministic
  // as the fields they replaced.
  mutable std::mutex admission_mu_;
  std::vector<double> slot_free_vms_;  // per virtual slot
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      pending_starts_;                  // est_start of not-yet-started work
  std::vector<double> est_services_;    // admitted est service times, sorted
  /// Next virtual-time boundary at which the maintenance hook fires.
  double next_maintenance_vms_ = 0.0;
  bool draining_ = false;
  /// Single-flight: latest flight per (skill, input) hash. Entries expire by
  /// virtual time (a new arrival past est_finish_vms starts a new flight and
  /// replaces the old group), so the map holds one entry per distinct key
  /// seen — bounded by the workload's key diversity.
  std::unordered_map<uint64_t, std::shared_ptr<FlightGroup>> inflight_;
  /// Continuous batching: the accumulating batch (null when none is open).
  std::unique_ptr<OpenBatch> open_batch_;

  // QoS mode (null/empty when Options::qos has no tenants). All admission
  // state under admission_mu_, like the legacy fields above.
  std::unique_ptr<WeightedFairScheduler> qos_scheduler_;
  std::vector<std::unique_ptr<TenantState>> tenants_;  // scheduler order
  std::unordered_map<TenantId, TenantState*> tenant_by_id_;
  TenantState* default_tenant_ = nullptr;  // catch-all for unknown ids
  std::unordered_map<uint64_t, PendingQos> pending_qos_;  // by request id

  // Worker pool.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Results + execution-side stats (hedge counters live in metrics_).
  mutable std::mutex results_mu_;
  std::vector<Response> responses_;
  std::function<void(const Response&)> response_sink_;  // under results_mu_

  llm::UsageMeter meter_;
  SimulatedClock clock_;
};

}  // namespace llmdm::serve

#endif  // LLMDM_SERVE_SERVER_H_
